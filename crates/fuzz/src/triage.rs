//! Triage records: one JSON object per confirmed divergence, plus the
//! minimized `.mc` reproducer on disk.
//!
//! A record carries everything needed to reproduce the finding without
//! the fuzzer: the case seed (regenerates the original program), the
//! diverging variant and its TRNG seed (replays the exact layout
//! draws), the canonical baseline/observed behaviors, and the minimized
//! source itself. Records are single-line JSON built with the same
//! hand-rolled escaping as the campaign journal.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use smokestack_minic::count_stmts;
use smokestack_telemetry::json::push_json_str;

use crate::exec::{CaseResult, Divergence};
use crate::gen::FuzzCase;

/// A fully triaged divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageRecord {
    /// Case seed (regenerate with `gen::generate(seed)`).
    pub seed: u64,
    /// Label of the diverging variant.
    pub variant: String,
    /// TRNG seed of the diverging run.
    pub trng_seed: u64,
    /// Scheduler seed of the diverging run (0 for single-threaded
    /// cases; replays the exact interleaving otherwise).
    pub sched_seed: u64,
    /// Divergence kind label (`output` / `exit`).
    pub kind: String,
    /// Canonical baseline exit.
    pub baseline_exit: String,
    /// Canonical diverging exit.
    pub observed_exit: String,
    /// Baseline output events.
    pub baseline_output: Vec<String>,
    /// Diverging output events.
    pub observed_output: Vec<String>,
    /// Statement count before minimization.
    pub stmts_before: usize,
    /// Statement count of the minimized reproducer.
    pub stmts_after: usize,
    /// Minimized source.
    pub source: String,
    /// Scripted input chunks, hex-encoded.
    pub inputs_hex: Vec<String>,
    /// Flight-recorder incident report for faulting divergences
    /// (single-line JSON, schema `smokestack-incident/1`); `None` for
    /// pure output divergences.
    pub incident: Option<String>,
}

impl TriageRecord {
    /// Build a record from the original case, its minimized form, and
    /// the divergence being reported.
    pub fn new(original: &FuzzCase, minimized: &FuzzCase, div: &Divergence) -> TriageRecord {
        TriageRecord {
            seed: original.seed,
            variant: div.variant.label(),
            trng_seed: div.trng_seed,
            sched_seed: div.sched_seed,
            kind: div.kind.label().to_string(),
            baseline_exit: div.baseline.exit.clone(),
            observed_exit: div.observed.exit.clone(),
            baseline_output: div.baseline.output.clone(),
            observed_output: div.observed.output.clone(),
            stmts_before: count_stmts(&original.program),
            stmts_after: count_stmts(&minimized.program),
            source: minimized.source.clone(),
            inputs_hex: minimized.inputs.iter().map(|c| hex(c)).collect(),
            incident: None,
        }
    }

    /// Attach a flight-recorder incident report (as rendered by
    /// [`smokestack_telemetry::IncidentReport::to_json`]).
    pub fn with_incident(mut self, incident_json: String) -> TriageRecord {
        self.incident = Some(incident_json);
        self
    }

    /// One-line JSON rendering.
    pub fn to_json_line(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"seed\":{}", self.seed));
        s.push_str(",\"variant\":");
        push_json_str(&mut s, &self.variant);
        s.push_str(&format!(",\"trng_seed\":{}", self.trng_seed));
        s.push_str(&format!(",\"sched_seed\":{}", self.sched_seed));
        s.push_str(",\"kind\":");
        push_json_str(&mut s, &self.kind);
        s.push_str(",\"baseline_exit\":");
        push_json_str(&mut s, &self.baseline_exit);
        s.push_str(",\"observed_exit\":");
        push_json_str(&mut s, &self.observed_exit);
        push_str_array(&mut s, "baseline_output", &self.baseline_output);
        push_str_array(&mut s, "observed_output", &self.observed_output);
        s.push_str(&format!(
            ",\"stmts_before\":{},\"stmts_after\":{}",
            self.stmts_before, self.stmts_after
        ));
        push_str_array(&mut s, "inputs_hex", &self.inputs_hex);
        s.push_str(",\"source\":");
        push_json_str(&mut s, &self.source);
        if let Some(inc) = &self.incident {
            // Already single-line JSON: embed as a nested object.
            s.push_str(",\"incident\":");
            s.push_str(inc);
        }
        s.push('}');
        s
    }

    /// Write `repro-<seed>.mc` and `repro-<seed>.json` under `dir`.
    /// Returns the two paths.
    pub fn write_repro(&self, dir: &Path) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let mc = dir.join(format!("repro-{:016x}.mc", self.seed));
        let json = dir.join(format!("repro-{:016x}.json", self.seed));
        std::fs::write(&mc, &self.source)?;
        let mut f = std::fs::File::create(&json)?;
        writeln!(f, "{}", self.to_json_line())?;
        Ok((mc, json))
    }
}

/// Render a non-divergent but still noteworthy case (compile error,
/// oracle violation, harden failure) as a one-line JSON finding.
pub fn finding_json(result: &CaseResult) -> String {
    let mut s = String::from("{");
    s.push_str(&format!("\"seed\":{}", result.seed));
    if let Some(e) = &result.compile_error {
        s.push_str(",\"compile_error\":");
        push_json_str(&mut s, e);
    }
    s.push_str(&format!(
        ",\"analyzer_errors\":{},\"oracle_oob\":{}",
        result.analyzer_errors, result.oracle_oob
    ));
    push_str_array(&mut s, "harden_errors", &result.harden_errors);
    s.push_str(&format!(",\"divergences\":{}", result.divergences.len()));
    s.push('}');
    s
}

fn push_str_array(out: &mut String, key: &str, items: &[String]) {
    out.push_str(&format!(",\"{key}\":["));
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, item);
    }
    out.push(']');
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{DivergenceKind, Observation, Variant};
    use smokestack_minic::parse;
    use smokestack_srng::SchemeKind;

    fn dummy_case(src: &str) -> FuzzCase {
        FuzzCase {
            seed: 42,
            program: parse(src).unwrap(),
            source: src.to_string(),
            inputs: vec![vec![0xde, 0xad]],
        }
    }

    #[test]
    fn record_renders_escaped_single_line_json() {
        let case = dummy_case("int main() { return 0; }");
        let div = Divergence {
            variant: Variant {
                scheme: SchemeKind::Aes10,
                prune: false,
            },
            run: 1,
            trng_seed: 77,
            sched_seed: 9,
            kind: DivergenceKind::Output,
            baseline: Observation {
                exit: "return:0".into(),
                output: vec!["i:1".into()],
            },
            observed: Observation {
                exit: "return:0".into(),
                output: vec!["i:2".into()],
            },
        };
        let rec = TriageRecord::new(&case, &case, &div);
        let line = rec.to_json_line();
        assert_eq!(line.lines().count(), 1, "record must be a single line");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"seed\":42"));
        assert!(line.contains("\"variant\":\"smokestack/AES-10\""));
        assert!(line.contains("\"sched_seed\":9"));
        assert!(line.contains("\"kind\":\"output\""));
        // The multi-line source must arrive escaped, never raw.
        assert!(line.contains("\\n") || !rec.source.contains('\n'));
        assert_eq!(rec.inputs_hex, vec!["dead".to_string()]);
    }

    #[test]
    fn write_repro_emits_both_files() {
        let dir = std::env::temp_dir().join(format!("fuzz-triage-{}", std::process::id()));
        let case = dummy_case("int main() { return 3; }");
        let div = Divergence {
            variant: Variant {
                scheme: SchemeKind::Pseudo,
                prune: true,
            },
            run: 0,
            trng_seed: 5,
            sched_seed: 0,
            kind: DivergenceKind::Exit,
            baseline: Observation {
                exit: "return:3".into(),
                output: vec![],
            },
            observed: Observation {
                exit: "return:4".into(),
                output: vec![],
            },
        };
        let rec = TriageRecord::new(&case, &case, &div);
        let (mc, json) = rec.write_repro(&dir).unwrap();
        assert_eq!(std::fs::read_to_string(&mc).unwrap(), case.source);
        assert!(std::fs::read_to_string(&json).unwrap().contains("+prune"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
