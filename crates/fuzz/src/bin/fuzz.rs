//! `fuzz` — run differential fuzzing campaigns from the command line.
//!
//! ```text
//! fuzz --seeds 0:512 --jobs 4 --deny-divergences
//! fuzz --seeds 0:64 --runs 4 --out triage/ --json
//! fuzz --seeds 0:64 --expect-divergence --max-repro-stmts 25   # planted-bugs builds
//! ```
//!
//! The seed window `A:B` is half-open and positional: case `s` behaves
//! identically no matter how the window is split across invocations or
//! `--jobs` workers, so CI shards and local reproductions always agree.

use std::process::ExitCode;

use smokestack_fuzz::{run_fuzz, FuzzConfig};

struct Args {
    seed_start: u64,
    seed_end: u64,
    jobs: usize,
    runs: u32,
    sched_seeds: u32,
    out: Option<String>,
    json: bool,
    minimize: bool,
    deny_divergences: bool,
    expect_divergence: bool,
    max_repro_stmts: usize,
}

const USAGE: &str = "usage: fuzz [--seeds A:B] [--jobs N] [--runs R] [--sched-seeds K] \
[--out DIR] [--json] [--no-minimize] [--deny-divergences] [--expect-divergence] \
[--max-repro-stmts N]

  --seeds A:B          half-open case-seed window (default 0:64)
  --jobs N             worker threads (default 1)
  --runs R             layout draws per variant per case (default 2)
  --sched-seeds K      scheduler interleavings swept per threaded case
                       (default 4; single-threaded cases run one schedule)
  --out DIR            write repro-<seed>.mc / .json triage files to DIR
  --json               print the summary and triage records as JSON lines
  --no-minimize        skip AST minimization of diverging cases
  --deny-divergences   exit 1 if any divergence or oracle violation is found
  --expect-divergence  exit 1 unless a divergence IS found and minimizes small
                       (oracle validation for planted-bugs builds)
  --max-repro-stmts N  size bound for --expect-divergence repros (default 25)";

fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("bad seed `{s}`"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed_start: 0,
        seed_end: 64,
        jobs: 1,
        runs: 2,
        sched_seeds: 4,
        out: None,
        json: false,
        minimize: true,
        deny_divergences: false,
        expect_divergence: false,
        max_repro_stmts: 25,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--seeds" => {
                let v = value("--seeds")?;
                let (a, b) = v
                    .split_once(':')
                    .ok_or(format!("--seeds wants A:B, got `{v}`"))?;
                args.seed_start = parse_seed(a)?;
                args.seed_end = parse_seed(b)?;
                if args.seed_start >= args.seed_end {
                    return Err(format!("empty seed window `{v}`"));
                }
            }
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "bad --jobs value".to_string())?;
            }
            "--runs" => {
                args.runs = value("--runs")?
                    .parse()
                    .map_err(|_| "bad --runs value".to_string())?;
            }
            "--sched-seeds" => {
                args.sched_seeds = value("--sched-seeds")?
                    .parse()
                    .map_err(|_| "bad --sched-seeds value".to_string())?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--json" => args.json = true,
            "--no-minimize" => args.minimize = false,
            "--deny-divergences" => args.deny_divergences = true,
            "--expect-divergence" => args.expect_divergence = true,
            "--max-repro-stmts" => {
                args.max_repro_stmts = value("--max-repro-stmts")?
                    .parse()
                    .map_err(|_| "bad --max-repro-stmts value".to_string())?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let report = run_fuzz(&FuzzConfig {
        seed_start: args.seed_start,
        seed_end: args.seed_end,
        jobs: args.jobs,
        runs_per_variant: args.runs,
        sched_seeds: args.sched_seeds,
        minimize: args.minimize,
        max_triage: 8,
    });

    if args.json {
        println!("{}", report.summary_json());
        for rec in &report.triage {
            println!("{}", rec.to_json_line());
        }
    } else {
        println!(
            "fuzz: {} cases ({} flagged by analyzer), {} divergent, \
             {} compile errors, {} oracle violations, {} harden failures",
            report.cases,
            report.analyzer_flagged,
            report.divergent_cases,
            report.compile_errors,
            report.oracle_violations,
            report.harden_failures
        );
        for rec in &report.triage {
            println!(
                "  seed {:#018x}: {} diverged ({}) — minimized {} -> {} stmts",
                rec.seed, rec.variant, rec.kind, rec.stmts_before, rec.stmts_after
            );
        }
    }

    if let Some(dir) = &args.out {
        for rec in &report.triage {
            match rec.write_repro(std::path::Path::new(dir)) {
                Ok((mc, _)) => eprintln!("fuzz: wrote {}", mc.display()),
                Err(e) => {
                    eprintln!("error: writing triage to {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if args.expect_divergence {
        // Oracle validation: the fuzzer must find the planted bug and
        // shrink it below the size bound.
        if report.divergent_cases == 0 {
            eprintln!("error: expected a divergence, found none (is the planted bug enabled?)");
            return ExitCode::FAILURE;
        }
        if args.minimize {
            let small_enough = report
                .triage
                .iter()
                .any(|r| r.stmts_after <= args.max_repro_stmts);
            if !small_enough {
                eprintln!(
                    "error: no reproducer minimized to <= {} statements",
                    args.max_repro_stmts
                );
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    if args.deny_divergences && !report.is_clean() {
        eprintln!("error: fuzzing found problems: {}", report.summary_json());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
