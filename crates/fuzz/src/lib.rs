//! # smokestack-fuzz
//!
//! Differential fuzzing of the whole Smokestack pipeline. The paper's
//! central correctness obligation is *semantics preservation*: hardening
//! a program (P-BOX build, frame rewrite, guards, safe-frame pruning)
//! must not change what it computes — only where its locals live. This
//! crate turns that obligation into a falsifiable property and hunts for
//! counterexamples:
//!
//! * [`gen`] — a grammar-based generator emitting safe-by-construction
//!   MiniC programs (terminating, analyzer-clean, layout-independent)
//!   plus scripted inputs, all derived from one `u64` seed;
//! * [`exec`] — the differential executor: compile once, then run the
//!   un-hardened baseline against every scheme × pruning variant in
//!   isolated VMs, comparing outputs and canonical exits (never cycles
//!   or addresses);
//! * [`minimize`] — AST delta debugging that shrinks a diverging case
//!   to a minimal `.mc` reproducer by recompiling and re-checking after
//!   every structural edit;
//! * [`triage`] — JSON triage records pairing each divergence with its
//!   seeds, variant, canonical behaviors, and minimized source.
//!
//! Campaigns shard a seed window across the campaign crate's
//! work-stealing [`smokestack_campaign::pool`]; every per-case quantity
//! is derived from the case seed alone, so aggregates are bit-identical
//! across `--jobs` settings.
//!
//! The `planted-bugs` cargo feature deliberately corrupts one P-BOX row
//! in `smokestack-core` (two slots overlap); the fuzzer must then find
//! and minimize a divergence within a small seed budget. That closes
//! the loop on the fuzzer itself: an oracle that cannot find a known
//! planted bug could not be trusted to certify the absence of real
//! ones.

#![warn(missing_docs)]

pub mod exec;
pub mod gen;
pub mod minimize;
pub mod triage;

pub use exec::{
    capture_divergence_incident, observe, run_case, variants, CaseResult, DiffConfig, Divergence,
    DivergenceKind, Observation, Variant,
};
pub use gen::{generate, FuzzCase};
pub use minimize::{minimize_case, MinimizeConfig};
pub use triage::{finding_json, TriageRecord};

use smokestack_campaign::pool::run_pool;

/// A fuzzing campaign over a contiguous seed window.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// First case seed (inclusive).
    pub seed_start: u64,
    /// Last case seed (exclusive).
    pub seed_end: u64,
    /// Worker threads.
    pub jobs: usize,
    /// Independent layout draws per variant per case.
    pub runs_per_variant: u32,
    /// Scheduler interleavings swept per threaded case (single-threaded
    /// cases always run exactly one schedule). See
    /// [`DiffConfig::sched_seeds`].
    pub sched_seeds: u32,
    /// Minimize diverging cases and attach triage records.
    pub minimize: bool,
    /// Keep at most this many triage records (minimization cost is per
    /// record; campaigns hitting this cap are already very broken).
    pub max_triage: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed_start: 0,
            seed_end: 64,
            jobs: 1,
            runs_per_variant: 2,
            sched_seeds: DiffConfig::default().sched_seeds,
            minimize: true,
            max_triage: 8,
        }
    }
}

/// Aggregated campaign outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// Cases the analyzer flagged with error-severity findings
    /// (excluded from the divergence oracle, counted here).
    pub analyzer_flagged: u64,
    /// Cases whose generated source failed to compile (generator bugs).
    pub compile_errors: u64,
    /// No-fault oracle violations (analyzer-clean program faulted out
    /// of bounds in the baseline VM).
    pub oracle_violations: u64,
    /// Cases where a hardening pass itself failed.
    pub harden_failures: u64,
    /// Cases with at least one baseline/variant divergence.
    pub divergent_cases: u64,
    /// Seeds of the divergent cases, in seed order.
    pub divergent_seeds: Vec<u64>,
    /// Triage records for minimized divergences (bounded by
    /// [`FuzzConfig::max_triage`]).
    pub triage: Vec<TriageRecord>,
}

impl FuzzReport {
    /// Whether the campaign found anything wrong at all.
    pub fn is_clean(&self) -> bool {
        self.compile_errors == 0
            && self.oracle_violations == 0
            && self.harden_failures == 0
            && self.divergent_cases == 0
    }

    /// One-line JSON summary (triage records are emitted separately).
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"cases\":{},\"analyzer_flagged\":{},\"compile_errors\":{},\
             \"oracle_violations\":{},\"harden_failures\":{},\"divergent_cases\":{}}}",
            self.cases,
            self.analyzer_flagged,
            self.compile_errors,
            self.oracle_violations,
            self.harden_failures,
            self.divergent_cases
        )
    }
}

/// Run a fuzzing campaign: generate and differentially execute every
/// seed in the window, then (optionally) minimize what diverged.
///
/// Determinism: case results depend only on their seed, the pool hands
/// results back in task order, and minimization walks divergent cases
/// in seed order — so the report is bit-identical for any `jobs`.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let diff = DiffConfig {
        runs_per_variant: cfg.runs_per_variant,
        sched_seeds: cfg.sched_seeds,
        ..DiffConfig::default()
    };
    let seeds: Vec<u64> = (cfg.seed_start..cfg.seed_end).collect();
    let run = run_pool(
        cfg.jobs,
        seeds,
        None,
        |_worker| (),
        |_, &seed| {
            let case = generate(seed);
            run_case(&case, &diff)
        },
        |_| {},
    );

    let mut report = FuzzReport {
        cases: run.results.len() as u64,
        analyzer_flagged: 0,
        compile_errors: 0,
        oracle_violations: 0,
        harden_failures: 0,
        divergent_cases: 0,
        divergent_seeds: Vec::new(),
        triage: Vec::new(),
    };
    for r in &run.results {
        if r.compile_error.is_some() {
            report.compile_errors += 1;
        }
        if r.analyzer_errors > 0 {
            report.analyzer_flagged += 1;
        }
        if r.oracle_oob {
            report.oracle_violations += 1;
        }
        if !r.harden_errors.is_empty() {
            report.harden_failures += 1;
        }
        if r.is_divergent() {
            report.divergent_cases += 1;
            report.divergent_seeds.push(r.seed);
        }
    }

    if cfg.minimize {
        for r in run
            .results
            .iter()
            .filter(|r| r.is_divergent())
            .take(cfg.max_triage)
        {
            let case = generate(r.seed);
            let div = &r.divergences[0];
            let minimized = minimize_case(
                &case,
                &MinimizeConfig {
                    variant: Some(div.variant),
                    pinned_seed: Some(div.trng_seed),
                    ..MinimizeConfig::default()
                },
            );
            let mut rec = TriageRecord::new(&case, &minimized, div);
            // Faulting divergences carry the flight-recorder forensics
            // of the diverging run (replayed from the original, un-
            // minimized case so the report matches the divergence as
            // found).
            if div.observed.exit.starts_with("fault:") {
                if let Some(inc) = exec::capture_divergence_incident(&case, div) {
                    rec = rec.with_incident(inc.to_json());
                }
            }
            report.triage.push(rec);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "planted-bugs"))]
    #[test]
    fn small_window_is_clean_and_jobs_invariant() {
        let cfg = FuzzConfig {
            seed_start: 200,
            seed_end: 208,
            jobs: 1,
            runs_per_variant: 1,
            sched_seeds: 2,
            minimize: true,
            max_triage: 4,
        };
        let serial = run_fuzz(&cfg);
        assert_eq!(serial.cases, 8);
        assert!(serial.is_clean(), "{}", serial.summary_json());
        let wide = run_fuzz(&FuzzConfig { jobs: 4, ..cfg });
        assert_eq!(serial, wide, "aggregates must not depend on --jobs");
    }

    #[test]
    fn report_json_shape_is_stable() {
        let report = FuzzReport {
            cases: 3,
            analyzer_flagged: 0,
            compile_errors: 0,
            oracle_violations: 0,
            harden_failures: 0,
            divergent_cases: 1,
            divergent_seeds: vec![9],
            triage: vec![],
        };
        assert!(!report.is_clean());
        assert_eq!(
            report.summary_json(),
            "{\"cases\":3,\"analyzer_flagged\":0,\"compile_errors\":0,\
             \"oracle_violations\":0,\"harden_failures\":0,\"divergent_cases\":1}"
        );
    }
}
