//! Delta-debugging minimizer over the MiniC AST.
//!
//! A diverging case is shrunk by structural edits — drop a helper
//! function, a global, a struct, a single statement (with everything
//! nested inside it), or replace a compound statement by its body —
//! re-validating after every edit that the candidate still *compiles*
//! and still *diverges*. Edits that break compilation (say, deleting a
//! declaration something still uses) simply fail the predicate and are
//! rolled back, so no language-level dependency tracking is needed.
//!
//! Because a divergence is only visible on draws that hit the offending
//! P-BOX row, the predicate is intentionally *narrower and deeper* than
//! the search that found the case: it re-runs only the variant that
//! diverged, pins the TRNG seed of the original diverging run (tried
//! first, and usually sufficient), then adds fresh independent draws,
//! pushing the probability of a false "fixed" verdict low enough for
//! the greedy loop to make steady progress. Statement indices are visited in
//! reverse pre-order so nested statements are tried before the
//! constructs containing them.

use smokestack_minic::ast::{FuncDef, Program, Stmt};
use smokestack_minic::{count_stmts, print_program};

use crate::exec::{run_case, DiffConfig, Variant};
use crate::gen::FuzzCase;

/// Minimization knobs.
#[derive(Debug, Clone)]
pub struct MinimizeConfig {
    /// The variant whose divergence must be preserved (None = any
    /// variant in the full matrix, much slower).
    pub variant: Option<Variant>,
    /// The TRNG seed of the original diverging run, tried first on
    /// every predicate evaluation. Pinning it keeps the layout draws
    /// hitting the offending P-BOX row while the frame signature is
    /// preserved, which makes most checks settle on their first run.
    pub pinned_seed: Option<u64>,
    /// Fresh layout draws per predicate evaluation (after the pinned
    /// seed, if any).
    pub runs_per_check: u32,
    /// Hard cap on predicate evaluations (a runaway backstop; typical
    /// minimizations use far fewer).
    pub max_checks: u32,
    /// VM fuel per predicate run. Edits can make a loop infinite (e.g.
    /// deleting a counter update); the cap makes such candidates fault
    /// out of fuel quickly — in baseline and variant alike, so the edit
    /// is rejected — instead of burning the default VM budget. Generated
    /// programs finish in thousands of steps, so the default leaves a
    /// wide margin.
    pub fuel: u64,
}

impl Default for MinimizeConfig {
    fn default() -> MinimizeConfig {
        MinimizeConfig {
            variant: None,
            pinned_seed: None,
            runs_per_check: 6,
            max_checks: 2000,
            fuel: 2_000_000,
        }
    }
}

struct Shrinker {
    seed: u64,
    inputs: Vec<Vec<u8>>,
    diff: DiffConfig,
    checks_left: u32,
}

impl Shrinker {
    /// Does `program` still reproduce the divergence?
    fn diverges(&mut self, program: &Program) -> bool {
        if self.checks_left == 0 {
            return false;
        }
        self.checks_left -= 1;
        let source = print_program(program);
        let case = FuzzCase {
            seed: self.seed,
            program: program.clone(),
            source,
            inputs: self.inputs.clone(),
        };
        run_case(&case, &self.diff).is_divergent()
    }
}

/// Shrink `case` to a smaller program that still diverges. Returns the
/// original case unchanged if the divergence does not reproduce under
/// the minimizer's predicate.
pub fn minimize_case(case: &FuzzCase, cfg: &MinimizeConfig) -> FuzzCase {
    let mut sh = Shrinker {
        seed: case.seed,
        inputs: case.inputs.clone(),
        diff: DiffConfig {
            runs_per_variant: cfg.runs_per_check,
            only: cfg.variant,
            pinned_seeds: cfg.pinned_seed.into_iter().collect(),
            stop_at_first: true,
            fuel: Some(cfg.fuel),
            // Keep the full interleaving sweep while shrinking threaded
            // cases: a divergence seen under one schedule must stay
            // reproducible under *some* swept schedule after each edit.
            sched_seeds: DiffConfig::default().sched_seeds,
        },
        checks_left: cfg.max_checks,
    };
    let mut cur = case.program.clone();
    if !sh.diverges(&cur) {
        return case.clone();
    }

    loop {
        let mut progress = false;

        // Whole helper functions (never `main`), last first.
        for i in (0..cur.funcs.len()).rev() {
            if cur.funcs[i].name == "main" {
                continue;
            }
            let mut cand = cur.clone();
            cand.funcs.remove(i);
            if sh.diverges(&cand) {
                cur = cand;
                progress = true;
            }
        }
        // Globals and structs.
        for i in (0..cur.globals.len()).rev() {
            let mut cand = cur.clone();
            cand.globals.remove(i);
            if sh.diverges(&cand) {
                cur = cand;
                progress = true;
            }
        }
        for i in (0..cur.structs.len()).rev() {
            let mut cand = cur.clone();
            cand.structs.remove(i);
            if sh.diverges(&cand) {
                cur = cand;
                progress = true;
            }
        }

        // Single statements, reverse pre-order (children before the
        // compound statements containing them).
        let n = count_stmts(&cur);
        for i in (0..n).rev() {
            let mut cand = cur.clone();
            if !edit_program(&mut cand, i, EditKind::Remove) {
                continue;
            }
            if sh.diverges(&cand) {
                cur = cand;
                progress = true;
            }
        }

        // Flatten compound statements into their bodies.
        let n = count_stmts(&cur);
        for i in (0..n).rev() {
            let mut cand = cur.clone();
            if !edit_program(&mut cand, i, EditKind::Flatten) {
                continue;
            }
            if count_stmts(&cand) >= count_stmts(&cur) {
                continue;
            }
            if sh.diverges(&cand) {
                cur = cand;
                progress = true;
            }
        }

        if !progress || sh.checks_left == 0 {
            break;
        }
    }

    FuzzCase {
        seed: case.seed,
        source: print_program(&cur),
        program: cur,
        inputs: case.inputs.clone(),
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum EditKind {
    /// Delete the statement (and everything nested in it).
    Remove,
    /// Replace a compound statement (`if`/`while`/`for`/block) with its
    /// body statements, spliced into the parent list.
    Flatten,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EditOutcome {
    /// The target index lies beyond this subtree; keep searching.
    NotFound,
    /// The edit was performed.
    Applied,
    /// The target index was reached but the edit does not apply there
    /// (e.g. flattening a plain expression statement).
    Refused,
}

/// Apply `kind` to the `target`-th statement of the program in
/// pre-order. Returns false if the index does not exist or the edit
/// does not apply there.
///
/// The pre-order here must match [`count_stmts`]: each statement counts
/// itself, then its nested statements (`For` counts its init statement,
/// then the body; `If` counts the then-list, then the else-list).
fn edit_program(prog: &mut Program, target: usize, kind: EditKind) -> bool {
    let mut idx = target;
    for f in &mut prog.funcs {
        match edit_list(&mut f.body, &mut idx, kind) {
            EditOutcome::NotFound => continue,
            EditOutcome::Applied => return true,
            EditOutcome::Refused => return false,
        }
    }
    false
}

fn edit_list(stmts: &mut Vec<Stmt>, idx: &mut usize, kind: EditKind) -> EditOutcome {
    let mut pos = 0;
    while pos < stmts.len() {
        if *idx == 0 {
            return match kind {
                EditKind::Remove => {
                    stmts.remove(pos);
                    EditOutcome::Applied
                }
                EditKind::Flatten => {
                    let body: Vec<Stmt> = match &mut stmts[pos] {
                        Stmt::If(_, t, e) => {
                            let mut b = std::mem::take(t);
                            b.append(e);
                            b
                        }
                        Stmt::While(_, b) => std::mem::take(b),
                        Stmt::For(init, _, _, b) => {
                            let mut out = Vec::new();
                            if let Some(s) = init.take() {
                                out.push(*s);
                            }
                            out.append(b);
                            out
                        }
                        Stmt::Block(b) => std::mem::take(b),
                        _ => return EditOutcome::Refused,
                    };
                    stmts.splice(pos..=pos, body);
                    EditOutcome::Applied
                }
            };
        }
        *idx -= 1;
        let child = match &mut stmts[pos] {
            Stmt::If(_, t, e) => match edit_list(t, idx, kind) {
                EditOutcome::NotFound => edit_list(e, idx, kind),
                o => o,
            },
            Stmt::While(_, b) | Stmt::Block(b) => edit_list(b, idx, kind),
            Stmt::For(init, _, _, b) => {
                let mut out = EditOutcome::NotFound;
                if init.is_some() {
                    if *idx == 0 {
                        out = if kind == EditKind::Remove {
                            *init = None;
                            EditOutcome::Applied
                        } else {
                            EditOutcome::Refused
                        };
                    } else {
                        *idx -= 1;
                    }
                }
                if out == EditOutcome::NotFound {
                    out = edit_list(b, idx, kind);
                }
                out
            }
            _ => EditOutcome::NotFound,
        };
        if child != EditOutcome::NotFound {
            return child;
        }
        pos += 1;
    }
    EditOutcome::NotFound
}

/// A function's statement count (for tests and triage records).
pub fn func_stmts(f: &FuncDef) -> usize {
    let p = Program {
        structs: vec![],
        globals: vec![],
        funcs: vec![f.clone()],
    };
    count_stmts(&p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokestack_minic::parse;

    fn prog(src: &str) -> Program {
        parse(src).unwrap()
    }

    #[test]
    fn remove_edits_cover_every_preorder_index() {
        let p = prog(
            "int main() { int x = 1; if (x) { x = 2; } else { x = 3; } \
             for (x = 0; x < 4; x = x + 1) { x = x * 2; } return x; }",
        );
        let n = count_stmts(&p);
        let mut removed = 0;
        for i in 0..n {
            let mut cand = p.clone();
            if edit_program(&mut cand, i, EditKind::Remove) {
                removed += 1;
                assert!(count_stmts(&cand) < n, "index {i} removed nothing");
            }
        }
        assert_eq!(removed, n, "every index must be editable");
    }

    #[test]
    fn flatten_unwraps_an_if() {
        let p = prog("int main() { int x = 1; if (x) { x = 2; } return x; }");
        let n = count_stmts(&p);
        let mut flattened = false;
        for i in 0..n {
            let mut cand = p.clone();
            if edit_program(&mut cand, i, EditKind::Flatten) && count_stmts(&cand) < n {
                flattened = true;
                let printed = print_program(&cand);
                assert!(!printed.contains("if"), "{printed}");
            }
        }
        assert!(flattened);
    }

    #[test]
    fn out_of_range_index_is_rejected() {
        let mut p = prog("int main() { return 0; }");
        assert!(!edit_program(&mut p, 99, EditKind::Remove));
    }
}
