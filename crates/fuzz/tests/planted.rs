//! Oracle validation against a known-bad permutation engine.
//!
//! With the `planted-bugs` cargo feature, `smokestack-core` deliberately
//! corrupts one P-BOX row per table (two slot offsets alias), so any
//! invocation whose layout draw lands on that row silently overlaps two
//! locals. A differential fuzzer that cannot find this defect within a
//! small seed budget could not be trusted to certify the absence of
//! real ones — this test is the fuzzer's own acceptance gate.
//!
//! Detection probability per draw is `1/phys_rows` for the affected
//! frame, so small frames (two live slots, two rows) dominate. The
//! window and draw count below were sized empirically: 64 seeds at
//! 4 draws per variant reliably yield several divergent cases.

#![cfg(feature = "planted-bugs")]

use smokestack_fuzz::{run_fuzz, FuzzConfig};

#[test]
fn fuzzer_finds_and_minimizes_the_planted_pbox_bug() {
    let report = run_fuzz(&FuzzConfig {
        seed_start: 0,
        seed_end: 64,
        jobs: 4,
        runs_per_variant: 4,
        sched_seeds: 2,
        minimize: true,
        max_triage: 2,
    });

    assert_eq!(report.cases, 64);
    assert!(
        report.divergent_cases >= 1,
        "planted P-BOX corruption went undetected: {}",
        report.summary_json()
    );
    assert!(!report.is_clean());

    // The planted bug corrupts only the layout tables; every other
    // oracle axis must stay quiet.
    assert_eq!(report.compile_errors, 0, "{}", report.summary_json());
    assert_eq!(report.oracle_violations, 0, "{}", report.summary_json());
    assert_eq!(report.harden_failures, 0, "{}", report.summary_json());
    assert_eq!(report.analyzer_flagged, 0, "{}", report.summary_json());

    // Minimization must produce a small actionable reproducer.
    assert!(!report.triage.is_empty());
    for t in &report.triage {
        assert!(
            t.stmts_after <= 25,
            "reproducer for seed {:#x} still has {} statements:\n{}",
            t.seed,
            t.stmts_after,
            t.source
        );
        assert!(t.stmts_after <= t.stmts_before);
        assert!(t.source.contains("int main()"));
    }
}
