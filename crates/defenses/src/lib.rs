//! # smokestack-defenses
//!
//! The prior stack-randomization schemes the paper evaluates and defeats
//! (§II-B), implemented as IR passes over the same machinery as
//! Smokestack so attack outcomes are directly comparable:
//!
//! * **Stack base randomization** ([`stack_base_offset`]) — an
//!   ASLR-style random offset applied once at program start. Absolute
//!   addresses change per run; *relative* distances between locals do
//!   not.
//! * **Random padding at function entry** ([`apply_entry_padding`]) —
//!   Forrest et al.: every frame larger than 16 bytes gets one of eight
//!   paddings (8, 16, …, 64 bytes), chosen at **compile time**.
//! * **Static stack-layout randomization**
//!   ([`apply_static_permutation`]) — the frame's allocation order is
//!   permuted once at compile time (Giuffrida et al.); identical in
//!   every run of the same binary.
//! * **Stack canary** ([`apply_stack_canary`]) — the classic reference
//!   defense: detects *linear* overflows that cross the canary slot, but
//!   not targeted corruption beyond it.
//!
//! [`DefenseKind`] enumerates the full evaluation matrix (including
//! Smokestack itself) and [`deploy`] applies any of them uniformly.

#![warn(missing_docs)]

use std::fmt;

use smokestack_ir::{
    Callee, CmpPred, Function, Inst, IntWidth, Intrinsic, Module, Terminator, Type, Value,
};
use smokestack_rand::Rng;
use smokestack_srng::SchemeKind;

/// Name of padding allocas inserted by [`apply_entry_padding`].
pub const ENTRY_PAD_NAME: &str = "__forrest_pad";

/// Name of the canary slot inserted by [`apply_stack_canary`].
pub const CANARY_NAME: &str = "__canary";

/// A defense configuration for the evaluation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefenseKind {
    /// No protection.
    None,
    /// ASLR-style stack base randomization (per run).
    StackBase,
    /// Forrest-style compile-time random entry padding.
    EntryPadding,
    /// Compile-time static permutation of frame layouts.
    StaticPermutation,
    /// Stack canary with epilogue checks.
    Canary,
    /// Smokestack with the given randomness scheme.
    Smokestack(SchemeKind),
}

impl DefenseKind {
    /// Every row of the paper's comparison (§II-C + §V-C).
    pub const MATRIX: [DefenseKind; 9] = [
        DefenseKind::None,
        DefenseKind::StackBase,
        DefenseKind::EntryPadding,
        DefenseKind::StaticPermutation,
        DefenseKind::Canary,
        DefenseKind::Smokestack(SchemeKind::Pseudo),
        DefenseKind::Smokestack(SchemeKind::Aes1),
        DefenseKind::Smokestack(SchemeKind::Aes10),
        DefenseKind::Smokestack(SchemeKind::Rdrand),
    ];

    /// Short row label.
    pub fn label(&self) -> String {
        match self {
            DefenseKind::None => "none".into(),
            DefenseKind::StackBase => "stack-base-rand".into(),
            DefenseKind::EntryPadding => "entry-padding".into(),
            DefenseKind::StaticPermutation => "static-permutation".into(),
            DefenseKind::Canary => "stack-canary".into(),
            DefenseKind::Smokestack(s) => format!("smokestack/{s}"),
        }
    }

    /// The RNG scheme the VM should run (`stack_rng` service).
    pub fn scheme(&self) -> SchemeKind {
        match self {
            DefenseKind::Smokestack(s) => *s,
            _ => SchemeKind::Aes10,
        }
    }

    /// Parse a [`DefenseKind::label`] back into the kind (campaign plan
    /// files name defenses by their row label). Case-insensitive.
    pub fn from_label(label: &str) -> Option<DefenseKind> {
        let want = label.trim().to_ascii_lowercase();
        DefenseKind::MATRIX
            .into_iter()
            .find(|k| k.label().to_ascii_lowercase() == want)
    }
}

impl fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// What deploying a defense produced.
#[derive(Debug, Clone, Default)]
pub struct Deployment {
    /// Functions modified by the pass (0 for `None`/`StackBase`).
    pub functions_modified: usize,
    /// Stack base offset the VM should apply (ASLR analog).
    pub stack_base_offset: u64,
    /// Smokestack hardening report, when applicable.
    pub smokestack: Option<smokestack_core::HardenReport>,
}

/// Apply `kind` to `module`. `build_seed` drives compile-time choices
/// (padding sizes, static permutations); `run_seed` drives load-time
/// choices (the stack base offset). Returns deployment metadata,
/// including the `stack_base_offset` to put into `VmConfig`.
pub fn deploy(
    kind: DefenseKind,
    module: &mut Module,
    build_seed: u64,
    run_seed: u64,
) -> Deployment {
    deploy_configured(
        kind,
        module,
        build_seed,
        run_seed,
        &smokestack_core::SmokestackConfig::default(),
    )
}

/// [`deploy`] with an explicit Smokestack configuration, so experiments
/// can flip pipeline options (`prune_safe_slots`, guard insertion, P-BOX
/// sizing) while reusing the rest of the matrix unchanged. `ss_cfg` only
/// affects the `Smokestack(_)` rows.
pub fn deploy_configured(
    kind: DefenseKind,
    module: &mut Module,
    build_seed: u64,
    run_seed: u64,
    ss_cfg: &smokestack_core::SmokestackConfig,
) -> Deployment {
    match kind {
        DefenseKind::None => Deployment::default(),
        DefenseKind::StackBase => Deployment {
            stack_base_offset: stack_base_offset(run_seed, 1 << 20),
            ..Deployment::default()
        },
        DefenseKind::EntryPadding => Deployment {
            functions_modified: apply_entry_padding(module, build_seed),
            ..Deployment::default()
        },
        DefenseKind::StaticPermutation => Deployment {
            functions_modified: apply_static_permutation(module, build_seed),
            ..Deployment::default()
        },
        DefenseKind::Canary => Deployment {
            functions_modified: apply_stack_canary(module),
            ..Deployment::default()
        },
        DefenseKind::Smokestack(_) => {
            let report = smokestack_core::harden(module, ss_cfg).expect("instrumentation failed");
            Deployment {
                functions_modified: report.functions_instrumented,
                stack_base_offset: 0,
                smokestack: Some(report),
            }
        }
    }
}

/// ASLR-style random stack base offset in `[0, max)`, 16-byte aligned,
/// drawn per run from `run_seed`.
pub fn stack_base_offset(run_seed: u64, max: u64) -> u64 {
    let mut rng = Rng::seed_from_u64(run_seed ^ 0xa51a_51a5);
    (rng.gen_range(0, max.max(16))) & !0xf
}

/// Forrest et al.: add one of eight paddings (8..=64 bytes) before the
/// frame of every function whose frame exceeds 16 bytes, chosen at
/// compile time. Returns the number of functions padded.
pub fn apply_entry_padding(module: &mut Module, build_seed: u64) -> usize {
    let mut rng = Rng::seed_from_u64(build_seed ^ 0xf0e1_d2c3);
    let mut modified = 0;
    for f in &mut module.funcs {
        let info = smokestack_core::discover_frame(f);
        let frame = smokestack_core::frame_size_in_order(&info.slot_list());
        if frame <= 16 {
            continue;
        }
        let pad = 8 * rng.gen_range_inclusive(1, 8);
        let reg = f.new_reg(Type::Ptr);
        f.block_mut(Function::ENTRY).insts.insert(
            0,
            Inst::Alloca {
                result: reg,
                ty: Type::array(Type::I8, pad),
                count: None,
                align: 1,
                name: ENTRY_PAD_NAME.into(),
                randomizable: false,
            },
        );
        modified += 1;
    }
    modified
}

/// Static (compile-time) permutation of each function's entry-block
/// allocas — the layout differs per build but is identical in every run.
/// Returns the number of functions permuted.
pub fn apply_static_permutation(module: &mut Module, build_seed: u64) -> usize {
    let mut rng = Rng::seed_from_u64(build_seed ^ 0x57a7_1c00);
    let mut modified = 0;
    for f in &mut module.funcs {
        let info = smokestack_core::discover_frame(f);
        if info.slots.len() < 2 {
            continue;
        }
        let positions: Vec<usize> = info.slots.iter().map(|(i, _)| *i).collect();
        let mut shuffled = positions.clone();
        rng.shuffle(&mut shuffled);
        let entry = f.block_mut(Function::ENTRY);
        let originals: Vec<Inst> = positions.iter().map(|&i| entry.insts[i].clone()).collect();
        for (slot_idx, &new_pos) in shuffled.iter().enumerate() {
            entry.insts[new_pos] = originals[slot_idx].clone();
        }
        modified += 1;
    }
    modified
}

/// Classic stack canary: a slot above the locals holding a secret value,
/// checked before every return. Returns functions instrumented.
pub fn apply_stack_canary(module: &mut Module) -> usize {
    let mut modified = 0;
    for f in &mut module.funcs {
        let info = smokestack_core::discover_frame(f);
        if info.slots.is_empty() && !info.has_vla {
            continue;
        }
        add_canary(f);
        modified += 1;
    }
    modified
}

fn add_canary(f: &mut Function) {
    let slot = f.new_reg(Type::Ptr);
    let val = f.new_reg(Type::I64);
    let prologue = [
        Inst::Alloca {
            result: slot,
            ty: Type::I64,
            count: None,
            align: 8,
            name: CANARY_NAME.into(),
            randomizable: false,
        },
        Inst::Call {
            result: Some(val),
            callee: Callee::Intrinsic(Intrinsic::Canary),
            args: vec![],
        },
        Inst::Store {
            ty: Type::I64,
            val: Value::Reg(val),
            ptr: Value::Reg(slot),
        },
    ];
    for (i, inst) in prologue.into_iter().enumerate() {
        f.block_mut(Function::ENTRY).insts.insert(i, inst);
    }
    let fail_bb = f.add_block();
    f.block_mut(fail_bb).insts.push(Inst::Call {
        result: None,
        callee: Callee::Intrinsic(Intrinsic::CanaryFail),
        args: vec![],
    });
    f.block_mut(fail_bb).term = Terminator::Unreachable;
    let ret_blocks: Vec<_> = f
        .iter_blocks()
        .filter(|(_, b)| matches!(b.term, Terminator::Ret(_)))
        .map(|(id, _)| id)
        .collect();
    for bb in ret_blocks {
        let original_ret = f.block(bb).term.clone();
        let ret_bb = f.add_block();
        f.block_mut(ret_bb).term = original_ret;
        let loaded = f.new_reg(Type::I64);
        let expected = f.new_reg(Type::I64);
        let bad = f.new_reg(Type::I8);
        let b = f.block_mut(bb);
        b.insts.push(Inst::Load {
            result: loaded,
            ty: Type::I64,
            ptr: Value::Reg(slot),
        });
        b.insts.push(Inst::Call {
            result: Some(expected),
            callee: Callee::Intrinsic(Intrinsic::Canary),
            args: vec![],
        });
        b.insts.push(Inst::Icmp {
            result: bad,
            pred: CmpPred::Ne,
            width: IntWidth::W64,
            lhs: Value::Reg(loaded),
            rhs: Value::Reg(expected),
        });
        b.term = Terminator::CondBr {
            cond: Value::Reg(bad),
            then_bb: fail_bb,
            else_bb: ret_bb,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokestack_ir::verify_module;
    use smokestack_minic::compile;
    use smokestack_vm::{Executor, Exit, FaultKind, ScriptedInput};

    const PROG: &str = r#"
        int f(int a) {
            int x = a;
            char buf[32];
            long y = 2;
            buf[0] = 1;
            return x + y;
        }
        int main() { return f(1); }
    "#;

    #[test]
    fn all_defenses_preserve_behavior() {
        for kind in DefenseKind::MATRIX {
            let mut m = compile(PROG).unwrap();
            let dep = deploy(kind, &mut m, 7, 11);
            verify_module(&m).unwrap_or_else(|e| panic!("{kind}: {e:?}"));
            let out = Executor::for_module(m)
                .scheme(kind.scheme())
                .stack_base_offset(dep.stack_base_offset)
                .build()
                .run_main(ScriptedInput::empty());
            assert_eq!(out.exit, Exit::Return(3), "{kind} changed behavior");
        }
    }

    #[test]
    fn stack_base_offset_varies_per_run_seed() {
        let a = stack_base_offset(1, 1 << 20);
        let b = stack_base_offset(2, 1 << 20);
        assert_ne!(a, b);
        assert_eq!(a % 16, 0);
        assert_eq!(stack_base_offset(1, 1 << 20), a, "deterministic per seed");
    }

    #[test]
    fn entry_padding_only_big_frames() {
        let src = r#"
            int small() { int x = 1; return x; }
            int big() { char buf[64]; buf[0] = 1; return 0; }
            int main() { return small() + big(); }
        "#;
        let mut m = compile(src).unwrap();
        let n = apply_entry_padding(&mut m, 1);
        assert_eq!(n, 1);
        let big = m.func(m.func_by_name("big").unwrap());
        let pad = big
            .iter_insts()
            .find_map(|(_, i)| match i {
                Inst::Alloca { name, ty, .. } if name == ENTRY_PAD_NAME => Some(ty.size()),
                _ => None,
            })
            .expect("pad present");
        assert!((8..=64).contains(&pad) && pad % 8 == 0);
    }

    #[test]
    fn entry_padding_fixed_within_build_varies_across_builds() {
        let pad_of = |seed: u64| {
            let mut m = compile(PROG).unwrap();
            apply_entry_padding(&mut m, seed);
            let f = m.func(m.func_by_name("f").unwrap());
            let pad = f
                .iter_insts()
                .find_map(|(_, i)| match i {
                    Inst::Alloca { name, ty, .. } if name == ENTRY_PAD_NAME => Some(ty.size()),
                    _ => None,
                })
                .unwrap();
            pad
        };
        assert_eq!(pad_of(3), pad_of(3));
        let distinct: std::collections::HashSet<u64> = (0..16).map(pad_of).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn static_permutation_fixed_per_build() {
        let order_of = |seed: u64| -> Vec<String> {
            let mut m = compile(PROG).unwrap();
            apply_static_permutation(&mut m, seed);
            let f = m.func(m.func_by_name("f").unwrap());
            f.block(Function::ENTRY)
                .insts
                .iter()
                .filter_map(|i| match i {
                    Inst::Alloca { name, .. } => Some(name.clone()),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(order_of(5), order_of(5), "same build seed, same layout");
        let orders: std::collections::HashSet<Vec<String>> = (0..20).map(order_of).collect();
        assert!(orders.len() > 1, "different builds should differ");
    }

    #[test]
    fn canary_detects_linear_overflow() {
        let src = r#"
            int victim() {
                char buf[16];
                memset(buf, 65, 64);
                return 0;
            }
            int main() { return victim(); }
        "#;
        let mut m = compile(src).unwrap();
        apply_stack_canary(&mut m);
        verify_module(&m).unwrap();
        let out = Executor::for_module(m)
            .build()
            .run_main(ScriptedInput::empty());
        assert!(
            matches!(out.exit, Exit::Fault(FaultKind::CanarySmashed { .. })),
            "expected canary detection, got {:?}",
            out.exit
        );
    }

    #[test]
    fn matrix_labels_are_distinct() {
        let labels: std::collections::HashSet<String> =
            DefenseKind::MATRIX.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), DefenseKind::MATRIX.len());
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for kind in DefenseKind::MATRIX {
            assert_eq!(DefenseKind::from_label(&kind.label()), Some(kind));
            assert_eq!(
                DefenseKind::from_label(&kind.label().to_ascii_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(DefenseKind::from_label("no-such-defense"), None);
    }
}
