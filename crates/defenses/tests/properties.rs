//! Behavioral properties of the baseline defenses.

use smokestack_defenses::{
    apply_entry_padding, apply_stack_canary, apply_static_permutation, deploy, DefenseKind,
    ENTRY_PAD_NAME,
};
use smokestack_ir::{Inst, Terminator};
use smokestack_minic::compile;
use smokestack_vm::{Executor, Exit, ScriptedInput};

const PROG: &str = r#"
    int f(int a) {
        long x = a;
        char buf[40];
        short y = 2;
        int z = 3;
        buf[0] = 1;
        return x + y + z;
    }
    int main() { return f(1); }
"#;

#[test]
fn deployments_are_reproducible() {
    for kind in DefenseKind::MATRIX {
        let build = |build_seed: u64| {
            let mut m = compile(PROG).unwrap();
            deploy(kind, &mut m, build_seed, 0);
            m.to_string()
        };
        assert_eq!(build(9), build(9), "{kind} not reproducible");
    }
}

#[test]
fn entry_padding_sizes_follow_forrest() {
    // Across many builds, all paddings are multiples of 8 in 8..=64 and
    // more than one size occurs (one of eight possible paddings).
    let mut sizes = std::collections::HashSet::new();
    for seed in 0..40 {
        let mut m = compile(PROG).unwrap();
        apply_entry_padding(&mut m, seed);
        let f = m.func(m.func_by_name("f").unwrap());
        for (_, inst) in f.iter_insts() {
            if let Inst::Alloca { name, ty, .. } = inst {
                if name == ENTRY_PAD_NAME {
                    let sz = ty.size();
                    assert!(sz % 8 == 0 && (8..=64).contains(&sz));
                    sizes.insert(sz);
                }
            }
        }
    }
    assert!(sizes.len() >= 4, "padding variety too low: {sizes:?}");
}

#[test]
fn static_permutation_preserves_alloca_multiset() {
    let mut base = compile(PROG).unwrap();
    let mut perm = compile(PROG).unwrap();
    apply_static_permutation(&mut perm, 123);
    let multiset = |m: &smokestack_ir::Module| {
        let f = m.func(m.func_by_name("f").unwrap());
        let mut v: Vec<(String, u64)> = f
            .iter_insts()
            .filter_map(|(_, i)| match i {
                Inst::Alloca { name, ty, .. } => Some((name.clone(), ty.size())),
                _ => None,
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(multiset(&base), multiset(&perm));
    let _ = &mut base;
}

#[test]
fn canary_checks_every_return_path() {
    let src = r#"
        int g(int a) {
            char b[24];
            b[0] = a;
            if (a > 0) { return 1; }
            if (a < -5) { return 2; }
            return 3;
        }
        int main() { return g(1) + g(-10) + g(0); }
    "#;
    let mut m = compile(src).unwrap();
    apply_stack_canary(&mut m);
    smokestack_ir::verify_module(&m).unwrap();
    let f = m.func(m.func_by_name("g").unwrap());
    // No block may end in a bare Ret without a preceding canary check:
    // every original Ret was rewritten into CondBr(fail, ret_bb) where
    // ret_bb contains only the Ret.
    let mut checked_rets = 0;
    for (_, b) in f.iter_blocks() {
        if let Terminator::CondBr { .. } = b.term {
            if b.insts.iter().any(|i| {
                matches!(
                    i,
                    Inst::Call {
                        callee: smokestack_ir::Callee::Intrinsic(smokestack_ir::Intrinsic::Canary),
                        ..
                    }
                )
            }) {
                checked_rets += 1;
            }
        }
    }
    assert!(
        checked_rets >= 3,
        "expected 3 guarded returns, saw {checked_rets}"
    );
    // And the program still works.
    let out = Executor::for_module(m)
        .build()
        .run_main(ScriptedInput::empty());
    assert_eq!(out.exit, Exit::Return(6));
}

#[test]
fn stack_base_offsets_spread_widely() {
    let mut offsets = std::collections::HashSet::new();
    for seed in 0..64 {
        offsets.insert(smokestack_defenses::stack_base_offset(seed, 1 << 20));
    }
    assert!(offsets.len() > 60, "offsets collide too much");
    assert!(offsets.iter().all(|o| o % 16 == 0 && *o < (1 << 20)));
}

#[test]
fn smokestack_deployment_reports_placements() {
    let mut m = compile(PROG).unwrap();
    let dep = deploy(
        DefenseKind::Smokestack(smokestack_srng::SchemeKind::Aes10),
        &mut m,
        1,
        2,
    );
    let report = dep.smokestack.expect("report present");
    assert!(report.placements.contains_key("f"));
    let p = &report.placements["f"];
    // Slots: spilled a, x, buf, y, z.
    assert_eq!(p.slot_names, vec!["a", "x", "buf", "y", "z"]);
    assert!(p.entropy_bits > 3.0, "5 slots should exceed 3 bits");
}
