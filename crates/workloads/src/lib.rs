//! # smokestack-workloads
//!
//! The benchmark corpus for the performance evaluation (paper §V-A/B):
//! sixteen synthetic programs named after the SPEC CPU2006 benchmarks
//! the paper measures, each calibrated to the corresponding benchmark's
//! *stack behaviour* (call frequency, call depth, frame size, allocation
//! mix), plus two I/O-bound applications (ProFTPD- and Wireshark-style)
//! whose runtime is dominated by simulated device waits, plus three
//! PARSEC-style multi-threaded programs (spawn/join, atomics, mutexes)
//! exercising the deterministic scheduler. The threaded programs are
//! data-race-free and commutative, so their results are independent of
//! the seeded interleaving — a requirement for the corpus determinism
//! and hardening-preservation tests below.
//!
//! The absolute numbers are not meant to match the paper's testbed —
//! the *shape* is: which benchmarks pay the most for per-invocation
//! randomization (call-heavy, small-work functions), which pay nothing
//! (loop kernels), and how the I/O-bound applications sit near zero.
//!
//! # Examples
//!
//! ```
//! use smokestack_workloads::{all, by_name};
//!
//! assert!(all().len() >= 17);
//! let w = by_name("perlbench").unwrap();
//! let module = w.compile().unwrap();
//! assert!(module.func_by_name("main").is_some());
//! ```

#![warn(missing_docs)]

mod programs;

use smokestack_ir::Module;
use smokestack_minic::{compile, CompileError};

/// How a workload spends its time — used to group Figure 3's bars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// CPU-bound SPEC-style benchmark.
    Cpu,
    /// I/O-bound real-world application analog.
    Io,
    /// Multi-threaded PARSEC-style benchmark: spawn/join workers with
    /// atomics or mutexes under the deterministic seeded scheduler.
    Threaded,
}

/// One benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (SPEC-style).
    pub name: &'static str,
    /// MiniC source.
    pub source: &'static str,
    /// CPU- or I/O-bound.
    pub class: WorkloadClass,
    /// One-line description of the behaviour it models.
    pub profile: &'static str,
}

impl Workload {
    /// Compile the workload to IR.
    ///
    /// # Errors
    ///
    /// Returns the front-end error (the corpus is expected to compile).
    pub fn compile(&self) -> Result<Module, CompileError> {
        compile(self.source)
    }
}

/// The full corpus in Figure 3 order.
pub fn all() -> Vec<Workload> {
    use programs::*;
    use WorkloadClass::{Cpu, Io, Threaded};
    vec![
        Workload {
            name: "perlbench",
            source: PERLBENCH,
            class: Cpu,
            profile: "interpreter: deep recursion (depth ~390), many small helpers",
        },
        Workload {
            name: "bzip2",
            source: BZIP2,
            class: Cpu,
            profile: "block compression: per-block helpers over loop-heavy kernels",
        },
        Workload {
            name: "gcc",
            source: GCC,
            class: Cpu,
            profile: "compiler: symbol interning, folding, register pressure",
        },
        Workload {
            name: "mcf",
            source: MCF,
            class: Cpu,
            profile: "network simplex: pointer-array sweeps, few calls",
        },
        Workload {
            name: "gobmk",
            source: GOBMK,
            class: Cpu,
            profile: "go engine: very large frames (multi-KB work arrays) per call",
        },
        Workload {
            name: "hmmer",
            source: HMMER,
            class: Cpu,
            profile: "profile HMM: one hot DP loop, almost no calls",
        },
        Workload {
            name: "sjeng",
            source: SJENG,
            class: Cpu,
            profile: "chess search: recursive alpha-beta, high call rate",
        },
        Workload {
            name: "libquantum",
            source: LIBQUANTUM,
            class: Cpu,
            profile: "quantum register: tight vector loop, fewest calls",
        },
        Workload {
            name: "h264ref",
            source: H264REF,
            class: Cpu,
            profile: "video encoder: buffer-heavy block helpers, many signatures",
        },
        Workload {
            name: "omnetpp",
            source: OMNETPP,
            class: Cpu,
            profile: "event simulation: malloc/free churn + handler calls",
        },
        Workload {
            name: "astar",
            source: ASTAR,
            class: Cpu,
            profile: "pathfinding: frontier relaxation with small helpers",
        },
        Workload {
            name: "xalancbmk",
            source: XALANCBMK,
            class: Cpu,
            profile: "XML transform: byte-level processing through tiny helpers",
        },
        Workload {
            name: "milc",
            source: MILC,
            class: Cpu,
            profile: "lattice QCD: fused multiply sweeps, compute-bound",
        },
        Workload {
            name: "povray",
            source: POVRAY,
            class: Cpu,
            profile: "ray tracer: per-ray recursion, call-heavy",
        },
        Workload {
            name: "lbm",
            source: LBM,
            class: Cpu,
            profile: "lattice Boltzmann: pure streaming kernel",
        },
        Workload {
            name: "sphinx3",
            source: SPHINX3,
            class: Cpu,
            profile: "speech decoding: Gaussian scoring per frame",
        },
        Workload {
            name: "proftpd",
            source: PROFTPD_APP,
            class: Io,
            profile: "FTP daemon: network waits dominate",
        },
        Workload {
            name: "wireshark",
            source: WIRESHARK_APP,
            class: Io,
            profile: "capture/dissect loop: device waits dominate",
        },
        Workload {
            name: "swaptions",
            source: SWAPTIONS,
            class: Threaded,
            profile: "parallel Monte Carlo pricing: 4 workers, atomic reduction",
        },
        Workload {
            name: "dedup",
            source: DEDUP,
            class: Threaded,
            profile: "two-stage pipeline: producer/consumer over an atomic ring",
        },
        Workload {
            name: "streamcluster",
            source: STREAMCLUSTER,
            class: Threaded,
            profile: "clustering round: 4 workers convoying on one mutex",
        },
    ]
}

/// CPU-bound subset (the SPEC bars of Figure 3/4).
pub fn spec_cpu() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.class == WorkloadClass::Cpu)
        .collect()
}

/// I/O-bound subset.
pub fn io_apps() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.class == WorkloadClass::Io)
        .collect()
}

/// Multi-threaded subset (the PARSEC-style trio).
pub fn threaded_apps() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.class == WorkloadClass::Threaded)
        .collect()
}

/// Look up a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokestack_vm::{Executor, Exit, ScriptedInput};

    #[test]
    fn corpus_compiles_and_verifies() {
        for w in all() {
            let m = w
                .compile()
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", w.name));
            smokestack_ir::verify_module(&m)
                .unwrap_or_else(|e| panic!("{} failed to verify: {e:?}", w.name));
        }
    }

    #[test]
    fn corpus_runs_clean_and_deterministic() {
        for w in all() {
            let run = |seed: u64| {
                let m = w.compile().unwrap();
                Executor::for_module(m)
                    .trng_seed(seed)
                    .build()
                    .run_main(ScriptedInput::empty())
            };
            let a = run(1);
            let b = run(2);
            assert!(
                matches!(a.exit, Exit::Return(_)),
                "{}: {:?}",
                w.name,
                a.exit
            );
            assert_eq!(a.exit, b.exit, "{} output depends on seed", w.name);
            let min_insts = match w.class {
                WorkloadClass::Cpu => 20_000,
                WorkloadClass::Io => 2_000, // compute is deliberately thin
                WorkloadClass::Threaded => 10_000,
            };
            assert!(
                a.insts > min_insts,
                "{} too small to be a meaningful benchmark ({} insts)",
                w.name,
                a.insts
            );
        }
    }

    #[test]
    fn io_apps_are_io_dominated() {
        for w in io_apps() {
            let m = w.compile().unwrap();
            let out = Executor::for_module(m)
                .build()
                .run_main(ScriptedInput::empty());
            // Waits are charged in cycles; compute instructions are few.
            let compute_decicycles = out.insts * 12; // upper-bound estimate
            assert!(
                out.decicycles > compute_decicycles * 3,
                "{} is not I/O bound",
                w.name
            );
        }
    }

    #[test]
    fn perlbench_reaches_paper_call_depth() {
        let m = by_name("perlbench").unwrap().compile().unwrap();
        let out = Executor::for_module(m)
            .build()
            .run_main(ScriptedInput::empty());
        assert!(
            out.max_call_depth >= 300,
            "expected deep recursion, got {}",
            out.max_call_depth
        );
    }

    #[test]
    fn gobmk_has_large_frames() {
        let m = by_name("gobmk").unwrap().compile().unwrap();
        let f = m.func(m.func_by_name("eval_position").unwrap());
        let info = smokestack_core::discover_frame(f);
        let frame = smokestack_core::frame_size_in_order(&info.slot_list());
        assert!(frame >= 4096, "gobmk frame too small: {frame}");
    }

    #[test]
    fn hardened_corpus_preserves_behavior() {
        for w in all() {
            let base = {
                let m = w.compile().unwrap();
                Executor::for_module(m)
                    .build()
                    .run_main(ScriptedInput::empty())
            };
            let mut m = w.compile().unwrap();
            smokestack_core::harden(&mut m, &smokestack_core::SmokestackConfig::default()).unwrap();
            let hard = Executor::for_module(m)
                .build()
                .run_main(ScriptedInput::empty());
            assert_eq!(base.exit, hard.exit, "{} changed under hardening", w.name);
        }
    }

    #[test]
    fn threaded_apps_are_interleaving_invariant() {
        // The trio really schedules (nonzero digest), covers distinct
        // interleavings across seeds, and — being DRF and commutative —
        // returns the same value under every one of them.
        for w in threaded_apps() {
            let run = |sched_seed: u64| {
                let m = w.compile().unwrap();
                Executor::for_module(m)
                    .sched_seed(sched_seed)
                    .detect_races(true)
                    .build()
                    .run_main(ScriptedInput::empty())
            };
            let baseline = run(0);
            assert!(
                matches!(baseline.exit, Exit::Return(_)),
                "{}: {:?}",
                w.name,
                baseline.exit
            );
            assert_ne!(baseline.sched_digest, 0, "{} never scheduled", w.name);
            let mut digests = vec![baseline.sched_digest];
            for seed in 1..5u64 {
                let out = run(seed);
                assert_eq!(
                    out.exit, baseline.exit,
                    "{} result depends on the interleaving",
                    w.name
                );
                digests.push(out.sched_digest);
            }
            digests.sort_unstable();
            digests.dedup();
            assert!(
                digests.len() >= 2,
                "{}: 5 seeds produced only {} interleaving(s)",
                w.name,
                digests.len()
            );
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = all().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all().len());
    }
}
