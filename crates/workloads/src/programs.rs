//! The synthetic SPEC-2006-style benchmark corpus.
//!
//! Each program is written to match the *stack behaviour* the paper
//! identifies as the driver of Smokestack's overhead on the
//! corresponding real benchmark: how often functions are called (each
//! call pays one RNG draw plus the P-BOX row fetch), how deep the call
//! tree goes (perlbench reaches depth 394 in the paper), how large the
//! frames are (gobmk has an 85 KB frame), and how much of the work is
//! loads/stores versus calls. Compute-bound loop kernels (lbm,
//! libquantum, milc) barely call anything and see near-zero overhead;
//! call-happy interpreters and game engines (perlbench, gobmk, sjeng,
//! xalancbmk, povray) pay the most — the same ordering as Figure 3.

/// PERLBENCH: interpreter-style workload — deep recursion over an
/// expression tree, many small helper functions with varied locals
/// (also a large, diverse P-BOX: one signature per helper).
pub const PERLBENCH: &str = r#"
    long opcount = 0;

    int tiny_hash(int v) {
        int a = v * 31;
        int b = a ^ 61;
        return b;
    }

    int scan_token(int pos, int kind) {
        char lexbuf[24];
        int cls = 0;
        int acc = pos;
        int w = 0;
        lexbuf[0] = kind;
        for (w = 0; w < 40; w++) {
            acc = acc * 33 + w;
            lexbuf[w & 23] = acc & 127;
        }
        cls = tiny_hash(acc) + lexbuf[0];
        return cls;
    }

    int eval_node(int depth, int seed) {
        int left = 0;
        int right = 0;
        int op = 0;
        char pad[12];
        pad[0] = 1;
        opcount = opcount + 1;
        if (depth <= 0) {
            return scan_token(seed, seed & 3);
        }
        op = seed & 3;
        for (left = 0; left < 60; left++) {
            seed = seed * 1103515245 + 12345;
            op = op ^ (seed >> 16);
        }
        op = op & 3;
        left = eval_node(depth - 1, seed * 2 + 1);
        right = eval_node(depth - 1, seed * 3 + 7);
        if (op == 0) { return left + right; }
        if (op == 1) { return left - right; }
        if (op == 2) { return left ^ right; }
        return left + right + op;
    }

    int deep_chain(int depth) {
        int local = depth;
        if (depth <= 0) { return local; }
        return deep_chain(depth - 1) + 1;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(786432);
        arena[0] = 1;
        long sum = 0;
        int round = 0;
        for (round = 0; round < 6; round++) {
            sum = sum + eval_node(7, round);
        }
        sum = sum + deep_chain(390);
        return sum & 0xffff;
    }
"#;

/// BZIP2: block transform — run-length encoding plus frequency
/// counting; loops dominate but block helpers are called per block.
pub const BZIP2: &str = r#"
    char src[4096];
    char dst[8192];
    long freq[256];

    int fill_block(int block, int len) {
        int i = 0;
        int v = block * 7 + 13;
        for (i = 0; i < len; i++) {
            v = v * 1103515245 + 12345;
            src[i] = (v >> 16) & 63;
        }
        return v;
    }

    int rle_block(int len) {
        int i = 0;
        int o = 0;
        int run = 1;
        char prev = src[0];
        for (i = 1; i < len; i++) {
            if (src[i] == prev && run < 250) {
                run = run + 1;
            } else {
                dst[o] = prev;
                dst[o + 1] = run;
                o = o + 2;
                prev = src[i];
                run = 1;
            }
        }
        dst[o] = prev;
        dst[o + 1] = run;
        return o + 2;
    }

    int count_freq(int len) {
        int i = 0;
        int peak = 0;
        for (i = 0; i < 256; i++) { freq[i] = 0; }
        for (i = 0; i < len; i++) {
            freq[src[i]] = freq[src[i]] + 1;
        }
        for (i = 0; i < 256; i++) {
            if (freq[i] > peak) { peak = freq[i]; }
        }
        return peak;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(4194304);
        arena[0] = 1;
        long sum = 0;
        int block = 0;
        for (block = 0; block < 12; block++) {
            fill_block(block, 4000);
            sum = sum + rle_block(4000);
            sum = sum + count_freq(4000);
        }
        return sum & 0xffff;
    }
"#;

/// GCC: compiler-style mixed workload — symbol hashing, small-tree
/// folding, register-allocation-flavoured bitmap juggling across many
/// medium functions.
pub const GCC: &str = r#"
    long symtab[512];

    int hash_sym(int id) {
        int h = id * 2654435761;
        char namebuf[32];
        int w = 0;
        namebuf[0] = id & 7;
        for (w = 0; w < 12; w++) {
            h = h ^ (h >> 13);
            h = h * 5 + w;
        }
        return (h & 511) + namebuf[0] - namebuf[0];
    }

    int intern(int id) {
        int slot = hash_sym(id);
        int probes = 0;
        while (symtab[slot] != 0 && symtab[slot] != id && probes < 64) {
            slot = (slot + 1) & 511;
            probes = probes + 1;
        }
        symtab[slot] = id;
        return slot;
    }

    int fold_expr(int a, int b, int op) {
        int t1 = a;
        int t2 = b;
        char spill[16];
        int w = 0;
        spill[0] = op;
        for (w = 0; w < 18; w++) {
            t1 = t1 + ((t2 + w) & 3);
        }
        if (op == 0) { return t1 + t2; }
        if (op == 1) { return t1 * t2; }
        if (op == 2) { return t1 & t2; }
        return t1 - t2;
    }

    int alloc_regs(int pressure) {
        long livemap = 0;
        int reg = 0;
        int spills = 0;
        int i = 0;
        for (i = 0; i < pressure; i++) {
            reg = i & 15;
            if ((livemap >> reg) & 1) {
                spills = spills + 1;
            }
            livemap = livemap | (1 << reg);
        }
        return spills;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(8388608);
        arena[0] = 1;
        long sum = 0;
        int fn = 0;
        for (fn = 0; fn < 110; fn++) {
            sum = sum + intern(fn * 17 + 3);
            sum = sum + fold_expr(fn, fn * 3, fn & 3);
            sum = sum + alloc_regs(100);
        }
        return sum & 0xffff;
    }
"#;

/// MCF: network-simplex flavour — pointer-chasing over a preallocated
/// arc array; very few calls, lots of memory traffic.
pub const MCF: &str = r#"
    long arc_cost[2048];
    long arc_flow[2048];
    long node_pot[256];

    int update_basis(int node, int r) {
        long delta = 0;
        delta = node_pot[node & 255] + r;
        node_pot[node & 255] = delta % 51;
        return delta & 7;
    }

    int price_arcs(int rounds) {
        int r = 0;
        int i = 0;
        long reduced = 0;
        long pivots = 0;
        for (r = 0; r < rounds; r++) {
            pivots = pivots + update_basis(r * 3, r);
            pivots = pivots + update_basis(r * 7, r);
            pivots = pivots + update_basis(r * 11, r);
            for (i = 0; i < 2048; i++) {
                reduced = arc_cost[i] - node_pot[i & 255] + node_pot[(i * 7) & 255];
                if (reduced < 0) {
                    arc_flow[i] = arc_flow[i] + 1;
                    pivots = pivots + 1;
                }
            }
            node_pot[r & 255] = node_pot[r & 255] + 1;
        }
        return pivots & 0xffff;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(16777216);
        arena[0] = 1;
        int i = 0;
        for (i = 0; i < 2048; i++) {
            arc_cost[i] = (i * 37) % 101 - 50;
            arc_flow[i] = 0;
        }
        for (i = 0; i < 256; i++) { node_pot[i] = i & 7; }
        return price_arcs(28);
    }
"#;

/// GOBMK: go engine — *very large frames* (the paper reports an 85 KB
/// max frame) scanned per move evaluation, called often.
pub const GOBMK: &str = r#"
    char board[361];

    int eval_position(int move) {
        char work[4096];
        char territory[2048];
        char strings[1024];
        int i = 0;
        int score = 0;
        for (i = 0; i < 361; i++) {
            work[i] = board[i] + (move & 1);
            strings[i] = (i * 5) & 15;
        }
        for (i = 0; i < 361; i++) {
            territory[i & 2047] = work[i] ^ strings[i];
            score = score + territory[i & 2047];
        }
        return score;
    }

    int try_move(int pos, int color) {
        char shadow[2048];
        int liberties = 0;
        int i = 0;
        shadow[0] = color;
        for (i = 0; i < 128; i++) {
            liberties = liberties + ((board[(pos + i) % 361] + shadow[0]) & 1);
        }
        return liberties;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(2097152);
        arena[0] = 1;
        long sum = 0;
        int move = 0;
        int i = 0;
        for (i = 0; i < 361; i++) { board[i] = (i * 31) & 3; }
        for (move = 0; move < 260; move++) {
            sum = sum + eval_position(move);
            sum = sum + try_move(move % 361, move & 1);
        }
        return sum & 0xffff;
    }
"#;

/// HMMER: profile HMM dynamic programming — one hot doubly-nested
/// loop, almost no calls.
pub const HMMER: &str = r#"
    long vit[64];
    long trans[64];
    long emit_sc[64];

    int rescale(int i) {
        long shift = 0;
        shift = vit[i & 63] & 3;
        vit[i & 63] = vit[i & 63] - shift;
        return shift;
    }

    int viterbi(int seqlen) {
        int i = 0;
        int k = 0;
        long best = 0;
        long cand = 0;
        for (i = 0; i < seqlen; i++) {
            if ((i & 31) == 0) { best = best + rescale(i); }
            for (k = 1; k < 64; k++) {
                cand = vit[k - 1] + trans[k] + emit_sc[(i + k) & 63];
                if (cand > vit[k]) { vit[k] = cand; }
            }
        }
        for (k = 0; k < 64; k++) {
            if (vit[k] > best) { best = vit[k]; }
        }
        return best & 0xffff;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(2097152);
        arena[0] = 1;
        int k = 0;
        for (k = 0; k < 64; k++) {
            trans[k] = (k * 13) % 17 - 8;
            emit_sc[k] = (k * 7) % 23 - 11;
        }
        return viterbi(900);
    }
"#;

/// SJENG: chess search — recursive alpha-beta skeleton with moderate
/// frames and a high call rate.
pub const SJENG: &str = r#"
    long nodes = 0;

    int eval_board(int ply, int hash) {
        char pieces[64];
        int material = 0;
        int i = 0;
        pieces[0] = ply & 7;
        for (i = 0; i < 64; i++) {
            material = material + ((hash >> (i & 15)) & 3) + pieces[0];
        }
        return material - pieces[0] * 64;
    }

    int search(int depth, int alpha, int beta, int hash) {
        int best = alpha;
        int mv = 0;
        int score = 0;
        char movelist[48];
        int gen = 0;
        movelist[0] = depth;
        nodes = nodes + 1;
        for (gen = 0; gen < 24; gen++) {
            movelist[gen & 47] = (hash + gen) & 63;
        }
        if (depth == 0) {
            return eval_board(depth, hash);
        }
        for (mv = 0; mv < 4; mv++) {
            score = 0 - search(depth - 1, 0 - beta, 0 - best, hash * 5 + mv);
            if (score > best) { best = score; }
            if (best >= beta) { return best; }
        }
        return best;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(8388608);
        arena[0] = 1;
        long sum = 0;
        int game = 0;
        for (game = 0; game < 6; game++) {
            sum = sum + search(6, -30000, 30000, game * 977 + 11);
        }
        return (sum + nodes) & 0xffff;
    }
"#;

/// LIBQUANTUM: quantum register simulation — one tight vector loop;
/// the fewest calls in the suite.
pub const LIBQUANTUM: &str = r#"
    long amp_re[1024];
    long amp_im[1024];

    int phase_kick(int q, int gate) {
        long p = 0;
        p = amp_im[q & 1023] + gate;
        amp_im[q & 1023] = p % 97;
        return p & 7;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(4194304);
        arena[0] = 1;
        int gate = 0;
        int i = 0;
        long t = 0;
        long norm = 0;
        for (i = 0; i < 1024; i++) {
            amp_re[i] = i & 15;
            amp_im[i] = (i * 3) & 15;
        }
        for (gate = 0; gate < 220; gate++) {
            norm = norm + phase_kick(gate * 3, gate);
            norm = norm + phase_kick(gate * 11, gate);
            for (i = 0; i < 1024; i++) {
                t = amp_re[i];
                amp_re[i] = amp_re[i ^ (1 << (gate % 10))];
                amp_im[i] = t - amp_im[i];
            }
        }
        for (i = 0; i < 1024; i++) { norm = norm + amp_re[i] + amp_im[i]; }
        return norm & 0xffff;
    }
"#;

/// H264REF: video encoder — block helpers with several buffers and
/// heavy load/store traffic per call (the slab-locality candidate) and
/// many distinct signatures (a large P-BOX, as the paper's Figure 4
/// shows for h264ref).
pub const H264REF: &str = r#"
    char frame[4096];
    char refframe[4096];

    int sad_block(int bx, int by) {
        char cur[64];
        char refb[64];
        int dx = 0;
        int acc = 0;
        int base = (by * 64 + bx) & 4031;
        for (dx = 0; dx < 64; dx++) {
            cur[dx] = frame[base + dx];
            refb[dx] = refframe[base + dx];
        }
        for (dx = 0; dx < 64; dx++) {
            if (cur[dx] > refb[dx]) { acc = acc + cur[dx] - refb[dx]; }
            else { acc = acc + refb[dx] - cur[dx]; }
        }
        return acc;
    }

    int dct_block(int seed) {
        long coef[16];
        long tmp[16];
        int i = 0;
        int j = 0;
        long acc = 0;
        for (i = 0; i < 16; i++) { coef[i] = (seed + i * 7) & 255; }
        for (i = 0; i < 16; i++) {
            tmp[i] = 0;
            for (j = 0; j < 16; j++) {
                tmp[i] = tmp[i] + coef[j] * ((i * j) % 7 - 3);
            }
        }
        for (i = 0; i < 16; i++) { acc = acc + tmp[i]; }
        return acc & 0xffff;
    }

    int quant_block(int q, int seed) {
        long lev[16];
        int i = 0;
        int nz = 0;
        for (i = 0; i < 16; i++) {
            lev[i] = ((seed + i * 13) & 255) / (q + 1);
            if (lev[i] != 0) { nz = nz + 1; }
        }
        return nz;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(2097152);
        arena[0] = 1;
        long sum = 0;
        int mb = 0;
        int i = 0;
        for (i = 0; i < 4096; i++) {
            frame[i] = (i * 31) & 127;
            refframe[i] = (i * 29 + 5) & 127;
        }
        for (mb = 0; mb < 140; mb++) {
            sum = sum + sad_block(mb & 63, mb >> 3);
            sum = sum + dct_block(mb * 11);
            sum = sum + quant_block(mb & 7, mb * 3);
        }
        return sum & 0xffff;
    }
"#;

/// OMNETPP: discrete event simulation — malloc/free churn for event
/// objects plus moderate per-event handler calls.
pub const OMNETPP: &str = r#"
    long now = 0;

    int handle_event(long *ev) {
        long kind = ev[0];
        long t = ev[1];
        int work = 0;
        char ctx[40];
        ctx[0] = kind;
        now = t;
        work = (kind * 17 + t) & 255;
        for (kind = 0; kind < 50; kind++) {
            work = (work * 29 + kind) & 4095;
        }
        return work + ctx[0] - ctx[0];
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(6291456);
        arena[0] = 1;
        long sum = 0;
        int i = 0;
        for (i = 0; i < 700; i++) {
            long *ev = malloc(32);
            ev[0] = i & 7;
            ev[1] = now + (i % 13) + 1;
            sum = sum + handle_event(ev);
            free(ev);
        }
        return (sum + now) & 0xffff;
    }
"#;

/// ASTAR: grid pathfinding — frontier scans with small helper calls.
pub const ASTAR: &str = r#"
    long gscore[1024];
    char closed[1024];

    int heuristic(int a, int b) {
        int ax = a & 31;
        int ay = a >> 5;
        int bx = b & 31;
        int by = b >> 5;
        int dx = ax - bx;
        int dy = ay - by;
        int w = 0;
        if (dx < 0) { dx = 0 - dx; }
        if (dy < 0) { dy = 0 - dy; }
        for (w = 0; w < 30; w++) {
            dx = dx + ((dy + w) & 1);
        }
        return dx + dy - (dx & 0);
    }

    int relax(int node, int goal) {
        int best = 1000000;
        int n = 0;
        int d = 0;
        int cand = 0;
        for (d = 0; d < 4; d++) {
            n = (node + 1 + d * 31) & 1023;
            if (closed[n] == 0) {
                cand = gscore[n] + 1 + heuristic(n, goal);
                if (cand < best) { best = cand; }
            }
        }
        for (d = 0; d < 45; d++) {
            best = best + ((node + d) & 1);
        }
        gscore[node] = best;
        closed[node] = 1;
        return best;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(8388608);
        arena[0] = 1;
        long sum = 0;
        int step = 0;
        int i = 0;
        for (i = 0; i < 1024; i++) { gscore[i] = heuristic(i, 993); }
        for (step = 0; step < 360; step++) {
            sum = sum + relax((step * 37) & 1023, 993);
        }
        return sum & 0xffff;
    }
"#;

/// XALANCBMK: XML transform — byte-level string processing through
/// many tiny helpers; the highest call rate after perlbench.
pub const XALANCBMK: &str = r#"
    char doc[2048];
    char outbuf[4096];

    int classify(int c) {
        int k = c & 127;
        if (k == 60) { return 1; }
        if (k == 62) { return 2; }
        if (k == 38) { return 3; }
        return 0;
    }

    int escape_char(int c, int pos) {
        char tmp[8];
        int n = classify(c);
        int w = 0;
        int acc = c;
        for (w = 0; w < 55; w++) {
            acc = acc * 31 + w;
        }
        n = n + (acc & 0);
        tmp[0] = c;
        if (n == 3) {
            outbuf[pos] = 38;
            outbuf[pos + 1] = 97;
            outbuf[pos + 2] = 109;
            return 3;
        }
        outbuf[pos] = tmp[0];
        return 1;
    }

    int transform(int len) {
        int i = 0;
        int o = 0;
        for (i = 0; i < len; i++) {
            o = o + escape_char(doc[i], o & 4000);
        }
        return o;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(4194304);
        arena[0] = 1;
        long sum = 0;
        int pass = 0;
        int i = 0;
        for (i = 0; i < 2048; i++) { doc[i] = 30 + ((i * 11) & 63); }
        for (pass = 0; pass < 2; pass++) {
            sum = sum + transform(2048);
        }
        return sum & 0xffff;
    }
"#;

/// MILC: lattice QCD — SU(3)-flavoured fused multiply loops over a
/// flat lattice; compute-bound.
pub const MILC: &str = r#"
    long lat_re[1536];
    long lat_im[1536];

    int gauge_fix(int site, int sweep) {
        long phase = 0;
        phase = lat_re[site & 1535] + sweep;
        lat_im[site & 1535] = (lat_im[site & 1535] + (phase & 3)) % 89;
        return phase & 15;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(12582912);
        arena[0] = 1;
        int sweep = 0;
        int i = 0;
        long tr = 0;
        long ti = 0;
        long sum = 0;
        for (i = 0; i < 1536; i++) {
            lat_re[i] = (i * 5) & 31;
            lat_im[i] = (i * 3) & 31;
        }
        for (sweep = 0; sweep < 140; sweep++) {
            sum = sum + gauge_fix(sweep * 7, sweep);
            sum = sum + gauge_fix(sweep * 13, sweep);
            sum = sum + gauge_fix(sweep * 29, sweep);
            for (i = 0; i < 1536; i++) {
                tr = lat_re[i] * 2 - lat_im[(i + 3) % 1536];
                ti = lat_im[i] * 2 + lat_re[(i + 7) % 1536];
                lat_re[i] = tr % 97;
                lat_im[i] = ti % 89;
            }
        }
        for (i = 0; i < 1536; i++) { sum = sum + lat_re[i] + lat_im[i]; }
        return sum & 0xffff;
    }
"#;

/// POVRAY: ray tracer — per-ray recursion with vector scratch buffers;
/// call-heavy with mid-sized frames.
pub const POVRAY: &str = r#"
    long spheres[64];

    int intersect(int ray, int depth) {
        long ox = ray & 255;
        long oy = (ray >> 4) & 255;
        long best = 1000000;
        long d = 0;
        int i = 0;
        char shade[32];
        shade[0] = depth;
        for (i = 0; i < 64; i++) {
            d = (ox - spheres[i]) * (ox - spheres[i]) + (oy - i) * (oy - i);
            if (d < best) { best = d; }
        }
        return best & 1023;
    }

    int trace_ray(int ray, int depth) {
        int hit = 0;
        int reflected = 0;
        long color = 0;
        if (depth <= 0) { return 0; }
        hit = intersect(ray, depth);
        color = hit & 255;
        if ((hit & 3) == 0) {
            reflected = trace_ray(ray * 7 + depth, depth - 1);
        }
        return (color + reflected / 2) & 0xffff;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(6291456);
        arena[0] = 1;
        long image = 0;
        int px = 0;
        int i = 0;
        for (i = 0; i < 64; i++) { spheres[i] = (i * 23) & 255; }
        for (px = 0; px < 700; px++) {
            image = image + trace_ray(px, 3);
        }
        return image & 0xffff;
    }
"#;

/// LBM: lattice Boltzmann — the purest streaming kernel; essentially
/// zero call overhead, the paper's near-zero bar.
pub const LBM: &str = r#"
    long cells[2048];
    long next[2048];

    int boundary(int side, int t) {
        long edge = 0;
        edge = cells[side] + t;
        cells[side] = edge & 63;
        return edge & 7;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(16777216);
        arena[0] = 1;
        int t = 0;
        int i = 0;
        long sum = 0;
        for (i = 0; i < 2048; i++) { cells[i] = i & 63; }
        for (t = 0; t < 120; t++) {
            sum = sum + boundary(0, t) + boundary(2047, t);
            sum = sum + boundary(1, t) + boundary(2046, t);
            for (i = 1; i < 2047; i++) {
                next[i] = (cells[i - 1] + cells[i] * 2 + cells[i + 1]) / 4;
            }
            for (i = 1; i < 2047; i++) {
                cells[i] = next[i] + ((t ^ i) & 1);
            }
        }
        for (i = 0; i < 2048; i++) { sum = sum + cells[i]; }
        return sum & 0xffff;
    }
"#;

/// SPHINX3: speech decoding — Gaussian scoring loops with moderate
/// per-frame helper calls.
pub const SPHINX3: &str = r#"
    long means[256];
    long vars[256];

    int score_frame(int frame) {
        long feat[32];
        long score = 0;
        int d = 0;
        int g = 0;
        long diff = 0;
        for (d = 0; d < 32; d++) { feat[d] = (frame * 7 + d * 3) & 63; }
        for (g = 0; g < 8; g++) {
            for (d = 0; d < 32; d++) {
                diff = feat[d] - means[g * 32 + d];
                score = score + diff * diff / (vars[g * 32 + d] + 1);
            }
        }
        return score & 0xffff;
    }

    int main() {
        /* resident working set of the real benchmark (arena) */
        char *arena = malloc(4194304);
        arena[0] = 1;
        long total = 0;
        int f = 0;
        int i = 0;
        for (i = 0; i < 256; i++) {
            means[i] = (i * 13) & 63;
            vars[i] = (i & 15) + 1;
        }
        for (f = 0; f < 420; f++) {
            total = total + score_frame(f);
        }
        return total & 0xffff;
    }
"#;

/// PROFTPD (I/O-bound): an FTP-ish command loop that spends nearly all
/// of its time waiting for the network; compute is a sliver.
pub const PROFTPD_APP: &str = r#"
    long sessions = 0;

    int parse_command(int raw) {
        char cmdbuf[64];
        int verb = raw & 7;
        cmdbuf[0] = verb;
        if (verb == 0) { return 1; }
        if (verb == 1) { return 2; }
        return 3 + cmdbuf[0] - cmdbuf[0];
    }

    int main() {
        long served = 0;
        int req = 0;
        for (req = 0; req < 120; req++) {
            io_wait(4000);
            served = served + parse_command(req * 13);
        }
        sessions = served;
        return served & 0xffff;
    }
"#;

/// WIRESHARK (I/O-bound): capture-and-dissect loop dominated by
/// waiting on the capture device.
pub const WIRESHARK_APP: &str = r#"
    long packets = 0;

    int dissect(int pkt) {
        char header[32];
        int proto = 0;
        int i = 0;
        for (i = 0; i < 32; i++) { header[i] = (pkt * 7 + i) & 255; }
        proto = header[0] & 3;
        if (proto == 0) { return header[4]; }
        if (proto == 1) { return header[8] + header[12]; }
        return header[2];
    }

    int main() {
        long sum = 0;
        int pkt = 0;
        for (pkt = 0; pkt < 150; pkt++) {
            io_wait(3200);
            sum = sum + dissect(pkt);
            packets = packets + 1;
        }
        return sum & 0xffff;
    }
"#;

/// SWAPTIONS (threaded): PARSEC-style embarrassingly parallel Monte
/// Carlo pricing — four workers price disjoint lanes of paths and fold
/// their partial sums into a shared accumulator with acq-rel atomics.
/// Commutative reduction, so the result is interleaving-independent.
pub const SWAPTIONS: &str = r#"
    long total = 0;

    long price_path(long seed) {
        long acc = 0;
        long i = 0;
        long rate = seed;
        char scratch[32];
        scratch[0] = seed & 7;
        for (i = 0; i < 90; i++) {
            rate = rate * 1103515245 + 12345;
            acc = acc + ((rate >> 16) & 1023);
            scratch[i & 31] = acc & 127;
        }
        return acc + scratch[5];
    }

    int worker(long lane) {
        long sum = 0;
        long s = 0;
        for (s = 0; s < 40; s++) {
            sum = sum + price_path(lane * 1000 + s);
        }
        atomic_add(&total, sum);
        return 0;
    }

    int main() {
        long t0 = spawn(worker, 1);
        long t1 = spawn(worker, 2);
        long t2 = spawn(worker, 3);
        long t3 = spawn(worker, 4);
        join(t0);
        join(t1);
        join(t2);
        join(t3);
        return atomic_load(&total) & 0xffff;
    }
"#;

/// DEDUP (threaded): PARSEC-style two-stage pipeline — a producer
/// chunks and fingerprints a stream into a bounded ring while the main
/// thread consumes and folds. Every ring access (head, tail, slots) is
/// an acq-rel atomic, so the program is data-race-free by construction
/// and the folded checksum is interleaving-independent.
pub const DEDUP: &str = r#"
    long chunk_fp(long i) {
        long fp = i * 2654435761;
        long k = 0;
        char window[16];
        window[0] = i & 15;
        for (k = 0; k < 24; k++) {
            fp = (fp >> 3) ^ (fp * 131) + window[0];
            window[k & 15] = fp & 127;
        }
        return fp & 1048575;
    }

    int producer(long buf) {
        char *b = buf;
        char *slot = buf;
        long i = 0;
        long v = 0;
        for (i = 0; i < 96; i++) {
            /* bounded ring of 8: wait until the consumer frees a slot */
            while (atomic_load(b + 8) + 8 <= i) {
                v = v + 0;
            }
            slot = b + 16 + ((i & 7) * 8);
            atomic_store(slot, chunk_fp(i));
            atomic_store(b, i + 1);
        }
        return 0;
    }

    int main() {
        char *ring = malloc(128);
        char *slot = ring;
        long sum = 0;
        long i = 0;
        long v = 0;
        long t = 0;
        atomic_store(ring, 0);
        atomic_store(ring + 8, 0);
        t = spawn(producer, ring);
        for (i = 0; i < 96; i++) {
            while (atomic_load(ring) <= i) {
                v = v + 0;
            }
            slot = ring + 16 + ((i & 7) * 8);
            v = atomic_load(slot);
            sum = sum + (v ^ (i * 3));
            atomic_store(ring + 8, i + 1);
        }
        join(t);
        return sum & 0xffff;
    }
"#;

/// STREAMCLUSTER (threaded): PARSEC-style clustering round — four
/// workers compute point-to-center distances privately, then convoy on
/// one mutex to publish into the shared totals. The sums are
/// commutative and the counts fixed, so every interleaving agrees.
pub const STREAMCLUSTER: &str = r#"
    long m = 0;
    long centers = 0;
    long assigned = 0;

    long dist(long p, long c) {
        long d = 0;
        long k = 0;
        long coords[24];
        for (k = 0; k < 24; k++) {
            coords[k] = (p * (k + 3)) ^ (c * 17 + k);
            d = d + (coords[k] & 255);
        }
        for (k = 0; k < 24; k++) {
            d = d + ((coords[k] * coords[23 - k]) & 63);
        }
        return d;
    }

    int clusterer(long lane) {
        long i = 0;
        long best = 0;
        for (i = 0; i < 70; i++) {
            best = dist(lane * 31 + i, i & 15);
            mutex_lock(&m);
            centers = centers + best;
            assigned = assigned + 1;
            mutex_unlock(&m);
        }
        return 0;
    }

    int main() {
        long t0 = spawn(clusterer, 0);
        long t1 = spawn(clusterer, 1);
        long t2 = spawn(clusterer, 2);
        long t3 = spawn(clusterer, 3);
        join(t0);
        join(t1);
        join(t2);
        join(t3);
        if (assigned == 280) {
            return centers & 0xffff;
        }
        return 1;
    }
"#;
