//! Concrete random-source implementations: the insecure memory-based
//! PRNG, AES-128 CTR (1 and 10 rounds), and simulated RDRAND.

use crate::aes::Aes128;
use crate::source::{RandomSource, SchemeKind};
use crate::trng::TrueRandom;

/// The insecure, memory-based PRNG ("pseudo" in the paper).
///
/// This is a plain xorshift64*; its entire state is one `u64` that the VM
/// mirrors into attacker-readable data memory. An attacker who reads the
/// state can predict every future permutation index — the ablation attack
/// in `smokestack-attacks` does exactly that, reproducing the paper's
/// argument for why memory-based PRNGs are unsafe under its threat model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Construct from a nonzero seed (zero is mapped to a fixed odd seed).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Current state (what a memory-disclosure attack reads).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Overwrite the state (what a memory-corruption attack writes).
    pub fn set_state(&mut self, s: u64) {
        self.state = if s == 0 { 0x9e3779b97f4a7c15 } else { s };
    }

    /// Advance and return the next value. Public as a free function of
    /// the state too (see [`XorShift64::step`]) so attack code can
    /// replicate the generator from disclosed state.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let (next_state, out) = Self::step(self.state);
        self.state = next_state;
        out
    }

    /// The output multiplier (public — the algorithm is no secret).
    pub const MULT: u64 = 0x2545f4914f6cdd1d;

    /// One generator step from an arbitrary state: `(next_state, output)`.
    ///
    /// Attack code uses this to run the generator forward from a
    /// disclosed state.
    pub fn step(mut s: u64) -> (u64, u64) {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        (s, s.wrapping_mul(Self::MULT))
    }

    /// The output that was produced by the step that *led to* `state` —
    /// i.e. the most recent draw an attacker can reconstruct after
    /// disclosing the in-memory state (`output = state * MULT`).
    pub fn output_of_state(state: u64) -> u64 {
        state.wrapping_mul(Self::MULT)
    }

    /// Invert one generator step: given the state *after* a step,
    /// recover the state before it. Lets an attacker walk the generator
    /// backwards from a single disclosure.
    pub fn unstep(state: u64) -> u64 {
        // Invert s ^= s >> 27 (one application suffices: 27*2 > 64… use
        // iterative refinement for each stage).
        let mut s = state;
        s = invert_xorshift_right(s, 27);
        s = invert_xorshift_left(s, 25);
        s = invert_xorshift_right(s, 12);
        s
    }
}

fn invert_xorshift_right(mut v: u64, shift: u32) -> u64 {
    // y = x ^ (x >> s)  =>  recover x by repeated re-application.
    let mut recovered = v;
    for _ in 0..(64 / shift + 1) {
        recovered = v ^ (recovered >> shift);
    }
    v = recovered;
    v
}

fn invert_xorshift_left(mut v: u64, shift: u32) -> u64 {
    let mut recovered = v;
    for _ in 0..(64 / shift + 1) {
        recovered = v ^ (recovered << shift);
    }
    v = recovered;
    v
}

impl RandomSource for XorShift64 {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Pseudo
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn disclosable_state(&self) -> Option<u64> {
        Some(self.state)
    }
}

/// AES-128 counter-mode generator with a configurable round count.
///
/// Key and nonce are held **outside** the simulated data memory (the
/// paper keeps them in registers via AES-NI); the universal call counter
/// triggers a re-key from the true-random source every
/// `rekey_interval` draws, mirroring §III-D.
pub struct Aes128Ctr<T: TrueRandom> {
    aes: Aes128,
    nonce: u128,
    counter: u32,
    rounds: u32,
    rekey_interval: u32,
    draws: u32,
    trng: T,
    /// One encrypted block yields two u64 outputs; the spare is cached.
    spare: Option<u64>,
}

impl<T: TrueRandom> Aes128Ctr<T> {
    /// Default number of draws between re-keys.
    pub const DEFAULT_REKEY_INTERVAL: u32 = 1 << 20;

    /// Create a generator with `rounds` AES rounds (1 for "AES-1",
    /// 10 for "AES-10"), keyed from `trng`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= rounds <= 10`.
    pub fn new(rounds: u32, mut trng: T) -> Aes128Ctr<T> {
        assert!((1..=10).contains(&rounds), "rounds must be in 1..=10");
        let mut key = [0u8; 16];
        trng.fill(&mut key);
        let mut nonce_bytes = [0u8; 16];
        trng.fill(&mut nonce_bytes);
        Aes128Ctr {
            aes: Aes128::new(key),
            nonce: u128::from_le_bytes(nonce_bytes) & !0xffff_ffff,
            counter: 0,
            rounds,
            rekey_interval: Self::DEFAULT_REKEY_INTERVAL,
            draws: 0,
            trng,
            spare: None,
        }
    }

    /// Override the re-key interval (draws between fresh key/nonce).
    pub fn with_rekey_interval(mut self, interval: u32) -> Aes128Ctr<T> {
        assert!(interval > 0, "rekey interval must be positive");
        self.rekey_interval = interval;
        self
    }

    /// Number of AES rounds in use.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    fn rekey(&mut self) {
        let mut key = [0u8; 16];
        self.trng.fill(&mut key);
        let mut nonce_bytes = [0u8; 16];
        self.trng.fill(&mut nonce_bytes);
        self.aes = Aes128::new(key);
        self.nonce = u128::from_le_bytes(nonce_bytes) & !0xffff_ffff;
        self.counter = 0;
        self.spare = None;
    }
}

impl<T: TrueRandom> RandomSource for Aes128Ctr<T> {
    fn kind(&self) -> SchemeKind {
        if self.rounds == 1 {
            SchemeKind::Aes1
        } else {
            SchemeKind::Aes10
        }
    }

    fn next_u64(&mut self) -> u64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        self.draws += 1;
        if self.draws >= self.rekey_interval {
            self.draws = 0;
            self.rekey();
        }
        let block_in = (self.nonce | self.counter as u128).to_le_bytes();
        self.counter = self.counter.wrapping_add(1);
        let block = self.aes.encrypt_block_rounds(block_in, self.rounds);
        let lo = u64::from_le_bytes(block[..8].try_into().expect("8 bytes"));
        let hi = u64::from_le_bytes(block[8..].try_into().expect("8 bytes"));
        self.spare = Some(hi);
        lo
    }
}

/// Simulated RDRAND: a fresh true-random value per invocation, at the
/// modelled 265.6-cycle latency of the hardware instruction.
pub struct Rdrand<T: TrueRandom> {
    trng: T,
}

impl<T: TrueRandom> Rdrand<T> {
    /// Wrap a true-random source.
    pub fn new(trng: T) -> Rdrand<T> {
        Rdrand { trng }
    }
}

impl<T: TrueRandom> RandomSource for Rdrand<T> {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Rdrand
    }

    fn next_u64(&mut self) -> u64 {
        self.trng.next_u64()
    }
}

/// Build the scheme named by `kind`, seeded from a [`TrueRandom`] source.
pub fn build_source<T: TrueRandom + 'static>(
    kind: SchemeKind,
    mut trng: T,
) -> Box<dyn RandomSource> {
    match kind {
        SchemeKind::Pseudo => Box::new(XorShift64::new(trng.next_u64())),
        SchemeKind::Aes1 => Box::new(Aes128Ctr::new(1, trng)),
        SchemeKind::Aes10 => Box::new(Aes128Ctr::new(10, trng)),
        SchemeKind::Rdrand => Box::new(Rdrand::new(trng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trng::SeededTrng;

    #[test]
    fn xorshift_predictable_from_state() {
        let mut gen = XorShift64::new(1234);
        let disclosed = gen.state();
        // Attacker replicates the stream from the disclosed state.
        let (s1, predicted) = XorShift64::step(disclosed);
        assert_eq!(gen.next(), predicted);
        let (_, predicted2) = XorShift64::step(s1);
        assert_eq!(gen.next(), predicted2);
    }

    #[test]
    fn xorshift_unstep_inverts_step() {
        for seed in [1u64, 42, 0xdead_beef, u64::MAX] {
            let (next, _) = XorShift64::step(seed);
            assert_eq!(XorShift64::unstep(next), seed);
        }
    }

    #[test]
    fn xorshift_output_recoverable_from_state() {
        let mut g = XorShift64::new(77);
        let out = g.next();
        // Attacker discloses the post-draw state and reconstructs the
        // draw that produced it.
        assert_eq!(XorShift64::output_of_state(g.state()), out);
    }

    #[test]
    fn xorshift_zero_seed_handled() {
        let mut g = XorShift64::new(0);
        assert_ne!(g.next(), 0);
    }

    #[test]
    fn aes_ctr_streams_differ_by_rounds() {
        let a1: Vec<u64> = {
            let mut g = Aes128Ctr::new(1, SeededTrng::new(9));
            (0..8).map(|_| g.next_u64()).collect()
        };
        let a10: Vec<u64> = {
            let mut g = Aes128Ctr::new(10, SeededTrng::new(9));
            (0..8).map(|_| g.next_u64()).collect()
        };
        assert_ne!(a1, a10);
    }

    #[test]
    fn aes_ctr_deterministic_under_seeded_trng() {
        let mut a = Aes128Ctr::new(10, SeededTrng::new(5));
        let mut b = Aes128Ctr::new(10, SeededTrng::new(5));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn aes_ctr_no_short_cycles() {
        let mut g = Aes128Ctr::new(10, SeededTrng::new(1));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(g.next_u64()), "keystream repeated");
        }
    }

    #[test]
    fn rekey_changes_stream() {
        let mut g = Aes128Ctr::new(10, SeededTrng::new(3)).with_rekey_interval(4);
        let vals: Vec<u64> = (0..64).map(|_| g.next_u64()).collect();
        let unique: std::collections::HashSet<_> = vals.iter().collect();
        assert_eq!(unique.len(), vals.len());
    }

    #[test]
    fn rdrand_draws_fresh_values() {
        let mut r = Rdrand::new(SeededTrng::new(7));
        assert_ne!(r.next_u64(), r.next_u64());
        assert_eq!(r.kind(), SchemeKind::Rdrand);
        assert_eq!(r.disclosable_state(), None);
    }

    #[test]
    fn aes_ctr_bits_roughly_balanced() {
        // Not a randomness test suite — just a sanity check that the
        // keystream is not obviously biased.
        let mut g = Aes128Ctr::new(10, SeededTrng::new(31));
        let mut ones = 0u64;
        const N: u64 = 4096;
        for _ in 0..N {
            ones += g.next_u64().count_ones() as u64;
        }
        let expected = N * 32;
        let dev = ones.abs_diff(expected);
        assert!(
            dev < expected / 50,
            "bit bias too large: {ones} vs {expected}"
        );
    }

    #[test]
    fn masked_draws_cover_table_indices() {
        // Draw & mask must hit every row of a small table eventually —
        // the property the instrumentation's pow2 indexing relies on.
        let mut g = Aes128Ctr::new(10, SeededTrng::new(5));
        let mask = 7u64;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..512 {
            seen.insert(g.next_u64() & mask);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn build_source_kinds() {
        for kind in SchemeKind::ALL {
            let src = build_source(kind, SeededTrng::new(11));
            assert_eq!(src.kind(), kind);
        }
    }

    #[test]
    fn only_pseudo_discloses_state() {
        for kind in SchemeKind::ALL {
            let src = build_source(kind, SeededTrng::new(2));
            assert_eq!(
                src.disclosable_state().is_some(),
                kind == SchemeKind::Pseudo
            );
        }
    }
}
