//! AES-128 implemented from scratch (FIPS-197), with a configurable
//! round count.
//!
//! The paper's prototype uses Intel AES-NI to encrypt a counter with a
//! true-random key; it evaluates both the standard 10-round AES-128
//! ("AES-10", standard-conforming) and a weakened 1-round variant
//! ("AES-1") to expose the security/performance trade-off. This module
//! provides exactly that: [`Aes128::encrypt_block`] is standard AES-128
//! and is tested against the FIPS-197 appendix vectors, while
//! [`Aes128::encrypt_block_rounds`] runs a reduced number of rounds.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply in GF(2^8) with the AES reduction polynomial.
fn xtime(a: u8) -> u8 {
    let hi = a & 0x80;
    let mut r = a << 1;
    if hi != 0 {
        r ^= 0x1b;
    }
    r
}

fn gmul(a: u8, b: u8) -> u8 {
    let mut r = 0u8;
    let mut a = a;
    let mut b = b;
    while b != 0 {
        if b & 1 != 0 {
            r ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    r
}

/// AES-128 with a precomputed key schedule.
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expand a 128-bit key into the full schedule.
    pub fn new(key: [u8; 16]) -> Aes128 {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Standard 10-round AES-128 encryption of one block.
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        self.encrypt_block_rounds(block, 10)
    }

    /// Reduced-round encryption: `AddRoundKey`, then `rounds - 1` full
    /// rounds, then a final round without `MixColumns`. `rounds == 10` is
    /// standard AES-128.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= rounds <= 10`.
    pub fn encrypt_block_rounds(&self, block: [u8; 16], rounds: u32) -> [u8; 16] {
        assert!((1..=10).contains(&rounds), "rounds must be in 1..=10");
        let mut s = block;
        add_round_key(&mut s, &self.round_keys[0]);
        for r in 1..rounds {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[r as usize]);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[rounds as usize]);
        s
    }
}

// State is column-major: s[4*c + r] is row r, column c (as in FIPS-197).

fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        s[i] ^= rk[i];
    }
}

fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn shift_rows(s: &mut [u8; 16]) {
    let orig = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[4 * c + r] = orig[4 * ((c + r) % 4) + r];
        }
    }
}

fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        s[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        s[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        s[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn fips_197_appendix_b() {
        // FIPS-197 Appendix B worked example.
        let aes = Aes128::new(hex("2b7e151628aed2a6abf7158809cf4f3c"));
        let ct = aes.encrypt_block(hex("3243f6a8885a308d313198a2e0370734"));
        assert_eq!(ct, hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips_197_appendix_c1() {
        // FIPS-197 Appendix C.1 (AES-128) known-answer test.
        let aes = Aes128::new(hex("000102030405060708090a0b0c0d0e0f"));
        let ct = aes.encrypt_block(hex("00112233445566778899aabbccddeeff"));
        assert_eq!(ct, hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn reduced_rounds_differ_from_full() {
        let aes = Aes128::new(hex("000102030405060708090a0b0c0d0e0f"));
        let pt = hex("00112233445566778899aabbccddeeff");
        let one = aes.encrypt_block_rounds(pt, 1);
        let ten = aes.encrypt_block_rounds(pt, 10);
        assert_ne!(one, ten);
        assert_ne!(one, pt);
    }

    #[test]
    fn rounds_are_deterministic() {
        let aes = Aes128::new([7u8; 16]);
        let pt = [1u8; 16];
        for r in 1..=10 {
            assert_eq!(
                aes.encrypt_block_rounds(pt, r),
                aes.encrypt_block_rounds(pt, r)
            );
        }
    }

    #[test]
    #[should_panic(expected = "rounds must be in 1..=10")]
    fn zero_rounds_rejected() {
        Aes128::new([0u8; 16]).encrypt_block_rounds([0u8; 16], 0);
    }

    #[test]
    fn gf_multiplication() {
        // Examples from FIPS-197 §4.2.
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(0x57, 0x02), 0xae);
        assert_eq!(gmul(0x57, 0x01), 0x57);
    }

    #[test]
    fn shift_rows_layout() {
        let mut s = [0u8; 16];
        for (i, b) in s.iter_mut().enumerate() {
            *b = i as u8;
        }
        shift_rows(&mut s);
        // Row 0 unshifted: bytes 0,4,8,12 stay.
        assert_eq!([s[0], s[4], s[8], s[12]], [0, 4, 8, 12]);
        // Row 1 rotated by 1: positions pick up next column.
        assert_eq!([s[1], s[5], s[9], s[13]], [5, 9, 13, 1]);
    }
}
