//! True-random seeding sources.
//!
//! The paper seeds its AES generator (key + nonce) from a true-random
//! source and re-seeds when a universal call counter hits a maximum. For
//! reproducible experiments we also provide a deterministic "lab bench"
//! TRNG seeded explicitly.

use smokestack_rand::Rng;

/// A source of true-random bytes used for keys, nonces, guard keys, and
/// load-time identifiers.
pub trait TrueRandom {
    /// Fill `buf` with entropy.
    fn fill(&mut self, buf: &mut [u8]);

    /// Draw a true-random `u64`.
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Operating-system entropy (the analog of `/dev/random` / RDSEED).
#[derive(Debug, Default)]
pub struct OsTrueRandom;

impl OsTrueRandom {
    /// Construct.
    pub fn new() -> OsTrueRandom {
        OsTrueRandom
    }
}

impl TrueRandom for OsTrueRandom {
    fn fill(&mut self, buf: &mut [u8]) {
        smokestack_rand::os_fill_bytes(buf);
    }
}

/// Deterministic TRNG stand-in for reproducible experiments and tests.
///
/// Security analyses in this repo run attacks thousands of times; a fixed
/// seed makes failures replayable while the *program under test* still
/// sees an unpredictable-to-it stream.
#[derive(Debug, Clone)]
pub struct SeededTrng(Rng);

impl SeededTrng {
    /// Construct from a 64-bit seed.
    pub fn new(seed: u64) -> SeededTrng {
        SeededTrng(Rng::seed_from_u64(seed))
    }
}

impl TrueRandom for SeededTrng {
    fn fill(&mut self, buf: &mut [u8]) {
        self.0.fill_bytes(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_trng_produces_bytes() {
        let mut t = OsTrueRandom::new();
        let a = t.next_u64();
        let b = t.next_u64();
        // Astronomically unlikely to be equal.
        assert_ne!(a, b);
    }

    #[test]
    fn seeded_trng_reproducible() {
        let mut a = SeededTrng::new(42);
        let mut b = SeededTrng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SeededTrng::new(43);
        assert_ne!(SeededTrng::new(42).next_u64(), c.next_u64());
    }
}
