//! # smokestack-srng
//!
//! Random-number sources for the Smokestack reproduction, covering the
//! four schemes the paper evaluates (§III-D, Table I):
//!
//! | source  | security | cycles/invocation |
//! |---------|----------|-------------------|
//! | pseudo  | None     | 3.4               |
//! | AES-1   | Low      | 19.2              |
//! | AES-10  | High     | 92.8              |
//! | RDRAND  | High     | 265.6             |
//!
//! * [`XorShift64`] is the insecure memory-based PRNG whose state is
//!   deliberately disclosable (the paper's "pseudo" baseline).
//! * [`Aes128Ctr`] is AES-128 counter mode built on a from-scratch
//!   FIPS-197 [`Aes128`] core, with 1-round ("AES-1") and 10-round
//!   ("AES-10") configurations and periodic true-random re-keying.
//! * [`Rdrand`] models the on-chip true random number generator.
//!
//! Hardware latency is *modelled*, not measured: [`SchemeKind`] carries
//! the paper's per-invocation cycle costs so the VM can charge them to
//! its simulated cycle budget.
//!
//! # Examples
//!
//! ```
//! use smokestack_srng::{build_source, SchemeKind, SeededTrng};
//!
//! let mut src = build_source(SchemeKind::Aes10, SeededTrng::new(42));
//! let a = src.next_u64();
//! let b = src.next_u64();
//! assert_ne!(a, b);
//! assert_eq!(SchemeKind::Aes10.cost_cycles(), 92.8);
//! ```

#![warn(missing_docs)]

mod aes;
mod schemes;
mod source;
mod trng;

pub use aes::Aes128;
pub use schemes::{build_source, Aes128Ctr, Rdrand, XorShift64};
pub use source::{RandomSource, SchemeKind, SecurityLevel};
pub use trng::{OsTrueRandom, SeededTrng, TrueRandom};
