//! The `RandomSource` abstraction and the paper's four schemes.

use std::fmt;

/// How strongly a scheme resists the paper's threat model (Table I,
/// "Security" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SecurityLevel {
    /// No resistance: state lives in attacker-readable memory.
    None,
    /// Weak: reduced-round AES leaks structure but the key is protected.
    Low,
    /// Strong: full AES-128 CTR or true randomness.
    High,
}

impl fmt::Display for SecurityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SecurityLevel::None => "None",
            SecurityLevel::Low => "Low",
            SecurityLevel::High => "High",
        };
        f.write_str(s)
    }
}

/// The four random-number schemes evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Insecure memory-based PRNG (performance baseline only).
    Pseudo,
    /// AES-128 counter mode, 1 round.
    Aes1,
    /// AES-128 counter mode, 10 rounds (standard-conforming).
    Aes10,
    /// Per-invocation hardware true randomness (RDRAND).
    Rdrand,
}

impl SchemeKind {
    /// All schemes in the paper's Table I order.
    pub const ALL: [SchemeKind; 4] = [
        SchemeKind::Pseudo,
        SchemeKind::Aes1,
        SchemeKind::Aes10,
        SchemeKind::Rdrand,
    ];

    /// Per-invocation generation cost, in **deci-cycles** (tenths of a
    /// cycle), exactly matching paper Table I: pseudo 3.4, AES-1 19.2,
    /// AES-10 92.8, RDRAND 265.6 cycles per invocation.
    pub fn cost_decicycles(self) -> u64 {
        match self {
            SchemeKind::Pseudo => 34,
            SchemeKind::Aes1 => 192,
            SchemeKind::Aes10 => 928,
            SchemeKind::Rdrand => 2656,
        }
    }

    /// Per-invocation cost in cycles, as the paper reports it.
    pub fn cost_cycles(self) -> f64 {
        self.cost_decicycles() as f64 / 10.0
    }

    /// Security classification from Table I.
    pub fn security(self) -> SecurityLevel {
        match self {
            SchemeKind::Pseudo => SecurityLevel::None,
            SchemeKind::Aes1 => SecurityLevel::Low,
            SchemeKind::Aes10 | SchemeKind::Rdrand => SecurityLevel::High,
        }
    }

    /// Table I row label.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Pseudo => "pseudo",
            SchemeKind::Aes1 => "AES-1",
            SchemeKind::Aes10 => "AES-10",
            SchemeKind::Rdrand => "RDRAND",
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A per-invocation entropy source for stack-layout permutation.
///
/// Implementations must be cheap to call; the *modelled* hardware cost is
/// reported separately through [`SchemeKind::cost_decicycles`] so the VM
/// can charge it to the simulated cycle budget.
pub trait RandomSource {
    /// Which scheme this is.
    fn kind(&self) -> SchemeKind;

    /// Draw the next 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// For schemes whose working state lives in ordinary data memory
    /// (only `pseudo`), expose that state so the VM can mirror it into
    /// attacker-readable memory, faithfully modelling the paper's
    /// "memory-based PRNG is unsafe" argument. Returns `None` for
    /// disclosure-resistant schemes.
    fn disclosable_state(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_costs() {
        assert_eq!(SchemeKind::Pseudo.cost_cycles(), 3.4);
        assert_eq!(SchemeKind::Aes1.cost_cycles(), 19.2);
        assert_eq!(SchemeKind::Aes10.cost_cycles(), 92.8);
        assert_eq!(SchemeKind::Rdrand.cost_cycles(), 265.6);
    }

    #[test]
    fn table1_security() {
        assert_eq!(SchemeKind::Pseudo.security(), SecurityLevel::None);
        assert_eq!(SchemeKind::Aes1.security(), SecurityLevel::Low);
        assert_eq!(SchemeKind::Aes10.security(), SecurityLevel::High);
        assert_eq!(SchemeKind::Rdrand.security(), SecurityLevel::High);
    }

    #[test]
    fn ordering_matches_paper_table() {
        let labels: Vec<&str> = SchemeKind::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["pseudo", "AES-1", "AES-10", "RDRAND"]);
        // Costs strictly increase down the table.
        let costs: Vec<u64> = SchemeKind::ALL
            .iter()
            .map(|s| s.cost_decicycles())
            .collect();
        assert!(costs.windows(2).all(|w| w[0] < w[1]));
    }
}
