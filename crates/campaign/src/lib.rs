//! Parallel Monte-Carlo campaign engine for probabilistic security
//! evaluation.
//!
//! The paper's security claims are statistical: Smokestack reduces a
//! DOP adversary to brute-forcing a per-invocation permutation, so
//! "the attack is stopped" really means "success probability is below
//! some bound". A handful of fixed-seed trials cannot distinguish a
//! working defense from a lucky one. This crate scales the evidence:
//!
//! * [`plan`] — declarative attack × defense × trial-count grids with
//!   a master seed; built-in `smoke`, `matrix`, and `full` plans plus a
//!   plan-file parser.
//! * [`pool`] — the reusable scoped-thread worker pool (over the
//!   hand-rolled work-stealing [`queue`]) with per-worker non-`Send`
//!   state; the engine here and the differential fuzzer both shard
//!   onto it.
//! * [`engine`] — runs each trial in an isolated VM on that pool.
//!   Per-trial seeds are split off the master seed by grid position,
//!   so aggregates are bit-identical across `--jobs` settings.
//! * [`record`] — one JSONL record per trial, streamed through a
//!   shared sink; the journal doubles as the checkpoint for
//!   kill/resume.
//! * [`stats`] — Wilson score confidence intervals on success
//!   probability, survival curves over adaptive-attacker restart
//!   budgets, and (via the engine's merged telemetry) chi-squared
//!   layout-uniformity evidence.
//! * [`matrix`] — the pinned "security matrix v2": interval-based
//!   bounds asserting that real-CVE attacks stay below a
//!   paper-consistent success ceiling under secure schemes while fully
//!   compromising the unprotected baseline.
//!
//! The `campaign` binary drives all of it from the command line.

pub mod engine;
pub mod matrix;
pub mod plan;
pub mod pool;
pub mod queue;
pub mod record;
pub mod stats;

pub use engine::{build_seed, run_campaign, trial_seed, CampaignResult, EngineConfig, RecordSink};
pub use matrix::{
    bounds_for_plan, check, security_matrix_v2, smoke_bounds, MatrixBound, Violation,
};
pub use plan::{CampaignPlan, PlanCell};
pub use pool::{run_pool, run_pool_draining, DrainGate, PoolRun};
pub use queue::WorkQueue;
pub use record::{
    is_incident_line, journal_header, parse_journal, Journal, OutcomeKind, TrialRecord,
};
pub use stats::{aggregate, wilson_interval, CellStats, SURVIVAL_BUDGETS, Z95};
