//! Declarative campaign plans: an attack × defense × trial-count grid
//! plus the master seed every per-trial seed is derived from.
//!
//! A plan is the unit of reproducibility: the same plan (same
//! fingerprint) always produces the same per-trial seeds, regardless of
//! worker count or scheduling, so campaign aggregates are bit-stable
//! across `--jobs` settings and across checkpoint/resume boundaries.

use smokestack_attacks::Attack;
use smokestack_defenses::DefenseKind;
use smokestack_srng::SchemeKind;

/// One grid cell: `trials` independent campaigns of one attack against
/// one deployed defense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanCell {
    /// Attack name, resolvable via `smokestack_attacks::by_name`.
    pub attack: String,
    /// The defense deployed on the vulnerable build.
    pub defense: DefenseKind,
    /// Number of independent Monte-Carlo trials.
    pub trials: u32,
}

/// A full campaign plan: named grid + master seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignPlan {
    /// Plan name (journal header, reports).
    pub name: String,
    /// Master seed; every build seed and trial seed splits off this.
    pub master_seed: u64,
    /// The grid, in report order.
    pub cells: Vec<PlanCell>,
}

impl CampaignPlan {
    /// Total trials across all cells.
    pub fn total_trials(&self) -> u64 {
        self.cells.iter().map(|c| u64::from(c.trials)).sum()
    }

    /// Order-sensitive FNV-1a fingerprint of the whole plan. Journals
    /// embed it so a resume against an edited plan is rejected instead
    /// of silently merging incompatible trial grids.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        eat(&self.master_seed.to_le_bytes());
        for cell in &self.cells {
            eat(cell.attack.as_bytes());
            eat(cell.defense.label().as_bytes());
            eat(&cell.trials.to_le_bytes());
        }
        h
    }

    /// Cap every cell at `max` trials (quick exploratory runs).
    pub fn truncated(mut self, max: u32) -> CampaignPlan {
        for cell in &mut self.cells {
            cell.trials = cell.trials.min(max);
        }
        self
    }

    /// The CI smoke plan: cheap attacks, every defense class, ~200
    /// trials total. Small enough for a debug-build test run, varied
    /// enough to exercise the full engine (grid, seeds, journal).
    pub fn smoke() -> CampaignPlan {
        let mut cells = Vec::new();
        for defense in [
            DefenseKind::None,
            DefenseKind::Canary,
            DefenseKind::Smokestack(SchemeKind::Pseudo),
            DefenseKind::Smokestack(SchemeKind::Aes10),
        ] {
            cells.push(PlanCell {
                attack: "listing1-dop".into(),
                defense,
                trials: 25,
            });
        }
        for defense in [
            DefenseKind::None,
            DefenseKind::StackBase,
            DefenseKind::EntryPadding,
            DefenseKind::Smokestack(SchemeKind::Aes10),
        ] {
            cells.push(PlanCell {
                attack: "synthetic-direct-stack".into(),
                defense,
                trials: 25,
            });
        }
        CampaignPlan {
            name: "smoke".into(),
            master_seed: 0x5e11_ab1e,
            cells,
        }
    }

    /// The paper-scale evaluation plan behind the security matrix v2:
    /// every real-CVE attack against the unprotected baseline and the
    /// two secure Smokestack schemes, with enough trials for meaningful
    /// 95% intervals.
    pub fn matrix() -> CampaignPlan {
        let mut cells = Vec::new();
        for attack in [
            "librelp-cve-2018-1000140",
            "wireshark-cve-2014-2299",
            "proftpd-cve-2006-5815",
        ] {
            for defense in [
                DefenseKind::None,
                DefenseKind::Smokestack(SchemeKind::Aes10),
                DefenseKind::Smokestack(SchemeKind::Rdrand),
            ] {
                cells.push(PlanCell {
                    attack: attack.into(),
                    defense,
                    trials: 120,
                });
            }
        }
        // Cross-thread DOP rows: one thread corrupting a sibling
        // thread's frame, against the baseline and both secure schemes
        // with per-thread layout draws.
        for attack in ["xthread-shared-overflow", "xthread-toctou-race"] {
            for defense in [
                DefenseKind::None,
                DefenseKind::Smokestack(SchemeKind::Aes10),
                DefenseKind::Smokestack(SchemeKind::Rdrand),
            ] {
                cells.push(PlanCell {
                    attack: attack.into(),
                    defense,
                    trials: 120,
                });
            }
        }
        CampaignPlan {
            name: "matrix".into(),
            master_seed: 0xcafe_f00d,
            cells,
        }
    }

    /// The full grid: the whole standard suite plus the adaptive
    /// attacker against every defense row of the paper's comparison.
    pub fn full() -> CampaignPlan {
        let mut cells = Vec::new();
        let attacks: Vec<String> = smokestack_attacks::standard_suite()
            .iter()
            .map(|a| a.name().to_string())
            .chain(std::iter::once("adaptive-same-invocation".to_string()))
            .collect();
        for attack in &attacks {
            for defense in DefenseKind::MATRIX {
                cells.push(PlanCell {
                    attack: attack.clone(),
                    defense,
                    trials: 40,
                });
            }
        }
        CampaignPlan {
            name: "full".into(),
            master_seed: 0xf01d_ab1e,
            cells,
        }
    }

    /// The synthesized-payload evaluation plan: every `synth-*` catalog
    /// attack against the unprotected baseline (does the planner's
    /// payload still work?) and against Smokestack/AES-10 (is it
    /// contained?). Baseline cells are small because the unprotected
    /// layout is deterministic; AES-10 cells carry enough trials for
    /// the Wilson bounds in [`crate::matrix::synth_bounds`], with extra
    /// budget for the librelp cursor jump's brute-force residual.
    pub fn matrix_synth() -> CampaignPlan {
        let mut cells = Vec::new();
        for attack in smokestack_attacks::synth::catalog() {
            cells.push(PlanCell {
                attack: attack.name().into(),
                defense: DefenseKind::None,
                trials: 8,
            });
            // The librelp cursor jump and the small-frame chain corpus
            // both retain a brute-force residual under randomization,
            // so their caps need the tighter interval of more trials.
            let residual = attack.name().contains("librelp") || attack.name().contains("chains");
            let trials = if residual { 120 } else { 40 };
            cells.push(PlanCell {
                attack: attack.name().into(),
                defense: DefenseKind::Smokestack(SchemeKind::Aes10),
                trials,
            });
        }
        CampaignPlan {
            name: "matrix-synth".into(),
            master_seed: 0x5d0_7e51,
            cells,
        }
    }

    /// Look up a built-in plan by name.
    pub fn builtin(name: &str) -> Option<CampaignPlan> {
        match name {
            "smoke" => Some(CampaignPlan::smoke()),
            "matrix" => Some(CampaignPlan::matrix()),
            "matrix-synth" => Some(CampaignPlan::matrix_synth()),
            "full" => Some(CampaignPlan::full()),
            _ => None,
        }
    }

    /// Parse a plan file. Line-oriented:
    ///
    /// ```text
    /// # comment
    /// name my-plan
    /// seed 1234
    /// cell listing1-dop smokestack/AES-10 40
    /// ```
    ///
    /// `cell` lines are `<attack> <defense-label> <trials>`; attack and
    /// defense names never contain whitespace. Unknown attacks and
    /// defense labels are rejected here, not at run time.
    pub fn parse(text: &str) -> Result<CampaignPlan, String> {
        let mut name = None;
        let mut seed = None;
        let mut cells = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            let keyword = words.next().expect("non-empty line");
            let err = |msg: String| format!("plan line {}: {msg}", ln + 1);
            match keyword {
                "name" => {
                    name = Some(
                        words
                            .next()
                            .ok_or_else(|| err("missing plan name".into()))?
                            .to_string(),
                    );
                }
                "seed" => {
                    let w = words.next().ok_or_else(|| err("missing seed".into()))?;
                    let parsed = if let Some(hex) = w.strip_prefix("0x") {
                        u64::from_str_radix(hex, 16)
                    } else {
                        w.parse()
                    };
                    seed = Some(parsed.map_err(|_| err(format!("bad seed `{w}`")))?);
                }
                "cell" => {
                    let attack = words
                        .next()
                        .ok_or_else(|| err("missing attack name".into()))?;
                    let defense = words
                        .next()
                        .ok_or_else(|| err("missing defense label".into()))?;
                    let trials = words
                        .next()
                        .ok_or_else(|| err("missing trial count".into()))?;
                    if smokestack_attacks::by_name(attack).is_none() {
                        return Err(err(format!("unknown attack `{attack}`")));
                    }
                    let defense = DefenseKind::from_label(defense)
                        .ok_or_else(|| err(format!("unknown defense `{defense}`")))?;
                    let trials: u32 = trials
                        .parse()
                        .map_err(|_| err(format!("bad trial count `{trials}`")))?;
                    if trials == 0 {
                        return Err(err("trial count must be positive".into()));
                    }
                    cells.push(PlanCell {
                        attack: attack.to_string(),
                        defense,
                        trials,
                    });
                }
                other => return Err(err(format!("unknown keyword `{other}`"))),
            }
            if let Some(extra) = words.next() {
                return Err(err(format!("trailing junk `{extra}`")));
            }
        }
        if cells.is_empty() {
            return Err("plan has no cells".into());
        }
        Ok(CampaignPlan {
            name: name.unwrap_or_else(|| "unnamed".into()),
            master_seed: seed.unwrap_or(0),
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_plan_file() {
        let plan = CampaignPlan::parse(
            "# demo\nname demo\nseed 0xabc\n\
             cell listing1-dop smokestack/AES-10 8\n\
             cell listing1-dop none 4\n",
        )
        .unwrap();
        assert_eq!(plan.name, "demo");
        assert_eq!(plan.master_seed, 0xabc);
        assert_eq!(plan.cells.len(), 2);
        assert_eq!(
            plan.cells[0].defense,
            DefenseKind::Smokestack(SchemeKind::Aes10)
        );
        assert_eq!(plan.total_trials(), 12);
    }

    #[test]
    fn rejects_unknown_names() {
        assert!(CampaignPlan::parse("cell no-such-attack none 4").is_err());
        assert!(CampaignPlan::parse("cell listing1-dop no-such-defense 4").is_err());
        assert!(CampaignPlan::parse("cell listing1-dop none 0").is_err());
        assert!(CampaignPlan::parse("name only-a-name").is_err());
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = CampaignPlan::smoke();
        let mut renamed = base.clone();
        renamed.name = "other".into();
        let mut reseeded = base.clone();
        reseeded.master_seed ^= 1;
        let mut resized = base.clone();
        resized.cells[0].trials += 1;
        let prints = [
            base.fingerprint(),
            renamed.fingerprint(),
            reseeded.fingerprint(),
            resized.fingerprint(),
        ];
        for i in 0..prints.len() {
            for j in i + 1..prints.len() {
                assert_ne!(prints[i], prints[j], "cells {i} and {j} collide");
            }
        }
    }

    #[test]
    fn builtin_plans_resolve_and_are_runnable() {
        for name in ["smoke", "matrix", "matrix-synth", "full"] {
            let plan = CampaignPlan::builtin(name).unwrap();
            assert_eq!(plan.name, name);
            assert!(plan.total_trials() > 0);
            for cell in &plan.cells {
                assert!(
                    smokestack_attacks::by_name(&cell.attack).is_some(),
                    "unknown attack {} in builtin {name}",
                    cell.attack
                );
            }
        }
        assert!(CampaignPlan::builtin("nope").is_none());
        // The smoke plan is sized for CI: ~200 trials.
        let smoke = CampaignPlan::smoke();
        assert!(
            (150..=250).contains(&smoke.total_trials()),
            "{}",
            smoke.total_trials()
        );
    }
}
