//! Aggregation of trial records into interval estimates.
//!
//! Success counts over independent Bernoulli trials get a Wilson score
//! interval — unlike the normal approximation it behaves at the
//! boundaries (0 or n successes), which is exactly where a working
//! defense lives. Survival curves answer the adaptive-attacker
//! question: if the adversary is willing to burn `b` stealthy restarts,
//! what is the probability the defense still holds?

use std::collections::HashMap;

use smokestack_attacks::CAMPAIGN_BUDGET;

use crate::record::{OutcomeKind, TrialRecord};

/// z for a two-sided 95% confidence interval.
pub const Z95: f64 = 1.959964;

/// Wilson score interval for `successes` out of `trials` at critical
/// value `z`. Returns `(lo, hi)` in `[0, 1]`; `(0, 1)` for zero trials
/// (no evidence constrains nothing).
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = p + z2 / (2.0 * n);
    let margin = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((center - margin) / denom).max(0.0),
        ((center + margin) / denom).min(1.0),
    )
}

/// Attempt budgets at which survival curves are sampled (log-spaced up
/// to the campaign restart budget).
pub const SURVIVAL_BUDGETS: [u32; 7] = [1, 2, 4, 8, 16, 32, CAMPAIGN_BUDGET];

/// Aggregated statistics for one plan cell (attack × defense).
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Plan cell index.
    pub cell: u32,
    /// Attack name.
    pub attack: String,
    /// Defense label.
    pub defense: String,
    /// Trials aggregated.
    pub trials: u64,
    /// Count per outcome class, in [`OutcomeKind::ALL`] order.
    pub counts: [u64; 5],
    /// Mean restarts consumed per trial.
    pub mean_rounds: f64,
    /// Point estimate of attack success probability.
    pub success_rate: f64,
    /// Wilson 95% interval on the success probability.
    pub ci: (f64, f64),
    /// `(budget, survival)`: probability the defense holds when the
    /// adversary is granted at most `budget` restarts, sampled at
    /// [`SURVIVAL_BUDGETS`].
    pub survival: Vec<(u32, f64)>,
}

impl CellStats {
    /// Successes observed.
    pub fn successes(&self) -> u64 {
        self.counts[0]
    }

    /// Defense detections observed.
    pub fn detections(&self) -> u64 {
        self.counts[1]
    }

    /// Serialize as one flat JSON object (for `--json` reports).
    pub fn to_json_line(&self) -> String {
        use smokestack_telemetry::json::push_json_str;
        let mut s = String::with_capacity(192);
        s.push_str("{\"cell\":");
        s.push_str(&self.cell.to_string());
        s.push_str(",\"attack\":");
        push_json_str(&mut s, &self.attack);
        s.push_str(",\"defense\":");
        push_json_str(&mut s, &self.defense);
        s.push_str(",\"trials\":");
        s.push_str(&self.trials.to_string());
        for (kind, count) in OutcomeKind::ALL.iter().zip(self.counts) {
            s.push_str(",\"");
            s.push_str(kind.as_str());
            s.push_str("\":");
            s.push_str(&count.to_string());
        }
        // Fixed-point (×10⁶) so the flat parser's u64-only numbers can
        // read reports back.
        for (key, val) in [
            ("rate_ppm", self.success_rate),
            ("ci_lo_ppm", self.ci.0),
            ("ci_hi_ppm", self.ci.1),
        ] {
            s.push_str(",\"");
            s.push_str(key);
            s.push_str("\":");
            s.push_str(&(((val * 1e6).round() as u64).min(1_000_000)).to_string());
        }
        s.push('}');
        s
    }
}

/// Group `records` by plan cell and aggregate. Cells come back in plan
/// order (ascending cell index).
pub fn aggregate(records: &[TrialRecord]) -> Vec<CellStats> {
    let mut groups: HashMap<u32, Vec<&TrialRecord>> = HashMap::new();
    for rec in records {
        groups.entry(rec.cell).or_default().push(rec);
    }
    let mut cells: Vec<u32> = groups.keys().copied().collect();
    cells.sort_unstable();
    cells
        .into_iter()
        .map(|cell| {
            let recs = &groups[&cell];
            let trials = recs.len() as u64;
            let mut counts = [0u64; 5];
            let mut rounds_sum = 0u64;
            for rec in recs.iter() {
                let slot = OutcomeKind::ALL
                    .iter()
                    .position(|k| *k == rec.kind)
                    .expect("kind in ALL");
                counts[slot] += 1;
                rounds_sum += u64::from(rec.rounds);
            }
            let successes = counts[0];
            let survival = SURVIVAL_BUDGETS
                .iter()
                .map(|&b| {
                    let broken = recs
                        .iter()
                        .filter(|r| r.kind == OutcomeKind::Success && r.rounds <= b)
                        .count() as f64;
                    (b, 1.0 - broken / trials as f64)
                })
                .collect();
            CellStats {
                cell,
                attack: recs[0].attack.clone(),
                defense: recs[0].defense.clone(),
                trials,
                counts,
                mean_rounds: rounds_sum as f64 / trials as f64,
                success_rate: successes as f64 / trials as f64,
                ci: wilson_interval(successes, trials, Z95),
                survival,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cell: u32, index: u32, kind: OutcomeKind, rounds: u32) -> TrialRecord {
        TrialRecord {
            cell,
            index,
            attack: "a".into(),
            defense: "d".into(),
            seed: 0,
            kind,
            rounds,
            detail: String::new(),
        }
    }

    #[test]
    fn wilson_matches_known_values() {
        // Canonical check: 0/40 at 95% → upper bound ≈ 0.0881.
        let (lo, hi) = wilson_interval(0, 40, Z95);
        assert_eq!(lo, 0.0);
        assert!((hi - 0.0881).abs() < 5e-4, "hi = {hi}");
        // 40/40 mirrors it: lower bound ≈ 0.9119.
        let (lo, hi) = wilson_interval(40, 40, Z95);
        assert!((lo - 0.9119).abs() < 5e-4, "lo = {lo}");
        assert_eq!(hi, 1.0);
        // Half successes: symmetric around 0.5.
        let (lo, hi) = wilson_interval(20, 40, Z95);
        assert!((lo + hi - 1.0).abs() < 1e-9);
        assert!(lo < 0.5 && hi > 0.5);
        // No evidence.
        assert_eq!(wilson_interval(0, 0, Z95), (0.0, 1.0));
    }

    #[test]
    fn interval_always_contains_point_estimate() {
        for trials in [1u64, 7, 40, 1000] {
            for successes in 0..=trials.min(50) {
                let p = successes as f64 / trials as f64;
                let (lo, hi) = wilson_interval(successes, trials, Z95);
                assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "{successes}/{trials}");
                assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
            }
        }
    }

    #[test]
    fn aggregate_counts_and_survival() {
        // 2 successes (at rounds 1 and 10) + 2 detections in cell 0.
        let records = vec![
            rec(0, 0, OutcomeKind::Success, 1),
            rec(0, 1, OutcomeKind::Success, 10),
            rec(0, 2, OutcomeKind::Detected, 1),
            rec(0, 3, OutcomeKind::Detected, 2),
            rec(1, 0, OutcomeKind::Failed, 48),
        ];
        let stats = aggregate(&records);
        assert_eq!(stats.len(), 2);
        let c0 = &stats[0];
        assert_eq!(c0.trials, 4);
        assert_eq!(c0.successes(), 2);
        assert_eq!(c0.detections(), 2);
        assert_eq!(c0.success_rate, 0.5);
        // Budget 1: only the rounds-1 success counts → survival 0.75.
        // Budget 16+: both successes → survival 0.5.
        let at = |b: u32| {
            c0.survival
                .iter()
                .find(|(budget, _)| *budget == b)
                .unwrap()
                .1
        };
        assert_eq!(at(1), 0.75);
        assert_eq!(at(8), 0.75);
        assert_eq!(at(16), 0.5);
        assert_eq!(at(CAMPAIGN_BUDGET), 0.5);
        // Cell 1: no successes, survival 1.0 everywhere.
        assert!(stats[1].survival.iter().all(|&(_, s)| s == 1.0));
    }

    #[test]
    fn stats_json_is_parseable() {
        let stats = aggregate(&[rec(0, 0, OutcomeKind::Success, 1)]);
        let obj = smokestack_telemetry::json::parse_flat_object(&stats[0].to_json_line()).unwrap();
        assert_eq!(obj["success"].as_u64(), Some(1));
        assert_eq!(obj["rate_ppm"].as_u64(), Some(1_000_000));
    }
}
