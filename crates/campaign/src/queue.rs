//! A hand-rolled work-stealing task queue (no external crates).
//!
//! Each worker owns a deque: it pops from the *front* of its own deque
//! and, when empty, steals from the *back* of a sibling's. Trials are
//! seeded round-robin, so every worker starts with an even share, and
//! stealing from the opposite end keeps contention low — a thief and
//! the owner only collide when a deque is nearly empty.
//!
//! Locking is a plain `Mutex` per deque rather than a lock-free
//! Chase-Lev deque: campaign tasks are whole VM trials (milliseconds
//! each), so queue overhead is noise and simplicity wins.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Fixed set of per-worker deques over tasks of type `T`.
pub struct WorkQueue<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
}

impl<T> WorkQueue<T> {
    /// Distribute `tasks` round-robin across `workers` deques.
    pub fn new(workers: usize, tasks: impl IntoIterator<Item = T>) -> WorkQueue<T> {
        assert!(workers > 0, "need at least one worker");
        let mut queues: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            queues[i % workers].push_back(task);
        }
        WorkQueue {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Next task for `worker`: its own front, else stolen from the
    /// back of the first non-empty sibling (scanning from `worker + 1`
    /// so thieves spread out instead of mobbing deque 0). `None` means
    /// every deque is empty — with no producers, the queue is drained
    /// for good and the worker can exit.
    pub fn pop(&self, worker: usize) -> Option<T> {
        if let Some(task) = self.queues[worker].lock().unwrap().pop_front() {
            return Some(task);
        }
        let n = self.queues.len();
        for d in 1..n {
            let victim = (worker + d) % n;
            if let Some(task) = self.queues[victim].lock().unwrap().pop_back() {
                return Some(task);
            }
        }
        None
    }

    /// Tasks remaining across all deques (racy snapshot; exact only
    /// when no worker is popping).
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.lock().unwrap().len()).sum()
    }

    /// Whether every deque is empty (same caveat as [`WorkQueue::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn seeds_round_robin_and_drains_in_own_order() {
        let q = WorkQueue::new(2, 0..6);
        // Worker 0 owns [0, 2, 4] and pops its own front first.
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(0), Some(4));
        // Own deque empty: steal from worker 1's back.
        assert_eq!(q.pop(0), Some(5));
        assert_eq!(q.pop(1), Some(1));
        assert_eq!(q.pop(1), Some(3));
        assert_eq!(q.pop(1), None);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_workers_consume_each_task_exactly_once() {
        const TASKS: usize = 1000;
        const WORKERS: usize = 4;
        let q = WorkQueue::new(WORKERS, 0..TASKS);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                let q = &q;
                let seen = &seen;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    while let Some(t) = q.pop(w) {
                        mine.push(t);
                    }
                    seen.lock().unwrap().extend(mine);
                });
            }
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), TASKS);
        let unique: HashSet<usize> = seen.into_iter().collect();
        assert_eq!(unique.len(), TASKS);
    }
}
