//! Security matrix v2: interval-based regression bounds.
//!
//! The original security matrix (`tests/security_matrix.rs`) asserts
//! exact outcomes on a handful of trials. This version is
//! probabilistic: each pinned bound constrains the *Wilson 95%
//! confidence interval* of a cell's success rate, so it scales to
//! Monte-Carlo trial counts and distinguishes "we observed no
//! successes" (weak) from "the 95% upper bound on success probability
//! is below 10%" (strong, and exactly the paper's §V-C claim shape:
//! real-CVE DOP attacks reduced to brute-force odds under AES-10 /
//! RDRAND, full compromise of the unprotected baseline).

use smokestack_attacks::Attack;
use smokestack_defenses::DefenseKind;
use smokestack_srng::SchemeKind;

use crate::stats::CellStats;

/// One pinned bound on a (attack, defense) cell.
#[derive(Debug, Clone)]
pub struct MatrixBound {
    /// Attack name the bound applies to.
    pub attack: String,
    /// Defense row the bound applies to.
    pub defense: DefenseKind,
    /// Wilson 95% *upper* bound on success probability must be ≤ this.
    pub max_success_upper: Option<f64>,
    /// Observed success rate must be ≥ this (point estimate).
    pub min_success_rate: Option<f64>,
}

/// A bound the measured statistics violate (or could not be checked).
#[derive(Debug, Clone)]
pub struct Violation {
    /// The bound that failed.
    pub bound: MatrixBound,
    /// What went wrong, with the measured numbers.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} vs {}: {}",
            self.bound.attack,
            self.bound.defense.label(),
            self.message
        )
    }
}

/// The real-CVE case-study attacks (paper §V-C).
pub const REAL_CVE_ATTACKS: [&str; 3] = [
    "librelp-cve-2018-1000140",
    "wireshark-cve-2014-2299",
    "proftpd-cve-2006-5815",
];

/// The cross-thread DOP attacks (concurrency subsystem): one thread
/// corrupting a sibling thread's frame through a shared pointer or a
/// raced length check.
pub const XTHREAD_ATTACKS: [&str; 2] = ["xthread-shared-overflow", "xthread-toctou-race"];

/// The pinned bounds of security matrix v2, matching the cells of
/// [`crate::plan::CampaignPlan::matrix`] (120 trials per cell):
///
/// * Every real-CVE attack fully compromises the unprotected baseline
///   (success rate ≥ 99%: at most one failed trial in 120).
/// * Under Smokestack with a secure scheme (AES-10, RDRAND) the attack
///   is reduced to its paper-consistent residual, asserted on the
///   Wilson 95% *upper* bound of the success rate:
///   - librelp's non-linear primitive survives as pure brute force —
///     guessing a P-BOX row across the 48-restart campaign budget
///     measures ≈ 2% success per campaign (8/400 at calibration), so
///     its upper bound is capped at 15%, far below any layout leak but
///     leaving no room for the ≈ 2% residual to flake.
///   - wireshark's and proftpd's linear sweeps cross the function-
///     identifier guard slot deterministically, so their cap is 10%
///     (0 successes in 120 trials gives an upper bound of ≈ 3.1%).
pub fn security_matrix_v2() -> Vec<MatrixBound> {
    let mut bounds = Vec::new();
    for attack in REAL_CVE_ATTACKS {
        bounds.push(MatrixBound {
            attack: attack.into(),
            defense: DefenseKind::None,
            max_success_upper: None,
            min_success_rate: Some(0.99),
        });
        let cap = if attack.starts_with("librelp") {
            0.15
        } else {
            0.10
        };
        for scheme in [SchemeKind::Aes10, SchemeKind::Rdrand] {
            bounds.push(MatrixBound {
                attack: attack.into(),
                defense: DefenseKind::Smokestack(scheme),
                max_success_upper: Some(cap),
                min_success_rate: None,
            });
        }
    }
    bounds
}

/// Pinned bounds for the cross-thread rows of the `matrix` plan (120
/// trials per cell): both attacks fully compromise the unprotected
/// baseline (the in-frame distances are static and disclosed by one
/// probe), while per-thread Smokestack draws reduce them to a blind
/// P-BOX row guess whose double-gate target (two exact 8-byte tokens in
/// independently permuted slots) leaves only a small brute-force
/// residual — capped at the same 15% upper bound as the librelp
/// residual.
pub fn xthread_bounds() -> Vec<MatrixBound> {
    let mut bounds = Vec::new();
    for attack in XTHREAD_ATTACKS {
        bounds.push(MatrixBound {
            attack: attack.into(),
            defense: DefenseKind::None,
            max_success_upper: None,
            min_success_rate: Some(0.99),
        });
        for scheme in [SchemeKind::Aes10, SchemeKind::Rdrand] {
            bounds.push(MatrixBound {
                attack: attack.into(),
                defense: DefenseKind::Smokestack(scheme),
                max_success_upper: Some(0.15),
                min_success_rate: None,
            });
        }
    }
    bounds
}

/// Regression bounds for the CI smoke plan
/// ([`crate::plan::CampaignPlan::smoke`], 25 trials per cell): the
/// cheap attacks must keep bypassing every weak defense (and the
/// insecure `pseudo` ablation) while AES-10 holds them to a 15% upper
/// bound (0/25 successes gives ≈ 13.3%).
pub fn smoke_bounds() -> Vec<MatrixBound> {
    let mut bounds = Vec::new();
    for (attack, bypassed) in [
        ("listing1-dop", DefenseKind::Canary),
        ("listing1-dop", DefenseKind::Smokestack(SchemeKind::Pseudo)),
        ("synthetic-direct-stack", DefenseKind::StackBase),
        ("synthetic-direct-stack", DefenseKind::EntryPadding),
    ] {
        bounds.push(MatrixBound {
            attack: attack.into(),
            defense: bypassed,
            max_success_upper: None,
            min_success_rate: Some(0.99),
        });
    }
    for attack in ["listing1-dop", "synthetic-direct-stack"] {
        bounds.push(MatrixBound {
            attack: attack.into(),
            defense: DefenseKind::None,
            max_success_upper: None,
            min_success_rate: Some(0.99),
        });
        bounds.push(MatrixBound {
            attack: attack.into(),
            defense: DefenseKind::Smokestack(SchemeKind::Aes10),
            max_success_upper: Some(0.15),
            min_success_rate: None,
        });
    }
    bounds
}

/// Regression bounds for the synthesized-payload plan
/// ([`crate::plan::CampaignPlan::matrix_synth`]): every synthesized
/// payload must keep compromising the unprotected baseline (the
/// planner's output stays valid), while AES-10 holds each one to the
/// *same* caps the handwritten case studies are pinned at — 10% for
/// cross-frame linear sweeps (the guard slot is crossed
/// deterministically), 15% for attacks that retain the paper's
/// brute-force residual: the librelp cursor jump, and the chain-corpus
/// sweep, which stays inside one small frame (never crossing a guard)
/// so its success odds are exactly the frame's layout entropy.
pub fn synth_bounds() -> Vec<MatrixBound> {
    let mut bounds = Vec::new();
    for attack in smokestack_attacks::synth::catalog() {
        bounds.push(MatrixBound {
            attack: attack.name().into(),
            defense: DefenseKind::None,
            max_success_upper: None,
            min_success_rate: Some(0.99),
        });
        let residual = attack.name().contains("librelp") || attack.name().contains("chains");
        let cap = if residual { 0.15 } else { 0.10 };
        bounds.push(MatrixBound {
            attack: attack.name().into(),
            defense: DefenseKind::Smokestack(SchemeKind::Aes10),
            max_success_upper: Some(cap),
            min_success_rate: None,
        });
    }
    bounds
}

/// The pinned bound set for a built-in plan, if it has one. The
/// `matrix` plan carries the full v2 bounds plus the cross-thread rows;
/// `full` (which iterates the pinned standard suite, not the extended
/// catalog) carries v2 only; `smoke` has its own scaled-down set.
pub fn bounds_for_plan(name: &str) -> Option<Vec<MatrixBound>> {
    match name {
        "matrix" => {
            let mut bounds = security_matrix_v2();
            bounds.extend(xthread_bounds());
            Some(bounds)
        }
        "full" => Some(security_matrix_v2()),
        "matrix-synth" => Some(synth_bounds()),
        "smoke" => Some(smoke_bounds()),
        _ => None,
    }
}

/// Check `stats` against `bounds`. A bound whose cell was not measured
/// is itself a violation — silently skipping an unmeasured cell is how
/// regressions hide.
pub fn check(stats: &[CellStats], bounds: &[MatrixBound]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for bound in bounds {
        let cell = stats
            .iter()
            .find(|s| s.attack == bound.attack && s.defense == bound.defense.label());
        let Some(cell) = cell else {
            violations.push(Violation {
                bound: bound.clone(),
                message: "cell not measured by this campaign".into(),
            });
            continue;
        };
        if let Some(cap) = bound.max_success_upper {
            if cell.ci.1 > cap {
                violations.push(Violation {
                    bound: bound.clone(),
                    message: format!(
                        "95% upper bound on success rate is {:.4} > {cap} \
                         ({}/{} successes)",
                        cell.ci.1,
                        cell.successes(),
                        cell.trials
                    ),
                });
            }
        }
        if let Some(floor) = bound.min_success_rate {
            if cell.success_rate < floor {
                violations.push(Violation {
                    bound: bound.clone(),
                    message: format!(
                        "success rate {:.4} < {floor} ({}/{} successes)",
                        cell.success_rate,
                        cell.successes(),
                        cell.trials
                    ),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{OutcomeKind, TrialRecord};
    use crate::stats::aggregate;

    fn fake_cell(
        cell: u32,
        attack: &str,
        defense: &str,
        successes: u32,
        total: u32,
    ) -> Vec<TrialRecord> {
        (0..total)
            .map(|i| TrialRecord {
                cell,
                index: i,
                attack: attack.into(),
                defense: defense.into(),
                seed: 0,
                kind: if i < successes {
                    OutcomeKind::Success
                } else {
                    OutcomeKind::Detected
                },
                rounds: 1,
                detail: String::new(),
            })
            .collect()
    }

    #[test]
    fn paper_consistent_results_pass() {
        let mut records = Vec::new();
        for (i, attack) in REAL_CVE_ATTACKS.iter().enumerate() {
            let base = i as u32 * 3;
            // librelp retains its ≈2% brute-force residual; the sweep
            // attacks are deterministically guard-detected.
            let residual = if attack.starts_with("librelp") { 3 } else { 0 };
            records.extend(fake_cell(base, attack, "none", 120, 120));
            records.extend(fake_cell(
                base + 1,
                attack,
                "smokestack/AES-10",
                residual,
                120,
            ));
            records.extend(fake_cell(
                base + 2,
                attack,
                "smokestack/RDRAND",
                residual,
                120,
            ));
        }
        let violations = check(&aggregate(&records), &security_matrix_v2());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn leaky_defense_and_broken_attack_are_flagged() {
        let mut records = Vec::new();
        for (i, attack) in REAL_CVE_ATTACKS.iter().enumerate() {
            let base = i as u32 * 3;
            // Attack rotted: only succeeds half the time unprotected.
            records.extend(fake_cell(base, attack, "none", 60, 120));
            // Defense rotted: 30/120 successes → Wilson upper ≈ 0.33.
            records.extend(fake_cell(base + 1, attack, "smokestack/AES-10", 30, 120));
            records.extend(fake_cell(base + 2, attack, "smokestack/RDRAND", 0, 120));
        }
        let violations = check(&aggregate(&records), &security_matrix_v2());
        // Per attack: one floor violation (none) + one cap violation
        // (AES-10).
        assert_eq!(violations.len(), 6, "{violations:?}");
    }

    #[test]
    fn unmeasured_cells_are_violations() {
        let violations = check(&[], &security_matrix_v2());
        assert_eq!(violations.len(), security_matrix_v2().len());
        assert!(violations[0].to_string().contains("not measured"));
    }

    #[test]
    fn every_builtin_plan_covers_its_bounds() {
        use crate::plan::CampaignPlan;
        // Every pinned bound must name a cell its plan actually runs;
        // otherwise --deny-regressions reports spurious "not measured"
        // violations. Checked structurally (no trials executed).
        for name in ["smoke", "matrix", "matrix-synth", "full"] {
            let plan = CampaignPlan::builtin(name).unwrap();
            let bounds = bounds_for_plan(name).unwrap();
            for bound in &bounds {
                assert!(
                    plan.cells
                        .iter()
                        .any(|c| c.attack == bound.attack && c.defense == bound.defense),
                    "plan `{name}` never measures {} vs {}",
                    bound.attack,
                    bound.defense.label()
                );
            }
        }
        assert!(bounds_for_plan("custom").is_none());
    }

    #[test]
    fn zero_of_forty_clears_the_cap_with_confidence() {
        // The arithmetic the pinned cap relies on: 0/40 → upper ≈
        // 0.088 < 0.10, but 2/40 → upper ≈ 0.165 fails.
        let clean = aggregate(&fake_cell(
            0,
            REAL_CVE_ATTACKS[0],
            "smokestack/AES-10",
            0,
            40,
        ));
        assert!(clean[0].ci.1 < 0.10);
        let leaky = aggregate(&fake_cell(
            0,
            REAL_CVE_ATTACKS[0],
            "smokestack/AES-10",
            2,
            40,
        ));
        assert!(leaky[0].ci.1 > 0.10);
    }
}
