//! The parallel Monte-Carlo trial engine.
//!
//! A campaign is a grid of `(attack, defense, trial)` cells flattened
//! into one task list, fanned across a [`WorkQueue`] of scoped worker
//! threads. Three properties make the parallelism safe *and* the
//! results reproducible:
//!
//! * **Per-trial seeds are positional, not temporal.** Every trial's
//!   campaign seed is split off the plan's master seed by `(cell,
//!   index)` via [`smokestack_rand::SeedStream`], so which worker runs
//!   a trial — or whether it runs before or after a checkpoint/resume
//!   boundary — cannot change its outcome. `--jobs 1` and `--jobs 8`
//!   produce bit-identical aggregates.
//! * **Workers share nothing mutable but the results.** The VM's
//!   telemetry handles are deliberately single-threaded
//!   (`Rc<RefCell<..>>`), so each worker deploys its *own* `Build` per
//!   cell (the compiled module itself is shared copy-free behind an
//!   `Arc`). Records funnel through a `Mutex<Vec<_>>` and, optionally,
//!   a [`RecordSink`] journal.
//! * **The journal is the checkpoint.** Each completed trial is one
//!   JSONL line, written atomically; a killed campaign resumes by
//!   parsing the journal and skipping the `(cell, index)` pairs
//!   already present.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::sync::Mutex;

use smokestack_attacks::{by_name, capture_incident, run_trial, Attack, Build};
use smokestack_rand::SeedStream;
use smokestack_telemetry::{
    CollectorConfig, IncidentReport, MetricsRegistry, SharedCollector, SharedJsonlSink,
    SharedRecorder,
};

use crate::plan::CampaignPlan;
use crate::pool::run_pool;
use crate::record::{OutcomeKind, TrialRecord};

/// Seed-stream domain for per-cell build seeds.
const BUILD_DOMAIN: u64 = 0xb11d;
/// Seed-stream domain for per-trial campaign seeds.
const TRIAL_DOMAIN: u64 = 0x7261;

/// The deterministic build seed for `cell` of a plan with `master_seed`.
pub fn build_seed(master_seed: u64, cell: u32) -> u64 {
    SeedStream::new(master_seed, BUILD_DOMAIN).seed(u64::from(cell))
}

/// The deterministic campaign seed for trial `index` of `cell`.
pub fn trial_seed(master_seed: u64, cell: u32, index: u32) -> u64 {
    let per_cell = SeedStream::new(master_seed, TRIAL_DOMAIN).seed(u64::from(cell));
    SeedStream::new(per_cell, 1).seed(u64::from(index))
}

/// Where workers stream completed trial records (one JSON line each).
pub trait RecordSink: Sync {
    /// Append one pre-formatted JSON line.
    fn write_line(&self, line: &str);
}

impl<W: Write + Send> RecordSink for SharedJsonlSink<W> {
    fn write_line(&self, line: &str) {
        SharedJsonlSink::write_line(self, line);
    }
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Checkpoint hook: stop dispatching new trials once this many have
    /// completed *in this run*. In-flight trials still finish, so up to
    /// `jobs - 1` extra records may land. Tests use this to simulate a
    /// campaign killed mid-grid.
    pub stop_after: Option<u64>,
    /// Attach a metrics collector to every trial VM and merge the
    /// per-function P-BOX index frequency tables into the result's
    /// registry, for chi-squared layout-uniformity checks.
    pub trace_uniformity: bool,
    /// Attach a flight recorder to every trial VM and merge per-defense
    /// `trial_decicycles.<defense>` latency streams plus per-attack
    /// `ttd_rounds.<attack>` time-to-detection streams into the
    /// result's registry. Stream merges are bucket-wise adds, so
    /// aggregates stay bit-identical across worker counts. When
    /// `trace_uniformity` is also set the collector takes tracer
    /// precedence and the latency streams stay empty (the collector is
    /// the heavier instrument; pick one per run).
    pub collect_stats: bool,
    /// Re-run every blocked (detected/crashed) trial with a flight
    /// recorder and drain it into an [`IncidentReport`]: collected on
    /// the result and journaled as a dedicated incident line next to
    /// the trial's record.
    pub capture_incidents: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            jobs: 1,
            stop_after: None,
            trace_uniformity: false,
            collect_stats: false,
            capture_incidents: false,
        }
    }
}

/// What a campaign run produced.
#[derive(Debug)]
pub struct CampaignResult {
    /// Records completed in *this* run (excludes resumed-over trials),
    /// sorted by `(cell, index)`.
    pub records: Vec<TrialRecord>,
    /// Merged telemetry across all trial VMs. Empty unless
    /// [`EngineConfig::trace_uniformity`] or
    /// [`EngineConfig::collect_stats`] was set; the
    /// `pbox_index.<function>` frequency tables aggregate layout draws,
    /// and the `trial_decicycles.<defense>` / `ttd_rounds.<attack>`
    /// streams aggregate latency and time-to-detection.
    pub metrics: MetricsRegistry,
    /// Incident reports for blocked trials, keyed by `(cell, index)`
    /// and sorted. Empty unless [`EngineConfig::capture_incidents`].
    pub incidents: Vec<(u32, u32, IncidentReport)>,
    /// Whether `stop_after` tripped before the grid was finished.
    pub stopped_early: bool,
}

/// One unit of work: a single trial campaign.
struct Trial {
    cell: u32,
    index: u32,
    seed: u64,
}

/// A worker's per-cell context: its own deployed build (telemetry
/// handles are not `Send`, so builds are never shared across threads;
/// the compiled module is shared behind an `Arc` inside `Build`).
struct CellCtx {
    attack: Box<dyn Attack>,
    build: Build,
    collector: Option<SharedCollector>,
    recorder: Option<SharedRecorder>,
    defense_label: String,
}

fn make_ctx(plan: &CampaignPlan, cell: u32, cfg: &EngineConfig) -> CellCtx {
    let spec = &plan.cells[cell as usize];
    let attack = by_name(&spec.attack).expect("plan validated before spawn");
    let mut build = Build::new(
        attack.source(),
        spec.defense,
        build_seed(plan.master_seed, cell),
    );
    let collector = cfg.trace_uniformity.then(|| {
        SharedCollector::new(CollectorConfig {
            ring_capacity: 16,
            trace: false,
            metrics: true,
            profile: false,
        })
    });
    if let Some(c) = &collector {
        build = build.with_tracer(c.clone());
    }
    let recorder = cfg.collect_stats.then(SharedRecorder::default);
    if let Some(r) = &recorder {
        build = build.with_recorder(r.clone());
    }
    CellCtx {
        attack,
        build,
        collector,
        recorder,
        defense_label: spec.defense.label(),
    }
}

/// Run `plan` under `cfg`, skipping trials whose `(cell, index)` is in
/// `done` (resume), streaming each completed record to `sink`.
///
/// Fails fast (before spawning anything) if a plan cell names an
/// unknown attack.
pub fn run_campaign(
    plan: &CampaignPlan,
    cfg: &EngineConfig,
    done: &HashSet<(u32, u32)>,
    sink: Option<&dyn RecordSink>,
) -> Result<CampaignResult, String> {
    for cell in &plan.cells {
        if by_name(&cell.attack).is_none() {
            return Err(format!("plan cell names unknown attack `{}`", cell.attack));
        }
    }

    let mut tasks = Vec::new();
    for (ci, cell) in plan.cells.iter().enumerate() {
        let ci = u32::try_from(ci).expect("cell count fits u32");
        for index in 0..cell.trials {
            if !done.contains(&(ci, index)) {
                tasks.push(Trial {
                    cell: ci,
                    index,
                    seed: trial_seed(plan.master_seed, ci, index),
                });
            }
        }
    }

    let metrics: Mutex<MetricsRegistry> = Mutex::new(MetricsRegistry::new());
    let run = run_pool(
        cfg.jobs,
        tasks,
        cfg.stop_after,
        |_worker| HashMap::<u32, CellCtx>::new(),
        |cache, task| {
            let ctx = cache
                .entry(task.cell)
                .or_insert_with(|| make_ctx(plan, task.cell, cfg));
            let run = run_trial(&*ctx.attack, &ctx.build, task.seed);
            let rec = TrialRecord::from_run(
                task.cell,
                task.index,
                ctx.attack.name(),
                &ctx.build.defense.label(),
                task.seed,
                &run,
            );
            // Blocked trials re-derive their deciding attempt under a
            // fresh recorder (replaying the same seed schedule) and
            // journal the forensic window next to the trial record.
            let incident = (cfg.capture_incidents
                && matches!(rec.kind, OutcomeKind::Detected | OutcomeKind::Crashed))
            .then(|| capture_incident(&*ctx.attack, &ctx.build, task.seed))
            .flatten();
            if let Some(sink) = sink {
                sink.write_line(&rec.to_json_line());
                if let Some(inc) = &incident {
                    sink.write_line(&inc.to_json());
                }
            }
            (rec, incident)
        },
        // Fold each worker's evidence into the campaign-wide registry.
        // Stream and table merges are bucket-wise adds (commutative and
        // associative), so the fold order — and thus the worker count —
        // cannot change the aggregates.
        |cache| {
            let mut reg = metrics.lock().unwrap();
            for ctx in cache.values() {
                if let Some(c) = &ctx.collector {
                    c.with(|c| reg.merge(c.metrics()));
                }
                if let Some(r) = &ctx.recorder {
                    r.with(|r| {
                        let stats = r.stats();
                        if stats.run_decicycles.count() > 0 {
                            reg.merge_stream(
                                &format!("trial_decicycles.{}", ctx.defense_label),
                                &stats.run_decicycles,
                            );
                        }
                    });
                }
            }
        },
    );

    let mut records = Vec::with_capacity(run.results.len());
    let mut incidents = Vec::new();
    for (rec, incident) in run.results {
        if let Some(inc) = incident {
            incidents.push((rec.cell, rec.index, inc));
        }
        records.push(rec);
    }
    records.sort_unstable_by_key(|r| (r.cell, r.index));
    incidents.sort_unstable_by_key(|(c, i, _)| (*c, *i));

    // Per-attack time-to-detection streams, derived from the sorted
    // records so they cover resumed runs' new trials uniformly.
    let mut registry = metrics.into_inner().unwrap();
    if cfg.collect_stats {
        for rec in &records {
            if rec.kind == OutcomeKind::Detected {
                registry.stream_observe(&format!("ttd_rounds.{}", rec.attack), rec.rounds as u64);
            }
        }
    }

    Ok(CampaignResult {
        records,
        metrics: registry,
        incidents,
        stopped_early: run.stopped_early,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanCell;
    use crate::record::journal_header;
    use smokestack_defenses::DefenseKind;
    use smokestack_srng::SchemeKind;

    /// A small but non-trivial plan: an attack that mostly succeeds,
    /// one that gets detected, and a stealthy-abort-heavy cell.
    fn tiny_plan() -> CampaignPlan {
        CampaignPlan {
            name: "tiny".into(),
            master_seed: 0x7e57,
            cells: vec![
                PlanCell {
                    attack: "listing1-dop".into(),
                    defense: DefenseKind::None,
                    trials: 4,
                },
                PlanCell {
                    attack: "listing1-dop".into(),
                    defense: DefenseKind::Smokestack(SchemeKind::Pseudo),
                    trials: 3,
                },
                PlanCell {
                    attack: "synthetic-direct-stack".into(),
                    defense: DefenseKind::Smokestack(SchemeKind::Aes10),
                    trials: 3,
                },
            ],
        }
    }

    #[test]
    fn aggregates_are_identical_across_worker_counts() {
        let plan = tiny_plan();
        let run = |jobs: usize| {
            run_campaign(
                &plan,
                &EngineConfig {
                    jobs,
                    ..EngineConfig::default()
                },
                &HashSet::new(),
                None,
            )
            .unwrap()
        };
        let serial = run(1);
        let wide = run(8);
        assert_eq!(serial.records.len(), plan.total_trials() as usize);
        // Not just equal aggregates: every individual record (outcome,
        // rounds, detail) is bit-identical, because seeds are keyed by
        // grid position rather than by scheduling order.
        assert_eq!(serial.records, wide.records);
        assert!(!serial.stopped_early && !wide.stopped_early);
    }

    #[test]
    fn resume_skips_done_trials_and_seeds_stay_positional() {
        let plan = tiny_plan();
        let full = run_campaign(&plan, &EngineConfig::default(), &HashSet::new(), None).unwrap();
        // Pretend the first 6 trials were journaled before a kill.
        let done: HashSet<(u32, u32)> = full.records[..6]
            .iter()
            .map(|r| (r.cell, r.index))
            .collect();
        let resumed = run_campaign(&plan, &EngineConfig::default(), &done, None).unwrap();
        assert_eq!(resumed.records, full.records[6..]);
    }

    #[test]
    fn stop_after_checkpoints_mid_grid() {
        let plan = tiny_plan();
        let result = run_campaign(
            &plan,
            &EngineConfig {
                jobs: 2,
                stop_after: Some(4),
                ..EngineConfig::default()
            },
            &HashSet::new(),
            None,
        )
        .unwrap();
        assert!(result.stopped_early);
        let n = result.records.len() as u64;
        assert!((4..=5).contains(&n), "completed {n} trials");
    }

    #[test]
    fn uniformity_tracing_accumulates_pbox_tables() {
        let plan = CampaignPlan {
            name: "uniform".into(),
            master_seed: 1,
            cells: vec![PlanCell {
                attack: "listing1-dop".into(),
                defense: DefenseKind::Smokestack(SchemeKind::Aes10),
                trials: 2,
            }],
        };
        let result = run_campaign(
            &plan,
            &EngineConfig {
                jobs: 2,
                trace_uniformity: true,
                ..EngineConfig::default()
            },
            &HashSet::new(),
            None,
        )
        .unwrap();
        let tables: Vec<&str> = result.metrics.freq_tables().map(|(name, _)| name).collect();
        assert!(
            tables.iter().any(|n| n.starts_with("pbox_index.")),
            "no P-BOX frequency tables collected: {tables:?}"
        );
    }

    #[test]
    fn stats_streams_are_bit_identical_across_worker_counts() {
        let plan = tiny_plan();
        let run = |jobs: usize| {
            run_campaign(
                &plan,
                &EngineConfig {
                    jobs,
                    collect_stats: true,
                    ..EngineConfig::default()
                },
                &HashSet::new(),
                None,
            )
            .unwrap()
        };
        let serial = run(1);
        let wide = run(8);
        assert_eq!(serial.records, wide.records);
        // The merged registries — including the streaming histograms —
        // serialize identically: stream merges are bucket-wise adds, so
        // scheduling order cannot leak into the aggregates.
        assert_eq!(serial.metrics.to_json(), wide.metrics.to_json());
        // Per-defense latency streams exist and saw every trial.
        let streams: Vec<&str> = serial.metrics.streams().map(|(n, _)| n).collect();
        assert!(
            streams.iter().any(|n| n.starts_with("trial_decicycles.")),
            "no latency streams: {streams:?}"
        );
        // The detected cell produced a time-to-detection stream.
        if serial
            .records
            .iter()
            .any(|r| r.kind == OutcomeKind::Detected)
        {
            assert!(
                streams.iter().any(|n| n.starts_with("ttd_rounds.")),
                "no TTD streams: {streams:?}"
            );
        }
    }

    #[test]
    fn blocked_trials_produce_journaled_replayable_incidents() {
        let plan = CampaignPlan {
            name: "blocked".into(),
            master_seed: 0x7e57,
            cells: vec![PlanCell {
                attack: "synthetic-direct-stack".into(),
                defense: DefenseKind::Smokestack(SchemeKind::Aes10),
                trials: 3,
            }],
        };
        let cfg = EngineConfig {
            capture_incidents: true,
            ..EngineConfig::default()
        };
        let sink = SharedJsonlSink::new(Vec::new());
        let result = run_campaign(&plan, &cfg, &HashSet::new(), Some(&sink)).unwrap();
        let blocked = result
            .records
            .iter()
            .filter(|r| matches!(r.kind, OutcomeKind::Detected | OutcomeKind::Crashed))
            .count();
        assert!(blocked > 0, "AES-10 blocks the synthetic attack");
        assert_eq!(result.incidents.len(), blocked);
        for (_, _, inc) in &result.incidents {
            smokestack_telemetry::IncidentReport::validate_json(&inc.to_json())
                .expect("schema-valid incident");
        }
        // The journal carries one incident line per blocked trial, and
        // parse_journal separates them from trial records.
        let bytes = sink.finish().unwrap();
        let text = format!(
            "{}\n{}",
            journal_header(&plan),
            String::from_utf8(bytes).unwrap()
        );
        let journal = crate::record::parse_journal(&text, &plan).unwrap();
        assert_eq!(journal.records.len(), result.records.len());
        assert_eq!(journal.incidents.len(), blocked);
        assert_eq!(journal.skipped, 0);
        // Replaying the campaign re-derives byte-identical incidents.
        let replay = run_campaign(&plan, &cfg, &HashSet::new(), None).unwrap();
        let a: Vec<String> = result
            .incidents
            .iter()
            .map(|(_, _, i)| i.to_json())
            .collect();
        let b: Vec<String> = replay
            .incidents
            .iter()
            .map(|(_, _, i)| i.to_json())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_unknown_attacks_before_spawning() {
        let plan = CampaignPlan {
            name: "bad".into(),
            master_seed: 0,
            cells: vec![PlanCell {
                attack: "no-such-attack".into(),
                defense: DefenseKind::None,
                trials: 1,
            }],
        };
        assert!(run_campaign(&plan, &EngineConfig::default(), &HashSet::new(), None).is_err());
    }

    #[test]
    fn trial_seeds_are_unique_across_the_grid() {
        let mut seen = HashSet::new();
        for cell in 0..32u32 {
            for index in 0..64u32 {
                assert!(seen.insert(trial_seed(42, cell, index)));
            }
        }
    }
}
