//! `campaign` — run Monte-Carlo security campaigns from the command
//! line.
//!
//! ```text
//! campaign --plan smoke --jobs 4 --out smoke.jsonl
//! campaign --plan matrix --jobs 8 --deny-regressions
//! campaign --plan my-plan.txt --resume --out my.jsonl --json
//! ```
//!
//! `--out` names the JSONL journal (header + one record per trial).
//! With `--resume`, an existing journal for the same plan is parsed
//! and its completed trials are skipped; new records are appended, so
//! a killed campaign picks up where it stopped.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::Read as _;
use std::process::ExitCode;

use smokestack_campaign::{
    aggregate, bounds_for_plan, check, journal_header, parse_journal, run_campaign, CampaignPlan,
    CellStats, EngineConfig, Journal,
};
use smokestack_telemetry::{render_prometheus, SharedJsonlSink};

struct Args {
    plan: String,
    jobs: usize,
    out: Option<String>,
    resume: bool,
    json: bool,
    deny_regressions: bool,
    max_trials: Option<u32>,
    master_seed: Option<u64>,
    uniformity: bool,
    stats: bool,
    incidents: bool,
}

const USAGE: &str = "usage: campaign --plan <name|file> [--jobs N] [--out journal.jsonl] \
[--resume] [--json] [--deny-regressions] [--max-trials N] [--master-seed S] [--uniformity] \
[--stats] [--incidents]

plans: smoke | matrix | full | path to a plan file
  --jobs N             worker threads (default 1)
  --out FILE           write/append the JSONL trial journal to FILE
  --resume             skip trials already present in --out's journal
  --json               emit per-cell stats as JSONL instead of a table
  --deny-regressions   check the security matrix v2 bounds; exit 1 on violation
  --max-trials N       cap every plan cell at N trials
  --master-seed S      override the plan's master seed (decimal or 0x hex)
  --uniformity         trace P-BOX draws and report chi-squared uniformity
  --stats              record per-defense latency and per-attack time-to-detection
                       streams; print them as Prometheus text exposition
  --incidents          capture a replayable incident report for every blocked
                       trial (journaled to --out alongside the trial records)";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        plan: String::new(),
        jobs: 1,
        out: None,
        resume: false,
        json: false,
        deny_regressions: false,
        max_trials: None,
        master_seed: None,
        uniformity: false,
        stats: false,
        incidents: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--plan" => args.plan = value("--plan")?,
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "bad --jobs value".to_string())?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--resume" => args.resume = true,
            "--json" => args.json = true,
            "--deny-regressions" => args.deny_regressions = true,
            "--max-trials" => {
                args.max_trials = Some(
                    value("--max-trials")?
                        .parse()
                        .map_err(|_| "bad --max-trials value".to_string())?,
                );
            }
            "--master-seed" => {
                let v = value("--master-seed")?;
                let parsed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    v.parse()
                };
                args.master_seed = Some(parsed.map_err(|_| "bad --master-seed value".to_string())?);
            }
            "--uniformity" => args.uniformity = true,
            "--stats" => args.stats = true,
            "--incidents" => args.incidents = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    if args.plan.is_empty() {
        return Err(format!("--plan is required\n\n{USAGE}"));
    }
    if args.resume && args.out.is_none() {
        return Err("--resume needs --out (the journal to resume from)".to_string());
    }
    Ok(args)
}

fn load_plan(spec: &str) -> Result<CampaignPlan, String> {
    if let Some(plan) = CampaignPlan::builtin(spec) {
        return Ok(plan);
    }
    let mut text = String::new();
    File::open(spec)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("cannot read plan `{spec}`: {e}"))?;
    CampaignPlan::parse(&text)
}

fn print_table(stats: &[CellStats]) {
    println!(
        "{:<28} {:<20} {:>6} {:>9} {:>17} {:>8}",
        "attack", "defense", "trials", "success", "rate [95% CI]", "rounds"
    );
    for s in stats {
        println!(
            "{:<28} {:<20} {:>6} {:>9} {:>5.1}% [{:>4.1}, {:>4.1}] {:>8.1}",
            s.attack,
            s.defense,
            s.trials,
            s.successes(),
            s.success_rate * 100.0,
            s.ci.0 * 100.0,
            s.ci.1 * 100.0,
            s.mean_rounds,
        );
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let mut plan = load_plan(&args.plan)?;
    if let Some(seed) = args.master_seed {
        plan.master_seed = seed;
    }
    if let Some(max) = args.max_trials {
        plan = plan.truncated(max);
    }

    // Resume: recover completed trials from the journal on disk.
    let mut prior = Journal::default();
    if args.resume {
        let path = args.out.as_deref().expect("checked in parse_args");
        match File::open(path) {
            Ok(mut f) => {
                let mut text = String::new();
                f.read_to_string(&mut text)
                    .map_err(|e| format!("cannot read journal `{path}`: {e}"))?;
                prior = parse_journal(&text, &plan)?;
                eprintln!(
                    "resuming: {} trials already journaled ({} torn lines skipped)",
                    prior.records.len(),
                    prior.skipped
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot open journal `{path}`: {e}")),
        }
    }
    let done: HashSet<(u32, u32)> = prior.done();

    // Journal sink: append on resume, fresh (with header) otherwise.
    let sink = match &args.out {
        Some(path) => {
            let fresh = done.is_empty();
            let file = OpenOptions::new()
                .create(true)
                .append(!fresh)
                .write(true)
                .truncate(fresh)
                .open(path)
                .map_err(|e| format!("cannot open journal `{path}`: {e}"))?;
            let sink = SharedJsonlSink::new(file);
            if fresh {
                sink.write_line(&journal_header(&plan));
            }
            Some(sink)
        }
        None => None,
    };

    let cfg = EngineConfig {
        jobs: args.jobs,
        stop_after: None,
        trace_uniformity: args.uniformity,
        collect_stats: args.stats,
        capture_incidents: args.incidents,
    };
    let started = std::time::Instant::now();
    let result = run_campaign(
        &plan,
        &cfg,
        &done,
        sink.as_ref()
            .map(|s| s as &dyn smokestack_campaign::RecordSink),
    )?;
    if let Some(sink) = sink {
        sink.flush()
            .map_err(|e| format!("journal write failed: {e}"))?;
        if sink.has_error() {
            return Err("journal write failed mid-campaign".to_string());
        }
    }
    eprintln!(
        "plan `{}`: {} trials ({} resumed) on {} jobs in {:.1}s",
        plan.name,
        plan.total_trials(),
        prior.records.len(),
        args.jobs.max(1),
        started.elapsed().as_secs_f64()
    );

    // Aggregate journaled + fresh records together.
    let mut records = prior.records;
    records.extend(result.records);
    records.sort_unstable_by_key(|r| (r.cell, r.index));
    let stats = aggregate(&records);

    if args.json {
        for s in &stats {
            println!("{}", s.to_json_line());
        }
    } else {
        print_table(&stats);
    }

    if args.stats {
        print!("{}", render_prometheus(&result.metrics));
    }

    if args.incidents {
        eprintln!(
            "incidents: {} blocked trials captured{}",
            result.incidents.len(),
            match &args.out {
                Some(path) => format!(" (journaled to {path})"),
                None => String::new(),
            }
        );
    }

    if args.uniformity {
        let mut tables: Vec<_> = result.metrics.freq_tables().collect();
        tables.sort_by_key(|(name, _)| name.to_string());
        for (name, table) in tables {
            println!(
                "uniformity {:<40} draws={:<6} chi2={:.2}",
                name,
                table.total(),
                table.chi_squared()
            );
        }
    }

    let mut ok = true;
    if args.deny_regressions {
        let bounds = bounds_for_plan(&plan.name).ok_or_else(|| {
            format!(
                "--deny-regressions has no pinned bounds for plan `{}` \
                 (built-in plans: smoke, matrix, full)",
                plan.name
            )
        })?;
        if args.max_trials.is_some() {
            return Err(
                "--deny-regressions bounds are calibrated for full trial counts; \
                 drop --max-trials"
                    .to_string(),
            );
        }
        let violations = check(&stats, &bounds);
        for v in &violations {
            eprintln!("REGRESSION: {v}");
        }
        if violations.is_empty() {
            eprintln!(
                "security matrix v2 ({}): all {} bounds hold",
                plan.name,
                bounds.len()
            );
        }
        ok = violations.is_empty();
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
