//! Incident-forensics CI gate.
//!
//! Runs one real-CVE attack against every Table I randomness scheme,
//! captures the flight-recorder incident report for the first blocked
//! campaign, and pins the two properties the observability layer
//! promises:
//!
//! 1. **Schema validity** — every emitted report parses and validates
//!    against `smokestack-incident/1`
//!    ([`IncidentReport::validate_json`]), so downstream tooling can
//!    rely on the documented shape.
//! 2. **Replay identity** — re-capturing from the same
//!    `(attack, build, campaign seed)` triple yields byte-identical
//!    JSON, proving the recorder never perturbs the run it is
//!    recording and that the seed protocol alone reproduces the
//!    forensics.
//!
//! Usage:
//!
//! ```text
//! incident [--attack NAME] [--seed N] [--build-seed N] [--out FILE]
//! ```
//!
//! Exits non-zero (for CI) if any scheme fails to produce a valid,
//! replayable incident within the campaign-seed search budget.

use std::process::ExitCode;

use smokestack_attacks::{by_name, capture_incident, Build};
use smokestack_defenses::DefenseKind;
use smokestack_srng::SchemeKind;
use smokestack_telemetry::{IncidentReport, SharedJsonlSink};

/// Campaign seeds probed (from `--seed` upward) per scheme before
/// giving up. Real-CVE attacks are blocked with high probability under
/// every scheme, so the first seed almost always decides; the window
/// only exists so a rare all-success campaign cannot wedge CI.
const SEED_WINDOW: u64 = 64;

struct Args {
    attack: String,
    seed: u64,
    build_seed: u64,
    out: Option<String>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            attack: "librelp-cve-2018-1000140".to_string(),
            seed: 1,
            build_seed: 0xb11d,
            out: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--attack" => args.attack = value("--attack")?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--build-seed" => {
                args.build_seed = value("--build-seed")?
                    .parse()
                    .map_err(|e| format!("--build-seed: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: incident [--attack NAME] [--seed N] [--build-seed N] [--out FILE]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Capture, validate, and replay one incident for `scheme`. Returns the
/// validated single-line JSON on success.
fn gate_scheme(args: &Args, scheme: SchemeKind) -> Result<String, String> {
    let attack =
        by_name(&args.attack).ok_or_else(|| format!("unknown attack `{}`", args.attack))?;
    let build = Build::new(
        attack.source(),
        DefenseKind::Smokestack(scheme),
        args.build_seed,
    );

    let (campaign_seed, report) = (args.seed..args.seed + SEED_WINDOW)
        .find_map(|s| capture_incident(&*attack, &build, s).map(|r| (s, r)))
        .ok_or_else(|| {
            format!(
                "no blocked campaign in seeds {}..{} — attack succeeded everywhere?",
                args.seed,
                args.seed + SEED_WINDOW
            )
        })?;

    let json = report.to_json();
    IncidentReport::validate_json(&json).map_err(|e| format!("schema validation: {e}"))?;
    if json.lines().count() != 1 {
        return Err("incident report is not single-line JSON".to_string());
    }
    if report.scheme != scheme.label() {
        return Err(format!(
            "report names scheme `{}`, expected `{}`",
            report.scheme,
            scheme.label()
        ));
    }
    if report.frame_map.is_empty() {
        return Err("incident report carries no frame map".to_string());
    }

    // Replay: the seed protocol plus a fresh recorder must reproduce
    // the forensics bit-for-bit.
    let replayed = capture_incident(&*attack, &build, campaign_seed)
        .ok_or("replay produced no incident — recorder perturbed the campaign?")?;
    if replayed.to_json() != json {
        return Err(format!(
            "replay diverged from the original capture at campaign seed {campaign_seed}"
        ));
    }

    println!(
        "incident gate: {:<10} seed {:<3} round {:<2} victim {:<16} {} frame slots — \
         valid, replay byte-identical",
        scheme.label(),
        campaign_seed,
        report.round.unwrap_or(0),
        report.victim.as_deref().unwrap_or("<unknown>"),
        report.frame_map.len(),
    );
    Ok(json)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let schemes = [
        SchemeKind::Pseudo,
        SchemeKind::Aes1,
        SchemeKind::Aes10,
        SchemeKind::Rdrand,
    ];
    println!(
        "incident gate: attack {} vs {} schemes (build seed {:#x})",
        args.attack,
        schemes.len(),
        args.build_seed
    );

    let mut lines = Vec::new();
    for scheme in schemes {
        match gate_scheme(&args, scheme) {
            Ok(json) => lines.push(json),
            Err(e) => {
                eprintln!("INCIDENT GATE FAILED [{}]: {e}", scheme.label());
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &args.out {
        let file = match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let sink = SharedJsonlSink::new(file);
        for line in &lines {
            sink.write_line(line);
        }
        if let Err(e) = sink.finish() {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} incident report(s) to {path}", lines.len());
    }

    println!(
        "incident gate passed: {} scheme(s), all reports schema-valid and replayable",
        lines.len()
    );
    ExitCode::SUCCESS
}
