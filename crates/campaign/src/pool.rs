//! A reusable scoped-thread worker pool over the work-stealing
//! [`WorkQueue`].
//!
//! The Monte-Carlo engine and the differential fuzzer share the same
//! parallelism shape: a fixed task list fanned across `jobs` workers,
//! each worker keeping private (non-`Send`) state — a build cache, a
//! telemetry collector — that is created inside the worker thread and
//! drained when the queue runs dry. This module is that shape, exposed
//! as a public API so other subsystems stop re-rolling it.
//!
//! Determinism contract: the pool itself never introduces
//! nondeterminism. Results are handed back *sorted by task index*, so
//! as long as `step` derives everything from the task (never from the
//! worker id, scheduling order, or shared mutable state), the result
//! vector is bit-identical across `jobs` settings. Both the campaign
//! engine's `--jobs 1` vs `--jobs 8` aggregate test and the fuzzer's
//! shard-determinism test rest on this.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::queue::WorkQueue;

/// What a pool run produced.
#[derive(Debug)]
pub struct PoolRun<R> {
    /// One result per *completed* task, sorted by task index (the order
    /// tasks were supplied in). Shorter than the task list only when
    /// `stop_after` tripped.
    pub results: Vec<R>,
    /// Whether `stop_after` tripped before the task list was drained.
    pub stopped_early: bool,
}

/// Fan `tasks` across `jobs` scoped worker threads.
///
/// * `init(worker)` builds each worker's private state inside its own
///   thread, so the state need not be `Send` (telemetry collectors are
///   `Rc`-based).
/// * `step(state, task)` runs one task to a result.
/// * `drain(state)` runs once per worker after its loop ends — the hook
///   for folding worker-local evidence (merged metrics) into shared
///   accumulators captured by the closure.
/// * `stop_after`: stop dispatching new tasks once this many have
///   completed across all workers; in-flight tasks still finish, so up
///   to `jobs - 1` extra results may land.
pub fn run_pool<T, S, R>(
    jobs: usize,
    tasks: impl IntoIterator<Item = T>,
    stop_after: Option<u64>,
    init: impl Fn(usize) -> S + Sync,
    step: impl Fn(&mut S, &T) -> R + Sync,
    drain: impl Fn(S) + Sync,
) -> PoolRun<R>
where
    T: Send,
    R: Send,
{
    let jobs = jobs.max(1);
    let tasks: Vec<(usize, T)> = tasks.into_iter().enumerate().collect();
    let queue = WorkQueue::new(jobs, tasks);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    let completed = AtomicU64::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let queue = &queue;
            let results = &results;
            let completed = &completed;
            let stop = &stop;
            let init = &init;
            let step = &step;
            let drain = &drain;
            scope.spawn(move || {
                let mut state = init(w);
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Some((idx, task)) = queue.pop(w) else {
                        break;
                    };
                    let r = step(&mut state, &task);
                    results.lock().unwrap().push((idx, r));
                    let n = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    if stop_after.is_some_and(|cap| n >= cap) {
                        stop.store(true, Ordering::Relaxed);
                    }
                }
                drain(state);
            });
        }
    });

    let mut indexed = results.into_inner().unwrap();
    indexed.sort_unstable_by_key(|(i, _)| *i);
    PoolRun {
        results: indexed.into_iter().map(|(_, r)| r).collect(),
        stopped_early: stop.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order_regardless_of_jobs() {
        let tasks: Vec<u64> = (0..200).collect();
        let serial = run_pool(1, tasks.clone(), None, |_| (), |_, t| t * 3, |_| {});
        let wide = run_pool(8, tasks, None, |_| (), |_, t| t * 3, |_| {});
        assert_eq!(serial.results, wide.results);
        assert_eq!(serial.results[7], 21);
        assert!(!serial.stopped_early && !wide.stopped_early);
    }

    #[test]
    fn worker_state_may_be_non_send() {
        // Rc is !Send: the state must be created and dropped inside the
        // worker thread for this to compile at all.
        let drained = AtomicUsize::new(0);
        let run = run_pool(
            4,
            0..50u64,
            None,
            |_| Rc::new(std::cell::Cell::new(0u64)),
            |s, t| {
                s.set(s.get() + t);
                *t
            },
            |s| {
                drained.fetch_add(usize::try_from(s.get()).unwrap(), Ordering::Relaxed);
            },
        );
        assert_eq!(run.results.len(), 50);
        // Every task landed in exactly one worker's private sum.
        assert_eq!(drained.into_inner(), (0..50).sum::<u64>() as usize);
    }

    #[test]
    fn stop_after_halts_dispatch() {
        let run = run_pool(2, 0..100u64, Some(10), |_| (), |_, t| *t, |_| {});
        assert!(run.stopped_early);
        let n = run.results.len();
        assert!((10..=11).contains(&n), "completed {n}");
    }
}
