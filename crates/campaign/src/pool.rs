//! A reusable scoped-thread worker pool over the work-stealing
//! [`WorkQueue`].
//!
//! The Monte-Carlo engine and the differential fuzzer share the same
//! parallelism shape: a fixed task list fanned across `jobs` workers,
//! each worker keeping private (non-`Send`) state — a build cache, a
//! telemetry collector — that is created inside the worker thread and
//! drained when the queue runs dry. This module is that shape, exposed
//! as a public API so other subsystems stop re-rolling it.
//!
//! Determinism contract: the pool itself never introduces
//! nondeterminism. Results are handed back *sorted by task index*, so
//! as long as `step` derives everything from the task (never from the
//! worker id, scheduling order, or shared mutable state), the result
//! vector is bit-identical across `jobs` settings. Both the campaign
//! engine's `--jobs 1` vs `--jobs 8` aggregate test and the fuzzer's
//! shard-determinism test rest on this.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::queue::WorkQueue;

/// What a pool run produced.
#[derive(Debug)]
pub struct PoolRun<R> {
    /// One result per *completed* task, sorted by task index (the order
    /// tasks were supplied in). Shorter than the task list only when
    /// `stop_after` tripped or a [`DrainGate`] closed.
    pub results: Vec<R>,
    /// Whether `stop_after` tripped before the task list was drained.
    pub stopped_early: bool,
    /// Whether a [`DrainGate`] closed before the task list was drained.
    pub drained: bool,
}

/// A graceful-shutdown handle for [`run_pool_draining`]: once closed,
/// workers finish the task they are on and then stop pulling new ones —
/// no task is ever torn mid-step. Clone freely; all clones share one
/// flag, so a timer thread (or a signal handler) can close the gate
/// while the pool runs.
#[derive(Clone, Default)]
pub struct DrainGate(Arc<AtomicBool>);

impl DrainGate {
    /// A fresh, open gate.
    pub fn new() -> DrainGate {
        DrainGate::default()
    }

    /// Close the gate: refuse new tasks, let in-flight tasks finish.
    pub fn close(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the gate has been closed.
    pub fn is_closed(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fan `tasks` across `jobs` scoped worker threads.
///
/// * `init(worker)` builds each worker's private state inside its own
///   thread, so the state need not be `Send` (telemetry collectors are
///   `Rc`-based).
/// * `step(state, task)` runs one task to a result.
/// * `drain(state)` runs once per worker after its loop ends — the hook
///   for folding worker-local evidence (merged metrics) into shared
///   accumulators captured by the closure.
/// * `stop_after`: stop dispatching new tasks once this many have
///   completed across all workers; in-flight tasks still finish, so up
///   to `jobs - 1` extra results may land.
pub fn run_pool<T, S, R>(
    jobs: usize,
    tasks: impl IntoIterator<Item = T>,
    stop_after: Option<u64>,
    init: impl Fn(usize) -> S + Sync,
    step: impl Fn(&mut S, &T) -> R + Sync,
    drain: impl Fn(S) + Sync,
) -> PoolRun<R>
where
    T: Send,
    R: Send,
{
    run_pool_draining(jobs, tasks, stop_after, None, init, step, drain)
}

/// [`run_pool`] with an optional [`DrainGate`]: when the gate closes,
/// workers finish their in-flight task and stop dispatching — the
/// graceful-shutdown path serve fleets use for duration-bounded runs.
/// Everything else (result ordering, the determinism contract, the
/// `stop_after` cap) is identical to [`run_pool`].
pub fn run_pool_draining<T, S, R>(
    jobs: usize,
    tasks: impl IntoIterator<Item = T>,
    stop_after: Option<u64>,
    gate: Option<&DrainGate>,
    init: impl Fn(usize) -> S + Sync,
    step: impl Fn(&mut S, &T) -> R + Sync,
    drain: impl Fn(S) + Sync,
) -> PoolRun<R>
where
    T: Send,
    R: Send,
{
    let jobs = jobs.max(1);
    let tasks: Vec<(usize, T)> = tasks.into_iter().enumerate().collect();
    let total = tasks.len();
    let queue = WorkQueue::new(jobs, tasks);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    let completed = AtomicU64::new(0);
    let stop = AtomicBool::new(false);

    let drained = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for w in 0..jobs {
            let queue = &queue;
            let results = &results;
            let completed = &completed;
            let stop = &stop;
            let drained = &drained;
            let init = &init;
            let step = &step;
            let drain = &drain;
            scope.spawn(move || {
                let mut state = init(w);
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if gate.is_some_and(DrainGate::is_closed) {
                        drained.store(true, Ordering::Relaxed);
                        break;
                    }
                    let Some((idx, task)) = queue.pop(w) else {
                        break;
                    };
                    let r = step(&mut state, &task);
                    results.lock().unwrap().push((idx, r));
                    let n = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    if stop_after.is_some_and(|cap| n >= cap) {
                        stop.store(true, Ordering::Relaxed);
                    }
                }
                drain(state);
            });
        }
    });

    let mut indexed = results.into_inner().unwrap();
    indexed.sort_unstable_by_key(|(i, _)| *i);
    let results: Vec<R> = indexed.into_iter().map(|(_, r)| r).collect();
    // A gate that closed after the last task completed did not actually
    // cut the run short; only report a drain that left tasks behind.
    let drained = drained.into_inner() && results.len() < total;
    PoolRun {
        results,
        stopped_early: stop.into_inner(),
        drained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order_regardless_of_jobs() {
        let tasks: Vec<u64> = (0..200).collect();
        let serial = run_pool(1, tasks.clone(), None, |_| (), |_, t| t * 3, |_| {});
        let wide = run_pool(8, tasks, None, |_| (), |_, t| t * 3, |_| {});
        assert_eq!(serial.results, wide.results);
        assert_eq!(serial.results[7], 21);
        assert!(!serial.stopped_early && !wide.stopped_early);
    }

    #[test]
    fn worker_state_may_be_non_send() {
        // Rc is !Send: the state must be created and dropped inside the
        // worker thread for this to compile at all.
        let drained = AtomicUsize::new(0);
        let run = run_pool(
            4,
            0..50u64,
            None,
            |_| Rc::new(std::cell::Cell::new(0u64)),
            |s, t| {
                s.set(s.get() + t);
                *t
            },
            |s| {
                drained.fetch_add(usize::try_from(s.get()).unwrap(), Ordering::Relaxed);
            },
        );
        assert_eq!(run.results.len(), 50);
        // Every task landed in exactly one worker's private sum.
        assert_eq!(drained.into_inner(), (0..50).sum::<u64>() as usize);
    }

    #[test]
    fn stop_after_halts_dispatch() {
        let run = run_pool(2, 0..100u64, Some(10), |_| (), |_, t| *t, |_| {});
        assert!(run.stopped_early);
        assert!(!run.drained);
        let n = run.results.len();
        assert!((10..=11).contains(&n), "completed {n}");
    }

    #[test]
    fn closed_gate_refuses_every_task() {
        let gate = DrainGate::new();
        gate.close();
        let run = run_pool_draining(4, 0..100u64, None, Some(&gate), |_| (), |_, t| *t, |_| {});
        assert!(run.drained);
        assert!(run.results.is_empty());
    }

    #[test]
    fn gate_closing_mid_run_finishes_in_flight_tasks_only() {
        let gate = DrainGate::new();
        // Close the gate from inside task #10: tasks already popped may
        // finish, but dispatch stops shortly after.
        let closer = gate.clone();
        let run = run_pool_draining(
            2,
            0..10_000u64,
            None,
            Some(&gate),
            |_| (),
            move |_, t| {
                if *t == 10 {
                    closer.close();
                }
                *t
            },
            |_| {},
        );
        assert!(run.drained);
        assert!(!run.results.is_empty());
        assert!(run.results.len() < 10_000, "{}", run.results.len());
    }

    #[test]
    fn open_gate_changes_nothing() {
        let gate = DrainGate::new();
        let gated = run_pool_draining(4, 0..64u64, None, Some(&gate), |_| (), |_, t| t * 7, |_| {});
        let plain = run_pool(4, 0..64u64, None, |_| (), |_, t| t * 7, |_| {});
        assert_eq!(gated.results, plain.results);
        assert!(!gated.drained && !plain.drained);
    }

    #[test]
    fn gate_closed_after_completion_is_not_a_drain() {
        let gate = DrainGate::new();
        let run = run_pool_draining(2, 0..8u64, None, Some(&gate), |_| (), |_, t| *t, |_| {});
        gate.close();
        assert!(!run.drained);
        assert_eq!(run.results.len(), 8);
    }
}
