//! Per-trial JSONL records and the campaign journal.
//!
//! The journal doubles as the checkpoint format: a header line pinning
//! the plan fingerprint, then exactly one record per completed trial.
//! Resuming a killed campaign is "parse the journal, skip every
//! `(cell, index)` already present, append the rest" — no separate
//! checkpoint file, no partial-state serialization.

use std::collections::{BTreeMap, HashSet};
use std::fmt;

use smokestack_attacks::{AttackOutcome, TrialRun};
use smokestack_telemetry::json::{parse_flat_object, push_json_str, JsonValue};

use crate::plan::CampaignPlan;

/// Coarse outcome class of one trial (the detail string carries the
/// specifics: fault kind, leaked evidence, failure reason).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeKind {
    /// The attack achieved its goal.
    Success,
    /// A defense terminated the program.
    Detected,
    /// The program crashed without the goal being met.
    Crashed,
    /// Ran to completion, goal not met (includes exhausted campaigns).
    Failed,
    /// The adversary never committed (stealthy retreat).
    Aborted,
}

impl OutcomeKind {
    /// All kinds, in severity order.
    pub const ALL: [OutcomeKind; 5] = [
        OutcomeKind::Success,
        OutcomeKind::Detected,
        OutcomeKind::Crashed,
        OutcomeKind::Failed,
        OutcomeKind::Aborted,
    ];

    /// Stable wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            OutcomeKind::Success => "success",
            OutcomeKind::Detected => "detected",
            OutcomeKind::Crashed => "crashed",
            OutcomeKind::Failed => "failed",
            OutcomeKind::Aborted => "aborted",
        }
    }

    /// Parse a wire label.
    pub fn from_label(s: &str) -> Option<OutcomeKind> {
        OutcomeKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for OutcomeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One completed trial, as journaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialRecord {
    /// Index of the plan cell this trial belongs to.
    pub cell: u32,
    /// Trial index within the cell (`0..trials`).
    pub index: u32,
    /// Attack name (denormalized for self-contained journals).
    pub attack: String,
    /// Defense label (ditto).
    pub defense: String,
    /// The campaign seed this trial ran with.
    pub seed: u64,
    /// Outcome class.
    pub kind: OutcomeKind,
    /// Service restarts the adversary consumed (`1..=CAMPAIGN_BUDGET`).
    pub rounds: u32,
    /// Human-readable outcome detail (fault kind, goal evidence, ...).
    pub detail: String,
}

impl TrialRecord {
    /// Build a record from a finished [`TrialRun`].
    pub fn from_run(
        cell: u32,
        index: u32,
        attack: &str,
        defense: &str,
        seed: u64,
        run: &TrialRun,
    ) -> TrialRecord {
        let (kind, detail) = match &run.outcome {
            AttackOutcome::Success(e) => (OutcomeKind::Success, e.clone()),
            AttackOutcome::Detected(f) => (OutcomeKind::Detected, f.to_string()),
            AttackOutcome::Crashed(f) => (OutcomeKind::Crashed, f.to_string()),
            AttackOutcome::Failed(r) => (OutcomeKind::Failed, r.clone()),
            AttackOutcome::Aborted => (OutcomeKind::Aborted, String::new()),
        };
        TrialRecord {
            cell,
            index,
            attack: attack.to_string(),
            defense: defense.to_string(),
            seed,
            kind,
            rounds: run.rounds,
            detail,
        }
    }

    /// Serialize as one flat JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"cell\":");
        s.push_str(&self.cell.to_string());
        s.push_str(",\"trial\":");
        s.push_str(&self.index.to_string());
        s.push_str(",\"attack\":");
        push_json_str(&mut s, &self.attack);
        s.push_str(",\"defense\":");
        push_json_str(&mut s, &self.defense);
        s.push_str(",\"seed\":");
        s.push_str(&self.seed.to_string());
        s.push_str(",\"outcome\":");
        push_json_str(&mut s, self.kind.as_str());
        s.push_str(",\"rounds\":");
        s.push_str(&self.rounds.to_string());
        s.push_str(",\"detail\":");
        push_json_str(&mut s, &self.detail);
        s.push('}');
        s
    }

    /// Parse one journal line. `None` on anything malformed (a torn
    /// final line from a killed run parses as `None` and is skipped).
    pub fn from_json_line(line: &str) -> Option<TrialRecord> {
        let obj = parse_flat_object(line)?;
        let num = |k: &str| obj.get(k).and_then(JsonValue::as_u64);
        let text = |k: &str| obj.get(k).and_then(|v| v.as_str().map(str::to_string));
        Some(TrialRecord {
            cell: u32::try_from(num("cell")?).ok()?,
            index: u32::try_from(num("trial")?).ok()?,
            attack: text("attack")?,
            defense: text("defense")?,
            seed: num("seed")?,
            kind: OutcomeKind::from_label(obj.get("outcome")?.as_str()?)?,
            rounds: u32::try_from(num("rounds")?).ok()?,
            detail: text("detail")?,
        })
    }
}

/// The journal header line for `plan` (first line of every journal).
pub fn journal_header(plan: &CampaignPlan) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"journal\":\"smokestack-campaign-v1\",\"plan\":");
    push_json_str(&mut s, &plan.name);
    s.push_str(",\"fingerprint\":");
    s.push_str(&plan.fingerprint().to_string());
    s.push_str(",\"master_seed\":");
    s.push_str(&plan.master_seed.to_string());
    s.push_str(",\"total_trials\":");
    s.push_str(&plan.total_trials().to_string());
    s.push('}');
    s
}

/// Whether a journal line is an incident report rather than a trial
/// record (incident lines are journaled next to the blocked trial they
/// belong to and carry their own schema tag).
pub fn is_incident_line(line: &str) -> bool {
    line.starts_with("{\"schema\":\"smokestack-incident/")
}

/// A parsed journal: the records recovered from disk, deduplicated.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// Recovered records (first occurrence wins on duplicates).
    pub records: Vec<TrialRecord>,
    /// Incident-report lines journaled alongside blocked trials, in
    /// file order, verbatim (parse with
    /// `IncidentReport::validate_json`).
    pub incidents: Vec<String>,
    /// Malformed lines skipped (torn tail of a killed run).
    pub skipped: usize,
}

impl Journal {
    /// The set of `(cell, index)` pairs already completed.
    pub fn done(&self) -> HashSet<(u32, u32)> {
        self.records.iter().map(|r| (r.cell, r.index)).collect()
    }
}

/// Parse journal `text` written for `plan`. Fails if the header is
/// missing or was written by a different plan (wrong fingerprint) —
/// resuming someone else's journal would silently corrupt aggregates.
pub fn parse_journal(text: &str, plan: &CampaignPlan) -> Result<Journal, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("journal is empty")?;
    let obj: BTreeMap<String, JsonValue> =
        parse_flat_object(header).ok_or("journal header is not valid JSON")?;
    if obj.get("journal").and_then(|v| v.as_str()) != Some("smokestack-campaign-v1") {
        return Err("not a smokestack campaign journal".into());
    }
    let fp = obj
        .get("fingerprint")
        .and_then(JsonValue::as_u64)
        .ok_or("journal header has no fingerprint")?;
    if fp != plan.fingerprint() {
        return Err(format!(
            "journal was written for a different plan (fingerprint {fp} != {})",
            plan.fingerprint()
        ));
    }
    let mut journal = Journal::default();
    let mut seen = HashSet::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        if is_incident_line(line) {
            journal.incidents.push(line.to_string());
            continue;
        }
        match TrialRecord::from_json_line(line) {
            Some(rec) if seen.insert((rec.cell, rec.index)) => journal.records.push(rec),
            Some(_) => {} // duplicate (e.g. double-resume): first wins
            None => journal.skipped += 1,
        }
    }
    Ok(journal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrialRecord {
        TrialRecord {
            cell: 3,
            index: 17,
            attack: "listing1-dop".into(),
            defense: "smokestack/AES-10".into(),
            seed: u64::MAX,
            kind: OutcomeKind::Detected,
            rounds: 5,
            detail: "guard smashed in \"dispatcher\"".into(),
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = sample();
        let parsed = TrialRecord::from_json_line(&rec.to_json_line()).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn outcome_labels_round_trip() {
        for kind in OutcomeKind::ALL {
            assert_eq!(OutcomeKind::from_label(kind.as_str()), Some(kind));
        }
        assert_eq!(OutcomeKind::from_label("woke"), None);
    }

    #[test]
    fn journal_round_trips_and_skips_torn_tail() {
        let plan = CampaignPlan::smoke();
        let rec = sample();
        let text = format!(
            "{}\n{}\n{{\"cell\":1,\"tri", // torn final line (killed mid-write)
            journal_header(&plan),
            rec.to_json_line()
        );
        let journal = parse_journal(&text, &plan).unwrap();
        assert_eq!(journal.records, vec![rec]);
        assert_eq!(journal.skipped, 1);
        assert!(journal.done().contains(&(3, 17)));
    }

    #[test]
    fn journal_rejects_foreign_plans() {
        let smoke = CampaignPlan::smoke();
        let matrix = CampaignPlan::matrix();
        let text = journal_header(&smoke);
        assert!(parse_journal(&text, &smoke).is_ok());
        let err = parse_journal(&text, &matrix).unwrap_err();
        assert!(err.contains("different plan"), "{err}");
        assert!(parse_journal("", &smoke).is_err());
        assert!(parse_journal("not json\n", &smoke).is_err());
    }

    #[test]
    fn duplicate_records_keep_first() {
        let plan = CampaignPlan::smoke();
        let mut a = sample();
        let mut b = sample();
        b.detail = "second write".into();
        a.detail = "first write".into();
        let text = format!(
            "{}\n{}\n{}\n",
            journal_header(&plan),
            a.to_json_line(),
            b.to_json_line()
        );
        let journal = parse_journal(&text, &plan).unwrap();
        assert_eq!(journal.records.len(), 1);
        assert_eq!(journal.records[0].detail, "first write");
    }
}
