//! Minimal hand-rolled JSON support: enough to write the trace/metrics
//! dumps, parse back the flat one-object-per-line records the JSONL
//! sink emits, and parse the nested incident-report documents. No
//! serde — the workspace builds offline.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// Unsigned integer (all telemetry numbers are u64).
    Num(u64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
    /// Array (nested documents only — flat lines never hold one).
    Arr(Vec<JsonValue>),
    /// Object (nested documents only — flat lines never hold one).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Numeric value, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// `self["key"]` for objects, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_obj()?.get(key)
    }
}

/// Parse one complete JSON document (nested objects and arrays
/// allowed). Trailing non-whitespace fails the parse. Numbers are
/// unsigned integers only — everything the crate's writers emit.
pub fn parse_value(text: &str) -> Option<JsonValue> {
    let mut chars = text.trim().chars().peekable();
    let v = parse_any(&mut chars)?;
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None;
    }
    Some(v)
}

fn parse_any(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<JsonValue> {
    skip_ws(chars);
    match chars.peek()? {
        '"' => Some(JsonValue::Str(parse_string(chars)?)),
        '{' => {
            chars.next();
            let mut map = BTreeMap::new();
            loop {
                skip_ws(chars);
                match chars.peek()? {
                    '}' => {
                        chars.next();
                        break;
                    }
                    ',' => {
                        chars.next();
                        continue;
                    }
                    _ => {}
                }
                let key = parse_string(chars)?;
                skip_ws(chars);
                if chars.next()? != ':' {
                    return None;
                }
                map.insert(key, parse_any(chars)?);
            }
            Some(JsonValue::Obj(map))
        }
        '[' => {
            chars.next();
            let mut items = Vec::new();
            loop {
                skip_ws(chars);
                match chars.peek()? {
                    ']' => {
                        chars.next();
                        break;
                    }
                    ',' => {
                        chars.next();
                        continue;
                    }
                    _ => {}
                }
                items.push(parse_any(chars)?);
            }
            Some(JsonValue::Arr(items))
        }
        't' | 'f' | 'n' => {
            let mut word = String::new();
            while matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                word.push(chars.next().unwrap());
            }
            match word.as_str() {
                "true" => Some(JsonValue::Bool(true)),
                "false" => Some(JsonValue::Bool(false)),
                "null" => Some(JsonValue::Null),
                _ => None,
            }
        }
        c if c.is_ascii_digit() => {
            let mut n: u64 = 0;
            while let Some(c) = chars.peek() {
                if let Some(d) = c.to_digit(10) {
                    n = n.checked_mul(10)?.checked_add(d as u64)?;
                    chars.next();
                } else {
                    break;
                }
            }
            Some(JsonValue::Num(n))
        }
        _ => None,
    }
}

/// Append `s` to `out` as a JSON string literal (with escaping).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a flat JSON object (`{"k":v,...}` with number/string/bool
/// values, no nesting) into a key→value map. Returns `None` on any
/// syntax the sinks never emit.
pub fn parse_flat_object(line: &str) -> Option<BTreeMap<String, JsonValue>> {
    let mut chars = line.trim().chars().peekable();
    let mut map = BTreeMap::new();
    if chars.next()? != '{' {
        return None;
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
                continue;
            }
            _ => {}
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let val = match chars.peek()? {
            '"' => JsonValue::Str(parse_string(&mut chars)?),
            't' | 'f' => {
                let mut word = String::new();
                while matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    word.push(chars.next().unwrap());
                }
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    _ => return None,
                }
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(c) = chars.peek() {
                    if let Some(d) = c.to_digit(10) {
                        n = n.checked_mul(10)?.checked_add(d as u64)?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                JsonValue::Num(n)
            }
            _ => return None,
        };
        map.insert(key, val);
    }
    Some(map)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\te\u{1}");
        let parsed = parse_string(&mut s.chars().peekable()).unwrap();
        assert_eq!(parsed, "a\"b\\c\nd\te\u{1}");
    }

    #[test]
    fn flat_object_round_trip() {
        let m = parse_flat_object(r#"{"ev":"rng_draw","cost":928,"ok":true,"name":"A-\"1\""}"#)
            .unwrap();
        assert_eq!(m["ev"].as_str(), Some("rng_draw"));
        assert_eq!(m["cost"].as_u64(), Some(928));
        assert_eq!(m["ok"].as_bool(), Some(true));
        assert_eq!(m["name"].as_str(), Some("A-\"1\""));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_flat_object("not json").is_none());
        assert!(parse_flat_object("{\"k\":}").is_none());
    }

    #[test]
    fn nested_documents_parse() {
        let v =
            parse_value(r#"{"a":{"b":[1,2,{"c":"x"}],"d":null},"e":true,"f":[],"g":{}}"#).unwrap();
        assert_eq!(v.get("e").and_then(JsonValue::as_bool), Some(true));
        let b = v
            .get("a")
            .and_then(|a| a.get("b"))
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b[1].as_u64(), Some(2));
        assert_eq!(b[2].get("c").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(|a| a.get("d")), Some(&JsonValue::Null));
        assert_eq!(v.get("f").unwrap().as_arr().unwrap().len(), 0);
        assert!(v.get("g").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn nested_parser_rejects_trailing_garbage() {
        assert!(parse_value("{\"a\":1} extra").is_none());
        assert!(parse_value("[1,").is_none());
        assert!(parse_value("{\"a\":nope}").is_none());
    }
}
