//! [`FlightRecorder`]: the always-on observability tracer.
//!
//! The [`Collector`](crate::Collector) is a deep profiler: it hooks
//! every cycle charge, formats metric names per event, and clones full
//! [`Event`] values into a `VecDeque`. That buys per-category
//! per-function attribution at a 1.29x run-time cost — too much to
//! leave enabled everywhere.
//!
//! The flight recorder makes the opposite trade. On the hot path it
//! does exactly three kinds of work, none of which allocate or format:
//!
//! 1. flatten the event to a 32-byte [`CompactRecord`] and store it in
//!    a preallocated power-of-two ring ([`RecordRing`]);
//! 2. bump a **fixed-slot** statistic (struct fields and
//!    index-addressed vectors — never a string-keyed map);
//! 3. push/pop the [`SpanRecorder`] stack on function boundaries.
//!
//! Crucially it declines the per-instruction cycle hook
//! ([`Tracer::wants_cycles`] returns `false`), so the VM's `charge()`
//! fast path stays a plain integer add. String interning, metric-name
//! materialization, and JSON rendering all happen at **drain time**
//! ([`FlightRecorder::events`], [`FlightRecorder::to_metrics`]), after
//! the run is over.

use crate::event::{Event, GuardKind};
use crate::histogram::StreamingHistogram;
use crate::metrics::{FreqTable, MetricsRegistry};
use crate::record::{scheme_label, CompactRecord, RecordRing};
use crate::spans::{SessionStats, SpanRecorder, SpanStats};
use crate::{CycleCategory, Tracer};
use std::cell::RefCell;
use std::rc::Rc;

/// Flight-recorder sizing.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Ring capacity in records (rounded up to a power of two). The
    /// default window of 1024 records is the "last N events" an
    /// incident report carries.
    pub ring_capacity: usize,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            ring_capacity: 1024,
        }
    }
}

/// Fixed-slot counters the recorder maintains inline (materialized
/// into a [`MetricsRegistry`] only at drain time).
#[derive(Debug, Clone, Default)]
pub struct RecorderStats {
    /// `stack_rng` draws, by interned scheme id.
    pub rng_draws: [u64; 5],
    /// Draw-cost distribution (decicycles).
    pub rng_cost: StreamingHistogram,
    /// Guard-word checks that passed / failed.
    pub guard_passed: u64,
    /// Guard-word checks that failed.
    pub guard_failed: u64,
    /// Canary checks that passed.
    pub canary_passed: u64,
    /// Canary checks that failed.
    pub canary_failed: u64,
    /// Faults observed.
    pub faults: u64,
    /// Attacker input requests.
    pub input_requests: u64,
    /// Total bytes delivered to input requests.
    pub input_bytes: u64,
    /// Frame-size distribution (bytes, one sample per function exit).
    pub frame_bytes: StreamingHistogram,
    /// Per-run decicycle distribution (one sample per run).
    pub run_decicycles: StreamingHistogram,
    /// Peak RSS high-water mark across runs.
    pub peak_rss: u64,
    /// Maximum call depth observed.
    pub call_depth_max: u64,
}

/// The always-on tracer: bounded ring + spans + fixed-slot stats.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    names: Vec<String>,
    ring: RecordRing,
    spans: SpanRecorder,
    stats: RecorderStats,
    /// P-BOX row selections per function (index-addressed).
    pbox: Vec<FreqTable>,
    /// Most recent P-BOX row per function — the layout draw an
    /// incident report shows.
    last_pbox: Vec<Option<u64>>,
    /// Interned fault strings (at most one per run; never hot).
    fault_texts: Vec<String>,
}

impl Default for RecordRing {
    fn default() -> RecordRing {
        RecordRing::new(RecorderConfig::default().ring_capacity)
    }
}

impl FlightRecorder {
    /// Build from a config.
    pub fn new(cfg: RecorderConfig) -> FlightRecorder {
        FlightRecorder {
            ring: RecordRing::new(cfg.ring_capacity),
            ..FlightRecorder::default()
        }
    }

    /// Function names registered by the VM.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Resolve a function name (for drain-time rendering).
    pub fn func_name(&self, func: u32) -> String {
        self.names
            .get(func as usize)
            .cloned()
            .unwrap_or_else(|| format!("#{func}"))
    }

    /// The raw record ring.
    pub fn ring(&self) -> &RecordRing {
        &self.ring
    }

    /// Fixed-slot statistics.
    pub fn stats(&self) -> &RecorderStats {
        &self.stats
    }

    /// Hierarchical span aggregates, indexed by function id.
    pub fn span_stats(&self) -> &[SpanStats] {
        self.spans.stats()
    }

    /// Session (all-runs) span aggregates.
    pub fn session(&self) -> &SessionStats {
        self.spans.session()
    }

    /// Interned fault strings, oldest first.
    pub fn fault_texts(&self) -> &[String] {
        &self.fault_texts
    }

    /// Most recent P-BOX row drawn for `func`, if any.
    pub fn last_pbox(&self, func: u32) -> Option<u64> {
        self.last_pbox.get(func as usize).copied().flatten()
    }

    /// Every function's most recent P-BOX draw, as `(name, row)` pairs
    /// in function-table order.
    pub fn layout_draws(&self) -> Vec<(String, u64)> {
        self.last_pbox
            .iter()
            .enumerate()
            .filter_map(|(f, row)| row.map(|r| (self.func_name(f as u32), r)))
            .collect()
    }

    /// The innermost function with an open frame (the victim when a
    /// fault just fired and `run_end` has not yet unwound the stack).
    pub fn innermost_open(&self) -> Option<u32> {
        self.spans.innermost_open()
    }

    /// Materialize the retained window as full
    /// [`TracedEvent`](crate::TracedEvent)s, oldest first.
    pub fn events(&self) -> Vec<crate::TracedEvent> {
        self.ring.to_events(&self.fault_texts)
    }

    /// Materialize the fixed-slot statistics into a named
    /// [`MetricsRegistry`] (drain time: this is where strings are
    /// built). The names match what the [`Collector`](crate::Collector)
    /// would have produced, so campaign merging treats both alike.
    pub fn to_metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        for (id, &n) in self.stats.rng_draws.iter().enumerate() {
            if n > 0 {
                m.inc(&format!("rng_draws.{}", scheme_label(id as u8)), n);
            }
        }
        if self.stats.guard_passed > 0 {
            m.inc("guard_checks.passed", self.stats.guard_passed);
        }
        if self.stats.guard_failed > 0 {
            m.inc("guard_checks.failed", self.stats.guard_failed);
        }
        if self.stats.canary_passed > 0 {
            m.inc("canary_checks.passed", self.stats.canary_passed);
        }
        if self.stats.canary_failed > 0 {
            m.inc("canary_checks.failed", self.stats.canary_failed);
        }
        if self.stats.faults > 0 {
            m.inc("faults", self.stats.faults);
        }
        if self.stats.input_requests > 0 {
            m.inc("input_requests", self.stats.input_requests);
            m.inc("input_bytes", self.stats.input_bytes);
        }
        m.inc("runs", self.session().runs);
        m.gauge_max("peak_rss", self.stats.peak_rss);
        m.gauge_max("call_depth_max", self.stats.call_depth_max);
        if self.stats.rng_cost.count() > 0 {
            m.merge_stream("rng_cost_decicycles", &self.stats.rng_cost);
        }
        if self.stats.frame_bytes.count() > 0 {
            m.merge_stream("frame_bytes", &self.stats.frame_bytes);
        }
        if self.stats.run_decicycles.count() > 0 {
            m.merge_stream("run_decicycles", &self.stats.run_decicycles);
        }
        for (f, table) in self.pbox.iter().enumerate() {
            if table.total() > 0 {
                m.merge_freq_table(&format!("pbox_index.{}", self.func_name(f as u32)), table);
            }
        }
        m
    }
}

impl Tracer for FlightRecorder {
    fn on_functions(&mut self, names: &[String]) {
        if self.names.is_empty() {
            self.names = names.to_vec();
        }
        self.spans.set_function_count(names.len());
        if self.pbox.len() < names.len() {
            self.pbox.resize(names.len(), FreqTable::new());
            self.last_pbox.resize(names.len(), None);
        }
    }

    fn on_event(&mut self, now: u64, ev: &Event) {
        let mut fault_slot = 0u32;
        match ev {
            Event::FuncEnter { func, depth } => {
                self.spans.enter(*func, now);
                self.stats.call_depth_max = self.stats.call_depth_max.max(*depth as u64);
            }
            Event::FuncExit {
                func: _,
                frame_bytes,
            } => {
                self.spans.exit(now);
                self.stats.frame_bytes.observe(*frame_bytes);
            }
            Event::RngDraw {
                scheme,
                cost_decicycles,
            } => {
                let id = crate::record::scheme_id(scheme) as usize;
                self.stats.rng_draws[id] += 1;
                self.stats.rng_cost.observe(*cost_decicycles);
            }
            Event::PboxSelect { func, index } => {
                let f = *func as usize;
                if f < self.pbox.len() {
                    self.pbox[f].observe(*index);
                    self.last_pbox[f] = Some(*index);
                }
            }
            Event::GuardCheck { func, kind, passed } => {
                match (kind, passed) {
                    (GuardKind::Word, true) => self.stats.guard_passed += 1,
                    (GuardKind::Word, false) => self.stats.guard_failed += 1,
                    (GuardKind::Canary, true) => self.stats.canary_passed += 1,
                    (GuardKind::Canary, false) => self.stats.canary_failed += 1,
                }
                self.spans
                    .guard_check(*func, matches!(kind, GuardKind::Canary));
            }
            Event::Fault { what } => {
                // The one allocating path — faults are terminal, so
                // this fires at most once per run.
                fault_slot = self.fault_texts.len() as u32;
                self.fault_texts.push(what.clone());
                self.stats.faults += 1;
            }
            Event::InputRequest { bytes, .. } => {
                self.stats.input_requests += 1;
                self.stats.input_bytes += bytes;
            }
            Event::RunEnd {
                peak_rss,
                decicycles,
            } => {
                self.spans.run_end(*decicycles);
                self.stats.run_decicycles.observe(*decicycles);
                self.stats.peak_rss = self.stats.peak_rss.max(*peak_rss);
            }
            Event::Alloca { .. } => {}
        }
        self.ring
            .push(CompactRecord::from_event(now, ev, fault_slot));
    }

    fn on_cycles(&mut self, _cat: CycleCategory, _decicycles: u64) {
        // Never called: wants_cycles() is false.
    }

    fn wants_cycles(&self) -> bool {
        false
    }
}

/// Clonable handle around a [`FlightRecorder`] so the caller keeps
/// access while the VM owns the tracer box (same shape as
/// [`SharedCollector`](crate::SharedCollector)).
#[derive(Debug, Clone, Default)]
pub struct SharedRecorder(Rc<RefCell<FlightRecorder>>);

impl SharedRecorder {
    /// Build from a config.
    pub fn new(cfg: RecorderConfig) -> SharedRecorder {
        SharedRecorder(Rc::new(RefCell::new(FlightRecorder::new(cfg))))
    }

    /// Read access to the underlying recorder.
    pub fn with<R>(&self, f: impl FnOnce(&FlightRecorder) -> R) -> R {
        f(&self.0.borrow())
    }
}

impl Tracer for SharedRecorder {
    fn on_functions(&mut self, names: &[String]) {
        self.0.borrow_mut().on_functions(names);
    }

    #[inline]
    fn on_event(&mut self, now: u64, ev: &Event) {
        self.0.borrow_mut().on_event(now, ev);
    }

    fn wants_cycles(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enter(r: &mut FlightRecorder, now: u64, func: u32, depth: u32) {
        r.on_event(now, &Event::FuncEnter { func, depth });
    }

    fn exit(r: &mut FlightRecorder, now: u64, func: u32, frame_bytes: u64) {
        r.on_event(now, &Event::FuncExit { func, frame_bytes });
    }

    #[test]
    fn recorder_aggregates_without_string_keys_until_drain() {
        let mut r = FlightRecorder::new(RecorderConfig { ring_capacity: 64 });
        r.on_functions(&["main".to_string(), "leaf".to_string()]);
        enter(&mut r, 0, 0, 1);
        r.on_event(
            2,
            &Event::RngDraw {
                scheme: "AES-10",
                cost_decicycles: 928,
            },
        );
        r.on_event(3, &Event::PboxSelect { func: 1, index: 4 });
        enter(&mut r, 5, 1, 2);
        r.on_event(
            20,
            &Event::GuardCheck {
                func: 1,
                kind: GuardKind::Word,
                passed: true,
            },
        );
        exit(&mut r, 21, 1, 64);
        exit(&mut r, 30, 0, 128);
        r.on_event(
            30,
            &Event::RunEnd {
                peak_rss: 4096,
                decicycles: 30,
            },
        );

        assert_eq!(r.stats().rng_draws[2], 1); // AES-10
        assert_eq!(r.stats().guard_passed, 1);
        assert_eq!(r.last_pbox(1), Some(4));
        assert_eq!(r.layout_draws(), vec![("leaf".to_string(), 4)]);
        assert_eq!(r.span_stats()[0].calls, 1);
        assert_eq!(r.span_stats()[0].total_decicycles, 30);
        assert_eq!(r.span_stats()[0].self_decicycles, 14);
        assert_eq!(r.span_stats()[1].guard_checks, 1);
        assert_eq!(r.session().runs, 1);

        let m = r.to_metrics();
        assert_eq!(m.counter("rng_draws.AES-10"), 1);
        assert_eq!(m.counter("guard_checks.passed"), 1);
        assert_eq!(m.freq_table("pbox_index.leaf").unwrap().total(), 1);
        assert_eq!(m.stream("frame_bytes").unwrap().count(), 2);
        assert_eq!(m.gauge("peak_rss"), Some(4096));

        let events = r.events();
        assert_eq!(events.len(), 8);
        assert_eq!(events[0].seq, 0);
    }

    #[test]
    fn fault_text_interns_and_round_trips() {
        let mut r = FlightRecorder::default();
        r.on_functions(&["main".to_string()]);
        enter(&mut r, 0, 0, 1);
        r.on_event(
            50,
            &Event::Fault {
                what: "oob write 0x40".to_string(),
            },
        );
        r.on_event(
            50,
            &Event::RunEnd {
                peak_rss: 0,
                decicycles: 50,
            },
        );
        assert_eq!(r.stats().faults, 1);
        assert_eq!(r.fault_texts(), &["oob write 0x40".to_string()]);
        let events = r.events();
        assert!(events.iter().any(|e| matches!(
            &e.event,
            Event::Fault { what } if what == "oob write 0x40"
        )));
        // The faulting frame was unwound at the fault clock.
        assert_eq!(r.span_stats()[0].total_decicycles, 50);
    }

    #[test]
    fn shared_recorder_observable_through_a_tracer_box() {
        let shared = SharedRecorder::default();
        assert!(!Tracer::wants_cycles(&shared));
        let mut boxed: Box<dyn Tracer> = Box::new(shared.clone());
        boxed.on_functions(&["main".to_string()]);
        boxed.on_event(0, &Event::FuncEnter { func: 0, depth: 1 });
        boxed.on_event(
            9,
            &Event::RunEnd {
                peak_rss: 1,
                decicycles: 9,
            },
        );
        drop(boxed);
        assert_eq!(shared.with(|r| r.session().runs), 1);
        assert_eq!(shared.with(|r| r.ring().total_pushed()), 2);
    }

    #[test]
    fn ring_window_is_bounded_but_stats_are_complete() {
        let mut r = FlightRecorder::new(RecorderConfig { ring_capacity: 4 });
        r.on_functions(&["f".to_string()]);
        for i in 0..100u64 {
            r.on_event(
                i,
                &Event::RngDraw {
                    scheme: "pseudo",
                    cost_decicycles: 34,
                },
            );
        }
        assert_eq!(r.ring().len(), 4);
        assert_eq!(r.ring().dropped(), 96);
        // Stats never drop, only the event window does.
        assert_eq!(r.stats().rng_draws[0], 100);
        assert_eq!(r.events().first().unwrap().seq, 96);
    }
}
