//! Per-function flat profiler and collapsed-stack export.

use crate::CycleCategory;
use std::collections::BTreeMap;

/// Per-function cycle attribution: how many decicycles of each
/// [`CycleCategory`] were charged while this function was on top of the
/// call stack, and how many times it was entered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FunctionCycles {
    /// Function name.
    pub name: String,
    /// Number of invocations.
    pub calls: u64,
    /// Decicycles by category, indexed by [`CycleCategory::index`].
    pub cycles: [u64; 6],
}

impl FunctionCycles {
    /// Decicycles in one category.
    pub fn get(&self, cat: CycleCategory) -> u64 {
        self.cycles[cat.index()]
    }

    /// Total decicycles attributed to this function.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }
}

#[derive(Debug, Clone, Default)]
struct FlatEntry {
    calls: u64,
    cycles: [u64; 6],
}

/// Attributes VM cycle charges to the function executing them.
///
/// The profiler maintains its own call stack from `enter`/`exit` pairs;
/// each charge lands on the current top of stack (the "self" cost — a
/// caller is not billed for its callees) and on the full stack's
/// collapsed-stack entry. Charges that arrive with an empty stack (none
/// in normal runs) land in a synthetic `(vm)` bucket so the invariant
/// *sum of attributed cycles = total charged cycles* always holds.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    stack: Vec<u32>,
    flat: Vec<FlatEntry>,
    outside: FlatEntry,
    collapsed: BTreeMap<Vec<u32>, u64>,
    /// Self-time charged to the *current* stack but not yet folded into
    /// `collapsed` — charges are hot (every VM instruction), so the
    /// stack is only cloned into the map when it changes shape.
    pending: u64,
    outside_collapsed: u64,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    fn flush_pending(&mut self) {
        if self.pending > 0 {
            *self.collapsed.entry(self.stack.clone()).or_insert(0) += self.pending;
            self.pending = 0;
        }
    }

    /// A function frame was pushed.
    pub fn enter(&mut self, func: u32) {
        self.flush_pending();
        self.stack.push(func);
        let i = func as usize;
        if i >= self.flat.len() {
            self.flat.resize_with(i + 1, FlatEntry::default);
        }
        self.flat[i].calls += 1;
    }

    /// The top frame returned. Unbalanced exits are ignored.
    pub fn exit(&mut self) {
        self.flush_pending();
        self.stack.pop();
    }

    /// Current call depth according to the profiler's own stack.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Charge `decicycles` of `cat` to the currently executing
    /// function.
    #[inline]
    pub fn charge(&mut self, cat: CycleCategory, decicycles: u64) {
        match self.stack.last() {
            Some(&top) => {
                self.flat[top as usize].cycles[cat.index()] += decicycles;
                self.pending += decicycles;
            }
            None => {
                self.outside.cycles[cat.index()] += decicycles;
                self.outside_collapsed += decicycles;
            }
        }
    }

    /// The collapsed map including any not-yet-flushed self-time of the
    /// current stack.
    fn collapsed_snapshot(&self) -> BTreeMap<Vec<u32>, u64> {
        let mut map = self.collapsed.clone();
        if self.pending > 0 {
            *map.entry(self.stack.clone()).or_insert(0) += self.pending;
        }
        map
    }

    /// Flat per-function profile, hottest first. Only functions that
    /// were entered or charged appear; the synthetic `(vm)` bucket
    /// appears only if anything landed outside all frames.
    pub fn flat_profile(&self, names: &[String]) -> Vec<FunctionCycles> {
        let mut rows: Vec<FunctionCycles> = self
            .flat
            .iter()
            .enumerate()
            .filter(|(_, e)| e.calls > 0 || e.cycles.iter().any(|&c| c > 0))
            .map(|(i, e)| FunctionCycles {
                name: names.get(i).cloned().unwrap_or_else(|| format!("#{i}")),
                calls: e.calls,
                cycles: e.cycles,
            })
            .collect();
        if self.outside.cycles.iter().any(|&c| c > 0) {
            rows.push(FunctionCycles {
                name: "(vm)".to_string(),
                calls: 0,
                cycles: self.outside.cycles,
            });
        }
        rows.sort_by(|a, b| b.total().cmp(&a.total()).then(a.name.cmp(&b.name)));
        rows
    }

    /// Collapsed-stack lines in the format flamegraph tooling consumes:
    /// `main;helper;leaf 1234`, one line per distinct stack, where the
    /// count is decicycles of *self* time for that stack.
    pub fn collapsed_lines(&self, names: &[String]) -> Vec<String> {
        let name_of = |f: &u32| {
            names
                .get(*f as usize)
                .cloned()
                .unwrap_or_else(|| format!("#{f}"))
        };
        let mut lines: Vec<String> = self
            .collapsed_snapshot()
            .iter()
            .map(|(stack, &count)| {
                let path: Vec<String> = stack.iter().map(name_of).collect();
                format!("{} {}", path.join(";"), count)
            })
            .collect();
        if self.outside_collapsed > 0 {
            lines.push(format!("(vm) {}", self.outside_collapsed));
        }
        lines
    }

    /// Total decicycles ever charged through this profiler (equals the
    /// sum over `flat_profile` totals and over `collapsed_lines`
    /// counts).
    pub fn total_charged(&self) -> u64 {
        self.collapsed.values().sum::<u64>() + self.pending + self.outside_collapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["main".into(), "helper".into(), "leaf".into()]
    }

    #[test]
    fn self_time_attribution() {
        let mut p = Profiler::new();
        p.enter(0); // main
        p.charge(CycleCategory::Alu, 10);
        p.enter(1); // main;helper
        p.charge(CycleCategory::Mem, 7);
        p.exit();
        p.charge(CycleCategory::Control, 3);
        p.exit();

        let flat = p.flat_profile(&names());
        assert_eq!(flat.len(), 2);
        let main = flat.iter().find(|f| f.name == "main").unwrap();
        let helper = flat.iter().find(|f| f.name == "helper").unwrap();
        // main is not billed for helper's 7.
        assert_eq!(main.total(), 13);
        assert_eq!(main.get(CycleCategory::Alu), 10);
        assert_eq!(main.get(CycleCategory::Control), 3);
        assert_eq!(helper.total(), 7);
        assert_eq!(helper.calls, 1);
        assert_eq!(main.calls, 1);
    }

    #[test]
    fn collapsed_lines_and_sum_invariant() {
        let mut p = Profiler::new();
        p.enter(0);
        p.charge(CycleCategory::Alu, 5);
        p.enter(1);
        p.enter(2);
        p.charge(CycleCategory::Rng, 20);
        p.exit();
        p.exit();
        p.enter(1);
        p.charge(CycleCategory::Mem, 1);
        p.exit();
        p.exit();

        let lines = p.collapsed_lines(&names());
        assert!(lines.contains(&"main 5".to_string()), "{lines:?}");
        assert!(lines.contains(&"main;helper;leaf 20".to_string()));
        assert!(lines.contains(&"main;helper 1".to_string()));
        let total: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 26);
        assert_eq!(p.total_charged(), 26);
        // helper entered twice.
        let flat = p.flat_profile(&names());
        assert_eq!(flat.iter().find(|f| f.name == "helper").unwrap().calls, 2);
    }

    #[test]
    fn charges_outside_frames_fall_in_vm_bucket() {
        let mut p = Profiler::new();
        p.charge(CycleCategory::Io, 4);
        p.enter(0);
        p.charge(CycleCategory::Alu, 1);
        p.exit();
        let flat = p.flat_profile(&names());
        assert!(flat.iter().any(|f| f.name == "(vm)" && f.total() == 4));
        assert_eq!(p.total_charged(), 5);
        assert!(p.collapsed_lines(&names()).contains(&"(vm) 4".to_string()));
    }
}
