//! Compact fixed-size flight-recorder records and their bounded ring.
//!
//! The [`EventRing`](crate::EventRing) stores full [`Event`] values in
//! a `VecDeque` — fine for deep traces, but each push moves an enum
//! with heap-holding variants. The flight recorder instead stores
//! [`CompactRecord`]: 32 bytes, `Copy`, no pointers. The one variant
//! that carries a string ([`Event::Fault`]) is interned into a side
//! table owned by the recorder (faults are terminal, so this happens at
//! most once per run and never on the steady-state hot path).
//!
//! [`RecordRing`] is a power-of-two array written with a wrapping
//! index: a push is a bounds-check-free store plus a counter increment.
//! No allocation, no branching on fullness, no eviction bookkeeping —
//! the oldest record is simply overwritten.

use crate::event::{Event, GuardKind, TracedEvent};

/// Interned Table I scheme labels (record payloads hold the id).
const SCHEMES: [&str; 5] = ["pseudo", "AES-1", "AES-10", "RDRAND", "other"];

/// Intern a scheme label to its id (unknown labels collapse to
/// `other`).
pub fn scheme_id(label: &str) -> u8 {
    SCHEMES
        .iter()
        .position(|s| *s == label)
        .unwrap_or(SCHEMES.len() - 1) as u8
}

/// Resolve a scheme id back to its static label.
pub fn scheme_label(id: u8) -> &'static str {
    SCHEMES[(id as usize).min(SCHEMES.len() - 1)]
}

/// Discriminant of a [`CompactRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// Frame pushed: `a` = func, `b` = depth.
    FuncEnter = 0,
    /// Frame popped: `a` = func, `b` = frame bytes.
    FuncExit = 1,
    /// `stack_rng` draw: `a` = scheme id, `b` = cost decicycles.
    RngDraw = 2,
    /// P-BOX row selected: `a` = func, `b` = masked index.
    PboxSelect = 3,
    /// Guard/canary check: `a` = func, `b` = kind bit ⋅ 2 + passed bit.
    GuardCheck = 4,
    /// Fault: `a` = index into the recorder's fault-text table.
    Fault = 5,
    /// Attacker input request: `a` = request index, `b` = bytes.
    InputRequest = 6,
    /// Run finished: `a` = peak RSS, `b` = decicycles.
    RunEnd = 7,
    /// Stack slot carved: `a` = func | size << 32, `b` = address.
    Alloca = 8,
}

/// One fixed-size recorder entry: an event flattened to two `u64`
/// payload words plus its decicycle timestamp and kind tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactRecord {
    /// Decicycle clock at the event.
    pub now: u64,
    /// First payload word (meaning depends on `kind`).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Discriminant.
    pub kind: RecordKind,
}

impl CompactRecord {
    /// Flatten an event. `fault_slot` is the side-table index a
    /// [`Event::Fault`] string was interned at (pass 0 otherwise).
    pub fn from_event(now: u64, ev: &Event, fault_slot: u32) -> CompactRecord {
        let (kind, a, b) = match ev {
            Event::FuncEnter { func, depth } => {
                (RecordKind::FuncEnter, *func as u64, *depth as u64)
            }
            Event::FuncExit { func, frame_bytes } => {
                (RecordKind::FuncExit, *func as u64, *frame_bytes)
            }
            Event::RngDraw {
                scheme,
                cost_decicycles,
            } => (
                RecordKind::RngDraw,
                scheme_id(scheme) as u64,
                *cost_decicycles,
            ),
            Event::PboxSelect { func, index } => (RecordKind::PboxSelect, *func as u64, *index),
            Event::GuardCheck { func, kind, passed } => {
                let kind_bit = match kind {
                    GuardKind::Word => 0u64,
                    GuardKind::Canary => 1,
                };
                (
                    RecordKind::GuardCheck,
                    *func as u64,
                    kind_bit << 1 | *passed as u64,
                )
            }
            Event::Fault { .. } => (RecordKind::Fault, fault_slot as u64, 0),
            Event::InputRequest { index, bytes } => (RecordKind::InputRequest, *index, *bytes),
            Event::RunEnd {
                peak_rss,
                decicycles,
            } => (RecordKind::RunEnd, *peak_rss, *decicycles),
            Event::Alloca { func, addr, size } => (
                RecordKind::Alloca,
                *func as u64 | (*size).min(u32::MAX as u64) << 32,
                *addr,
            ),
        };
        CompactRecord { now, a, b, kind }
    }

    /// Reconstruct the full event. `fault_texts` is the recorder's
    /// side table for fault strings.
    pub fn to_event(&self, fault_texts: &[String]) -> Event {
        match self.kind {
            RecordKind::FuncEnter => Event::FuncEnter {
                func: self.a as u32,
                depth: self.b as u32,
            },
            RecordKind::FuncExit => Event::FuncExit {
                func: self.a as u32,
                frame_bytes: self.b,
            },
            RecordKind::RngDraw => Event::RngDraw {
                scheme: scheme_label(self.a as u8),
                cost_decicycles: self.b,
            },
            RecordKind::PboxSelect => Event::PboxSelect {
                func: self.a as u32,
                index: self.b,
            },
            RecordKind::GuardCheck => Event::GuardCheck {
                func: self.a as u32,
                kind: if self.b >> 1 & 1 == 1 {
                    GuardKind::Canary
                } else {
                    GuardKind::Word
                },
                passed: self.b & 1 == 1,
            },
            RecordKind::Fault => Event::Fault {
                what: fault_texts
                    .get(self.a as usize)
                    .cloned()
                    .unwrap_or_else(|| "?".to_string()),
            },
            RecordKind::InputRequest => Event::InputRequest {
                index: self.a,
                bytes: self.b,
            },
            RecordKind::RunEnd => Event::RunEnd {
                peak_rss: self.a,
                decicycles: self.b,
            },
            RecordKind::Alloca => Event::Alloca {
                func: self.a as u32,
                addr: self.b,
                size: self.a >> 32,
            },
        }
    }
}

/// A bounded ring of [`CompactRecord`]s with overwrite-oldest
/// semantics. Capacity is rounded up to a power of two so the write
/// index wraps with a mask instead of a modulo.
#[derive(Debug, Clone)]
pub struct RecordRing {
    buf: Box<[CompactRecord]>,
    mask: u64,
    /// Total records ever pushed (the next record's sequence number).
    head: u64,
}

impl RecordRing {
    /// A ring holding at least `capacity` records (rounded up to a
    /// power of two, minimum 1).
    pub fn new(capacity: usize) -> RecordRing {
        let cap = capacity.max(1).next_power_of_two();
        let zero = CompactRecord {
            now: 0,
            a: 0,
            b: 0,
            kind: RecordKind::FuncEnter,
        };
        RecordRing {
            buf: vec![zero; cap].into_boxed_slice(),
            mask: cap as u64 - 1,
            head: 0,
        }
    }

    /// Append one record, overwriting the oldest when full. Returns its
    /// sequence number.
    #[inline]
    pub fn push(&mut self, rec: CompactRecord) -> u64 {
        let seq = self.head;
        self.buf[(seq & self.mask) as usize] = rec;
        self.head = seq + 1;
        seq
    }

    /// Configured capacity (after power-of-two rounding).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.head.min(self.buf.len() as u64) as usize
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.head == 0
    }

    /// Records overwritten to make room.
    pub fn dropped(&self) -> u64 {
        self.head - self.len() as u64
    }

    /// Total records ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.head
    }

    /// Retained records with their sequence numbers, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &CompactRecord)> {
        let first = self.dropped();
        (first..self.head).map(move |seq| (seq, &self.buf[(seq & self.mask) as usize]))
    }

    /// Materialize the retained window as full [`TracedEvent`]s.
    pub fn to_events(&self, fault_texts: &[String]) -> Vec<TracedEvent> {
        self.iter()
            .map(|(seq, rec)| TracedEvent {
                seq,
                now: rec.now,
                event: rec.to_event(fault_texts),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<Event> {
        vec![
            Event::FuncEnter { func: 3, depth: 2 },
            Event::FuncExit {
                func: 3,
                frame_bytes: 168,
            },
            Event::RngDraw {
                scheme: "AES-10",
                cost_decicycles: 928,
            },
            Event::PboxSelect { func: 3, index: 5 },
            Event::GuardCheck {
                func: 3,
                kind: GuardKind::Word,
                passed: true,
            },
            Event::GuardCheck {
                func: 1,
                kind: GuardKind::Canary,
                passed: false,
            },
            Event::InputRequest {
                index: 7,
                bytes: 64,
            },
            Event::RunEnd {
                peak_rss: 4096,
                decicycles: 100_000,
            },
            Event::Alloca {
                func: 2,
                addr: 0x7fff_f000,
                size: 24,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_compactly() {
        for ev in all_events() {
            let rec = CompactRecord::from_event(17, &ev, 0);
            assert_eq!(rec.to_event(&[]), ev, "variant {ev:?}");
            assert_eq!(rec.now, 17);
        }
        // Faults go through the side table.
        let fault = Event::Fault {
            what: "oob write".to_string(),
        };
        let rec = CompactRecord::from_event(9, &fault, 0);
        assert_eq!(rec.to_event(&["oob write".to_string()]), fault);
    }

    #[test]
    fn record_is_small_and_copy() {
        assert!(std::mem::size_of::<CompactRecord>() <= 32);
        let rec = CompactRecord::from_event(0, &Event::FuncEnter { func: 0, depth: 1 }, 0);
        let copy = rec; // Copy, not move.
        assert_eq!(rec, copy);
    }

    #[test]
    fn ring_wraps_and_keeps_sequence_numbers() {
        let mut ring = RecordRing::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..6u64 {
            let seq = ring.push(CompactRecord::from_event(
                i,
                &Event::InputRequest { index: i, bytes: 0 },
                0,
            ));
            assert_eq!(seq, i);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.total_pushed(), 6);
        let seqs: Vec<u64> = ring.iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
        let events = ring.to_events(&[]);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[3].event, Event::InputRequest { index: 5, bytes: 0 });
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(RecordRing::new(0).capacity(), 1);
        assert_eq!(RecordRing::new(3).capacity(), 4);
        assert_eq!(RecordRing::new(1000).capacity(), 1024);
    }
}
