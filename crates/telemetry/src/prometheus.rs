//! Prometheus text-format exposition for a [`MetricsRegistry`].
//!
//! The `stats` surface on the `bench` and `campaign` binaries emits
//! this format so the recorder's aggregates can be scraped or diffed
//! with standard tooling. Exposition follows the text format v0.0.4
//! conventions:
//!
//! * counters get a `_total` suffix;
//! * gauges are emitted as-is;
//! * coarse log₂ histograms become `<name>_bucket{le="..."}` series
//!   plus `_sum` and `_count`;
//! * streaming percentile histograms become summaries:
//!   `<name>{quantile="0.5|0.95|0.99|0.999"}` plus `_sum`/`_count`;
//! * frequency tables become `<name>_total{index="i"}` series plus a
//!   `<name>_chi_squared` gauge.
//!
//! Registry names are dotted (`rng_draws.AES-10`); dots and dashes are
//! not legal in Prometheus metric names, so everything outside
//! `[a-zA-Z0-9_:]` maps to `_`. The original dotted name survives in a
//! `# HELP` line. Output ordering is deterministic (the registry is
//! `BTreeMap`-backed).

use crate::metrics::{Histogram, MetricsRegistry};

/// Sanitize a dotted registry name into a legal Prometheus metric name.
pub fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn push_help_type(out: &mut String, name: &str, original: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} smokestack metric `{original}`\n"));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

fn push_coarse_histogram(out: &mut String, name: &str, h: &Histogram) {
    let mut cum = 0u64;
    for (b, &c) in h.counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cum}\n",
            Histogram::bucket_hi(b)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

/// Render a registry in Prometheus text exposition format.
pub fn render_prometheus(m: &MetricsRegistry) -> String {
    let mut out = String::new();

    for (name, value) in m.counters() {
        let pname = sanitize_name(name);
        push_help_type(&mut out, &format!("{pname}_total"), name, "counter");
        out.push_str(&format!("{pname}_total {value}\n"));
    }

    for (name, value) in m.gauges() {
        let pname = sanitize_name(name);
        push_help_type(&mut out, &pname, name, "gauge");
        out.push_str(&format!("{pname} {value}\n"));
    }

    for (name, h) in m.histograms() {
        let pname = sanitize_name(name);
        push_help_type(&mut out, &pname, name, "histogram");
        push_coarse_histogram(&mut out, &pname, h);
    }

    for (name, h) in m.streams() {
        let pname = sanitize_name(name);
        push_help_type(&mut out, &pname, name, "summary");
        for (q, v) in [
            ("0.5", h.p50()),
            ("0.95", h.p95()),
            ("0.99", h.p99()),
            ("0.999", h.p999()),
        ] {
            out.push_str(&format!("{pname}{{quantile=\"{q}\"}} {v}\n"));
        }
        out.push_str(&format!("{pname}_sum {}\n", h.sum()));
        out.push_str(&format!("{pname}_count {}\n", h.count()));
    }

    for (name, t) in m.freq_tables() {
        let pname = sanitize_name(name);
        push_help_type(&mut out, &format!("{pname}_total"), name, "counter");
        for (i, &c) in t.counts().iter().enumerate() {
            out.push_str(&format!("{pname}_total{{index=\"{i}\"}} {c}\n"));
        }
        let chi = sanitize_name(&format!("{name}_chi_squared"));
        push_help_type(&mut out, &chi, name, "gauge");
        out.push_str(&format!("{chi} {:.3}\n", t.chi_squared()));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::StreamingHistogram;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_name("rng_draws.AES-10"), "rng_draws_AES_10");
        assert_eq!(sanitize_name("pbox_index.server"), "pbox_index_server");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn renders_every_metric_family() {
        let mut m = MetricsRegistry::new();
        m.inc("rng_draws.AES-10", 7);
        m.gauge_max("peak_rss", 4096);
        m.observe("frame_bytes", 48);
        m.observe("frame_bytes", 100);
        let mut s = StreamingHistogram::new();
        for v in [10, 20, 30, 40_000] {
            s.observe(v);
        }
        m.merge_stream("rng_cost_decicycles", &s);
        m.observe_index("pbox_index.server", 0);
        m.observe_index("pbox_index.server", 2);

        let text = render_prometheus(&m);
        assert!(text.contains("# TYPE rng_draws_AES_10_total counter"));
        assert!(text.contains("rng_draws_AES_10_total 7\n"));
        assert!(text.contains("# TYPE peak_rss gauge"));
        assert!(text.contains("peak_rss 4096\n"));
        assert!(text.contains("# TYPE frame_bytes histogram"));
        assert!(text.contains("frame_bytes_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("frame_bytes_sum 148\n"));
        assert!(text.contains("# TYPE rng_cost_decicycles summary"));
        assert!(text.contains("rng_cost_decicycles{quantile=\"0.99\"}"));
        assert!(text.contains("rng_cost_decicycles_count 4\n"));
        assert!(text.contains("pbox_index_server_total{index=\"1\"} 0\n"));
        assert!(text.contains("pbox_index_server_chi_squared"));
        // HELP lines preserve the dotted original.
        assert!(text.contains("`rng_draws.AES-10`"));
    }

    #[test]
    fn coarse_histogram_buckets_are_cumulative() {
        let mut m = MetricsRegistry::new();
        m.observe("h", 1);
        m.observe("h", 1);
        m.observe("h", 300);
        let text = render_prometheus(&m);
        assert!(text.contains("h_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("h_bucket{le=\"511\"} 3\n"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3\n"));
    }
}
