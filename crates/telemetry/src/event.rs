//! Typed VM events and their hand-rolled JSONL encoding.

use crate::json::{parse_flat_object, push_json_str, JsonValue};
use std::collections::BTreeMap;

/// Which prologue/epilogue integrity check fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardKind {
    /// Smokestack guard word (function identifier ⊕ guard key).
    Word,
    /// Classic stack canary.
    Canary,
}

impl GuardKind {
    fn label(self) -> &'static str {
        match self {
            GuardKind::Word => "word",
            GuardKind::Canary => "canary",
        }
    }

    fn from_label(s: &str) -> Option<GuardKind> {
        match s {
            "word" => Some(GuardKind::Word),
            "canary" => Some(GuardKind::Canary),
            _ => None,
        }
    }
}

/// One structured VM event. Functions are referred to by their index in
/// the module's function table (resolved to names when serialized).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A frame was pushed for `func` at call depth `depth` (1 = main).
    FuncEnter {
        /// Function index.
        func: u32,
        /// Call depth after the push.
        depth: u32,
    },
    /// The frame for `func` returned; `frame_bytes` is the stack space
    /// it actually consumed (slab + spills + VLAs).
    FuncExit {
        /// Function index.
        func: u32,
        /// Bytes of stack consumed by the frame.
        frame_bytes: u64,
    },
    /// One `stack_rng` draw by the scheme named `scheme`.
    RngDraw {
        /// Table I scheme label (`pseudo`, `AES-1`, ...).
        scheme: &'static str,
        /// Cost charged for the draw, in decicycles.
        cost_decicycles: u64,
    },
    /// The draw for `func`'s slab prologue selected P-BOX row `index`.
    PboxSelect {
        /// Function index.
        func: u32,
        /// Masked permutation-table index that was selected.
        index: u64,
    },
    /// A guard-word / canary check in `func`'s epilogue.
    GuardCheck {
        /// Function index.
        func: u32,
        /// Which integrity mechanism checked.
        kind: GuardKind,
        /// Whether the check passed.
        passed: bool,
    },
    /// The VM faulted (memory violation, fuel exhaustion, ...).
    Fault {
        /// Human-readable fault description.
        what: String,
    },
    /// The program asked its `InputSource` (the attacker hook) for
    /// bytes.
    InputRequest {
        /// Zero-based request counter.
        index: u64,
        /// Bytes actually delivered.
        bytes: u64,
    },
    /// The run finished (emitted once, before `RunOutcome` is built).
    RunEnd {
        /// Peak stack residency in bytes.
        peak_rss: u64,
        /// Total decicycles charged.
        decicycles: u64,
    },
    /// A stack slot was carved for `func`'s frame (one event per
    /// `alloca`, in execution order — the incident-report frame map).
    Alloca {
        /// Function index.
        func: u32,
        /// Absolute address of the slot.
        addr: u64,
        /// Slot size in bytes.
        size: u64,
    },
}

/// Map a scheme label back to its interned static form (the event holds
/// `&'static str` so the hot path never allocates).
fn intern_scheme(s: &str) -> &'static str {
    match s {
        "pseudo" => "pseudo",
        "AES-1" => "AES-1",
        "AES-10" => "AES-10",
        "RDRAND" => "RDRAND",
        _ => "other",
    }
}

/// An event stamped with its sequence number and decicycle time.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedEvent {
    /// Monotonic sequence number (counts all events ever pushed, so
    /// gaps reveal ring overflow).
    pub seq: u64,
    /// Decicycle clock when the event fired.
    pub now: u64,
    /// The event itself.
    pub event: Event,
}

impl TracedEvent {
    /// Serialize as one JSONL line (no trailing newline). `names`
    /// resolves function indices; out-of-range indices render as
    /// `"#<idx>"`.
    pub fn to_json(&self, names: &[String]) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"t\":");
        s.push_str(&self.now.to_string());
        s.push_str(",\"ev\":");
        let func_field = |s: &mut String, func: u32| {
            s.push_str(",\"func\":");
            match names.get(func as usize) {
                Some(n) => push_json_str(s, n),
                None => push_json_str(s, &format!("#{func}")),
            }
        };
        match &self.event {
            Event::FuncEnter { func, depth } => {
                push_json_str(&mut s, "func_enter");
                func_field(&mut s, *func);
                s.push_str(&format!(",\"depth\":{depth}"));
            }
            Event::FuncExit { func, frame_bytes } => {
                push_json_str(&mut s, "func_exit");
                func_field(&mut s, *func);
                s.push_str(&format!(",\"frame_bytes\":{frame_bytes}"));
            }
            Event::RngDraw {
                scheme,
                cost_decicycles,
            } => {
                push_json_str(&mut s, "rng_draw");
                s.push_str(",\"scheme\":");
                push_json_str(&mut s, scheme);
                s.push_str(&format!(",\"cost\":{cost_decicycles}"));
            }
            Event::PboxSelect { func, index } => {
                push_json_str(&mut s, "pbox_select");
                func_field(&mut s, *func);
                s.push_str(&format!(",\"index\":{index}"));
            }
            Event::GuardCheck { func, kind, passed } => {
                push_json_str(&mut s, "guard_check");
                func_field(&mut s, *func);
                s.push_str(",\"kind\":");
                push_json_str(&mut s, kind.label());
                s.push_str(&format!(",\"passed\":{passed}"));
            }
            Event::Fault { what } => {
                push_json_str(&mut s, "fault");
                s.push_str(",\"what\":");
                push_json_str(&mut s, what);
            }
            Event::InputRequest { index, bytes } => {
                push_json_str(&mut s, "input_request");
                s.push_str(&format!(",\"index\":{index},\"bytes\":{bytes}"));
            }
            Event::RunEnd {
                peak_rss,
                decicycles,
            } => {
                push_json_str(&mut s, "run_end");
                s.push_str(&format!(
                    ",\"peak_rss\":{peak_rss},\"decicycles\":{decicycles}"
                ));
            }
            Event::Alloca { func, addr, size } => {
                push_json_str(&mut s, "alloca");
                func_field(&mut s, *func);
                s.push_str(&format!(",\"addr\":{addr},\"size\":{size}"));
            }
        }
        s.push('}');
        s
    }

    /// Parse one JSONL line back (inverse of [`TracedEvent::to_json`]).
    /// `names` resolves function names back to indices; unknown names
    /// (including the `#<idx>` fallback) fail the parse.
    pub fn from_json(line: &str, names: &[String]) -> Option<TracedEvent> {
        let map = parse_flat_object(line)?;
        let seq = map.get("seq")?.as_u64()?;
        let now = map.get("t")?.as_u64()?;
        let func = |m: &BTreeMap<String, JsonValue>| -> Option<u32> {
            let name = m.get("func")?.as_str()?;
            names.iter().position(|n| n == name).map(|i| i as u32)
        };
        let event = match map.get("ev")?.as_str()? {
            "func_enter" => Event::FuncEnter {
                func: func(&map)?,
                depth: map.get("depth")?.as_u64()? as u32,
            },
            "func_exit" => Event::FuncExit {
                func: func(&map)?,
                frame_bytes: map.get("frame_bytes")?.as_u64()?,
            },
            "rng_draw" => Event::RngDraw {
                scheme: intern_scheme(map.get("scheme")?.as_str()?),
                cost_decicycles: map.get("cost")?.as_u64()?,
            },
            "pbox_select" => Event::PboxSelect {
                func: func(&map)?,
                index: map.get("index")?.as_u64()?,
            },
            "guard_check" => Event::GuardCheck {
                func: func(&map)?,
                kind: GuardKind::from_label(map.get("kind")?.as_str()?)?,
                passed: map.get("passed")?.as_bool()?,
            },
            "fault" => Event::Fault {
                what: map.get("what")?.as_str()?.to_string(),
            },
            "input_request" => Event::InputRequest {
                index: map.get("index")?.as_u64()?,
                bytes: map.get("bytes")?.as_u64()?,
            },
            "run_end" => Event::RunEnd {
                peak_rss: map.get("peak_rss")?.as_u64()?,
                decicycles: map.get("decicycles")?.as_u64()?,
            },
            "alloca" => Event::Alloca {
                func: func(&map)?,
                addr: map.get("addr")?.as_u64()?,
                size: map.get("size")?.as_u64()?,
            },
            _ => return None,
        };
        Some(TracedEvent { seq, now, event })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["main".to_string(), "server".to_string()]
    }

    #[test]
    fn every_variant_round_trips() {
        let evs = vec![
            Event::FuncEnter { func: 0, depth: 1 },
            Event::FuncExit {
                func: 1,
                frame_bytes: 320,
            },
            Event::RngDraw {
                scheme: "AES-10",
                cost_decicycles: 928,
            },
            Event::PboxSelect { func: 1, index: 5 },
            Event::GuardCheck {
                func: 1,
                kind: GuardKind::Word,
                passed: true,
            },
            Event::GuardCheck {
                func: 0,
                kind: GuardKind::Canary,
                passed: false,
            },
            Event::Fault {
                what: "oob write at 0x40 (\"quoted\")".to_string(),
            },
            Event::InputRequest {
                index: 3,
                bytes: 64,
            },
            Event::RunEnd {
                peak_rss: 4096,
                decicycles: 123456,
            },
            Event::Alloca {
                func: 1,
                addr: 0x7fff_e010,
                size: 24,
            },
        ];
        for (i, event) in evs.into_iter().enumerate() {
            let te = TracedEvent {
                seq: i as u64,
                now: 10 * i as u64,
                event,
            };
            let line = te.to_json(&names());
            let back = TracedEvent::from_json(&line, &names()).unwrap_or_else(|| {
                panic!("failed to parse back: {line}");
            });
            assert_eq!(back, te, "line: {line}");
        }
    }

    #[test]
    fn unknown_function_name_fails_parse() {
        let te = TracedEvent {
            seq: 0,
            now: 0,
            event: Event::FuncEnter { func: 7, depth: 1 },
        };
        let line = te.to_json(&names());
        assert!(TracedEvent::from_json(&line, &names()).is_none());
    }
}
