//! [`StreamingHistogram`]: a log-bucketed histogram with linear
//! sub-buckets, precise enough for streaming percentile estimation.
//!
//! The coarse [`Histogram`](crate::Histogram) in the metrics registry
//! has one bucket per power of two — fine for shape, useless for p99
//! (a bucket spans a 2x range). This histogram subdivides every octave
//! into `2^SUB_BITS = 32` linear sub-buckets, bounding the relative
//! quantile error at 1/32 ≈ 3.1% (half that when reporting bucket
//! midpoints). Values below 32 are recorded exactly.
//!
//! Observing is O(1) with no allocation beyond amortized growth of the
//! count vector (bounded at [`BUCKETS`] entries ≈ 15 KiB), merging adds
//! counts bucket-wise — commutative and associative, so cross-thread
//! merges produce bit-identical aggregates in any fold order.

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Total addressable buckets (values 0..=u64::MAX).
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS;

/// A mergeable streaming histogram of `u64` samples with quantile
/// estimation (p50/p95/p99/p999 and any other `0.0..=1.0` rank).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamingHistogram {
    /// Bucket counts, grown on demand up to [`BUCKETS`].
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index of `value`. Exact below `SUBS`; log-with-linear-fill
/// above.
fn bucket_of(value: u64) -> usize {
    if value < SUBS as u64 {
        return value as usize;
    }
    let h = 63 - value.leading_zeros(); // 2^h <= value < 2^(h+1)
    let sub = ((value >> (h - SUB_BITS)) as usize) & (SUBS - 1);
    (h - SUB_BITS + 1) as usize * SUBS + sub
}

/// Inclusive lower bound of bucket `b` (inverse of [`bucket_of`]).
fn bucket_lo(b: usize) -> u64 {
    if b < SUBS {
        return b as u64;
    }
    let h = (b / SUBS) as u32 + SUB_BITS - 1;
    let sub = (b % SUBS) as u64;
    (1u64 << h) | (sub << (h - SUB_BITS))
}

/// Exclusive width of bucket `b` (1 for the exact range).
fn bucket_width(b: usize) -> u64 {
    if b < SUBS {
        1
    } else {
        let h = (b / SUBS) as u32 + SUB_BITS - 1;
        1u64 << (h - SUB_BITS)
    }
}

impl StreamingHistogram {
    /// An empty histogram.
    pub fn new() -> StreamingHistogram {
        StreamingHistogram {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        let b = bucket_of(value);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one. Bucket-wise addition:
    /// `merge(a, b)` equals observing both streams into one histogram.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`): the smallest recorded
    /// value `v` such that at least `q * count` samples are `<= v`,
    /// reported as the midpoint of its bucket (exact below 32). Returns
    /// 0 when empty. The estimate is clamped to `[min, max]`, so
    /// `quantile(0.0) == min()` and `quantile(1.0) == max()`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let est = bucket_lo(b) + bucket_width(b) / 2;
                return est.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Non-empty `(bucket_lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_lo(b), c))
    }

    /// Cumulative `(inclusive_upper_bound, cumulative_count)` pairs for
    /// the non-empty prefix — the shape Prometheus histogram exposition
    /// wants (`le` buckets).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((bucket_lo(b) + bucket_width(b) - 1, cum));
        }
        out
    }

    /// Compact JSON: summary stats, percentiles, and non-empty buckets
    /// keyed by their lower bound.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{},\"buckets\":{{",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.p50(),
            self.p95(),
            self.p99(),
            self.p999(),
        );
        let mut first = true;
        for (lo, c) in self.nonzero_buckets() {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\"{lo}\":{c}"));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_consistent() {
        // Every bucket's lower bound maps back to that bucket, and the
        // value one-past-the-top lands in the next non-degenerate one.
        for b in 0..BUCKETS {
            let lo = bucket_lo(b);
            assert_eq!(bucket_of(lo), b, "lo of bucket {b}");
            let hi = lo + (bucket_width(b) - 1);
            assert_eq!(bucket_of(hi), b, "hi of bucket {b}");
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(31), 31);
        assert_eq!(bucket_of(32), 32);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = StreamingHistogram::new();
        for v in 0..32u64 {
            h.observe(v);
        }
        for v in 0..32u64 {
            // Quantile that isolates sample v among 32 ranked samples.
            let q = (v as f64 + 1.0) / 32.0;
            assert_eq!(h.quantile(q), v);
        }
    }

    #[test]
    fn quantile_extremes_hit_min_and_max() {
        let mut h = StreamingHistogram::new();
        for v in [7, 1000, 5_000_000] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 7);
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        let mut whole = StreamingHistogram::new();
        let mut x = 0x12345u64;
        for i in 0..2000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x >> 40;
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            whole.observe(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        // Merge is commutative.
        let mut other = b.clone();
        other.merge(&a);
        assert_eq!(other, whole);
    }

    #[test]
    fn empty_is_calm() {
        let h = StreamingHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.to_json().contains("\"count\":0"));
    }

    #[test]
    fn json_mentions_percentiles_and_buckets() {
        let mut h = StreamingHistogram::new();
        for v in [3, 3, 900, 40_000] {
            h.observe(v);
        }
        let json = h.to_json();
        assert!(json.contains("\"p50\":"));
        assert!(json.contains("\"p999\":"));
        assert!(json.contains("\"3\":2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
