//! Structured incident reports: what exactly happened when a fault or
//! guard trip ended a run.
//!
//! When a defense detects an attack (or the attack crashes the
//! victim), the pass/fail bit answers *whether* the defense worked —
//! the incident report answers *why*. It drains the flight-recorder
//! window into one schema-versioned JSON document carrying:
//!
//! * the randomness **scheme** and every seed needed to replay the run
//!   through the existing seed protocol (`build_seed`, `trng_seed`,
//!   and for campaign trials `campaign_seed` + `round`);
//! * the **layout draw** — the most recent P-BOX row selected per
//!   function, i.e. the stack permutation in force at the fault;
//! * the **frame map** of the victim function — every stack slot of
//!   its live frame (address, size, execution order);
//! * the **faulting access** with segment and offset detail;
//! * the last N **events** from the recorder ring, and how many were
//!   dropped before the window.
//!
//! Reports are deterministic: replaying the same seeds re-derives a
//! byte-identical document (the CI incident gate pins this).
//!
//! # Schema (`smokestack-incident/1`)
//!
//! ```json
//! {
//!   "schema": "smokestack-incident/1",     // required
//!   "scheme": "AES-10",                    // required: Table I label
//!   "exit_class": "fault:guard:f",         // required: canonical exit
//!   "trng_seed": 7,                        // required
//!   "decicycles": 1234,                    // required
//!   "peak_rss": 4096,                      // required
//!   "dropped_events": 0,                   // required
//!   "fault": {"what": "...",               // required: description
//!     "addr": 64, "len": 8, "write": true, // optional: raw access
//!     "segment": "stack", "offset": 40},   // optional: locus
//!   "victim": "f",                         // optional: faulting func
//!   "frame_map": [                         // required (may be empty)
//!     {"name": "buf", "addr": 64, "size": 24}],
//!   "layout_draws": [                      // required (may be empty)
//!     {"func": "f", "row": 4}],
//!   "events": [{"seq":0,"t":0,"ev":"..."}],// required (may be empty)
//!   "defense": "smokestack/AES-10",        // optional: replay context
//!   "attack": "librelp-cve-2018-1000140",  // optional
//!   "build_seed": 1,                       // optional
//!   "campaign_seed": 2,                    // optional
//!   "round": 0                             // optional
//! }
//! ```

use crate::event::Event;
use crate::json::{parse_value, push_json_str, JsonValue};
use crate::recorder::FlightRecorder;

/// Version tag every report carries.
pub const INCIDENT_SCHEMA: &str = "smokestack-incident/1";

/// The faulting access, as far as the fault kind exposes it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultAccess {
    /// Human-readable fault description.
    pub what: String,
    /// Accessed address, for memory faults.
    pub addr: Option<u64>,
    /// Access length in bytes, for memory faults.
    pub len: Option<u64>,
    /// Whether the access was a write, for memory faults.
    pub write: Option<bool>,
    /// Segment the access resolved against (`stack`, `heap`, ...).
    pub segment: Option<String>,
    /// Offset within (or past) that segment.
    pub offset: Option<u64>,
}

/// One stack slot of the victim function's live frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSlot {
    /// Slot name (IR alloca name when the caller can resolve it,
    /// `slot<N>` otherwise).
    pub name: String,
    /// Absolute address the slot was carved at.
    pub addr: u64,
    /// Slot size in bytes.
    pub size: u64,
}

/// A complete incident report (see the module docs for the schema).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IncidentReport {
    /// Table I scheme label in force.
    pub scheme: String,
    /// Canonical exit class (`fault:guard:f`, `fault:mem-write`, ...).
    pub exit_class: String,
    /// Per-run TRNG seed (replays the exact layout draws).
    pub trng_seed: u64,
    /// Decicycles charged when the run ended.
    pub decicycles: u64,
    /// Peak resident set, bytes.
    pub peak_rss: u64,
    /// Events overwritten before the retained window.
    pub dropped_events: u64,
    /// The faulting access.
    pub fault: FaultAccess,
    /// The function whose frame was live at the fault (detecting
    /// function for guard/canary trips).
    pub victim: Option<String>,
    /// The victim frame's stack slots, in execution order.
    pub frame_map: Vec<FrameSlot>,
    /// Most recent P-BOX row per function — the layout in force.
    pub layout_draws: Vec<(String, u64)>,
    /// Last-N events, each pre-rendered as one JSON object.
    pub events: Vec<String>,
    /// Defense row label (replay context).
    pub defense: Option<String>,
    /// Attack name (replay context).
    pub attack: Option<String>,
    /// Build seed (replay context).
    pub build_seed: Option<u64>,
    /// Campaign seed the trial's rounds fanned out from.
    pub campaign_seed: Option<u64>,
    /// Zero-based round within the trial that produced this incident.
    pub round: Option<u64>,
}

impl IncidentReport {
    /// Drain `recorder` into a report. `victim` overrides the victim
    /// inference (pass `None` to use the innermost open frame); the
    /// frame map is extracted from the victim's most recent activation
    /// in the event window.
    pub fn from_recorder(
        recorder: &FlightRecorder,
        scheme: &str,
        trng_seed: u64,
        exit_class: &str,
        fault: FaultAccess,
        victim: Option<u32>,
    ) -> IncidentReport {
        let events = recorder.events();
        let victim_id = victim.or_else(|| {
            // Prefer the function whose guard/canary check failed, then
            // the innermost frame open at the fault.
            events
                .iter()
                .rev()
                .find_map(|e| match &e.event {
                    Event::GuardCheck {
                        func,
                        passed: false,
                        ..
                    } => Some(*func),
                    _ => None,
                })
                .or_else(|| recorder.innermost_open())
                .or_else(|| {
                    events.iter().rev().find_map(|e| match &e.event {
                        Event::FuncEnter { func, .. } => Some(*func),
                        _ => None,
                    })
                })
        });

        // Frame map: alloca events of the victim's last activation.
        let mut frame_map = Vec::new();
        if let Some(v) = victim_id {
            let last_enter = events
                .iter()
                .rposition(|e| matches!(&e.event, Event::FuncEnter { func, .. } if *func == v));
            if let Some(start) = last_enter {
                for e in &events[start..] {
                    match &e.event {
                        Event::Alloca { func, addr, size } if *func == v => {
                            frame_map.push(FrameSlot {
                                name: format!("slot{}", frame_map.len()),
                                addr: *addr,
                                size: *size,
                            });
                        }
                        // Stop at the activation's exit, if it got one.
                        Event::FuncExit { func, .. } if *func == v => break,
                        _ => {}
                    }
                }
            }
        }

        let names = recorder.names();
        IncidentReport {
            scheme: scheme.to_string(),
            exit_class: exit_class.to_string(),
            trng_seed,
            decicycles: recorder.stats().run_decicycles.max(),
            peak_rss: recorder.stats().peak_rss,
            dropped_events: recorder.ring().dropped(),
            fault,
            victim: victim_id.map(|v| recorder.func_name(v)),
            frame_map,
            layout_draws: recorder.layout_draws(),
            events: events.iter().map(|e| e.to_json(names)).collect(),
            ..IncidentReport::default()
        }
    }

    /// Render as one JSON line (deterministic field order — replaying
    /// the same seeds yields a byte-identical document).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"schema\":");
        push_json_str(&mut s, INCIDENT_SCHEMA);
        s.push_str(",\"scheme\":");
        push_json_str(&mut s, &self.scheme);
        s.push_str(",\"exit_class\":");
        push_json_str(&mut s, &self.exit_class);
        s.push_str(&format!(
            ",\"trng_seed\":{},\"decicycles\":{},\"peak_rss\":{},\"dropped_events\":{}",
            self.trng_seed, self.decicycles, self.peak_rss, self.dropped_events
        ));
        s.push_str(",\"fault\":{\"what\":");
        push_json_str(&mut s, &self.fault.what);
        if let Some(addr) = self.fault.addr {
            s.push_str(&format!(",\"addr\":{addr}"));
        }
        if let Some(len) = self.fault.len {
            s.push_str(&format!(",\"len\":{len}"));
        }
        if let Some(write) = self.fault.write {
            s.push_str(&format!(",\"write\":{write}"));
        }
        if let Some(seg) = &self.fault.segment {
            s.push_str(",\"segment\":");
            push_json_str(&mut s, seg);
        }
        if let Some(off) = self.fault.offset {
            s.push_str(&format!(",\"offset\":{off}"));
        }
        s.push('}');
        if let Some(victim) = &self.victim {
            s.push_str(",\"victim\":");
            push_json_str(&mut s, victim);
        }
        s.push_str(",\"frame_map\":[");
        for (i, slot) in self.frame_map.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            push_json_str(&mut s, &slot.name);
            s.push_str(&format!(",\"addr\":{},\"size\":{}}}", slot.addr, slot.size));
        }
        s.push_str("],\"layout_draws\":[");
        for (i, (func, row)) in self.layout_draws.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"func\":");
            push_json_str(&mut s, func);
            s.push_str(&format!(",\"row\":{row}}}"));
        }
        s.push_str("],\"events\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(ev);
        }
        s.push(']');
        if let Some(defense) = &self.defense {
            s.push_str(",\"defense\":");
            push_json_str(&mut s, defense);
        }
        if let Some(attack) = &self.attack {
            s.push_str(",\"attack\":");
            push_json_str(&mut s, attack);
        }
        if let Some(seed) = self.build_seed {
            s.push_str(&format!(",\"build_seed\":{seed}"));
        }
        if let Some(seed) = self.campaign_seed {
            s.push_str(&format!(",\"campaign_seed\":{seed}"));
        }
        if let Some(round) = self.round {
            s.push_str(&format!(",\"round\":{round}"));
        }
        s.push('}');
        s
    }

    /// Validate a serialized report against the documented schema.
    /// Returns the parsed document on success, the first violation
    /// otherwise.
    pub fn validate_json(text: &str) -> Result<JsonValue, String> {
        let doc = parse_value(text).ok_or("incident report is not valid JSON")?;
        let obj = doc.as_obj().ok_or("incident report is not a JSON object")?;

        let need_str = |key: &str| -> Result<(), String> {
            obj.get(key)
                .and_then(JsonValue::as_str)
                .map(|_| ())
                .ok_or(format!("missing or non-string field `{key}`"))
        };
        let need_num = |key: &str| -> Result<(), String> {
            obj.get(key)
                .and_then(JsonValue::as_u64)
                .map(|_| ())
                .ok_or(format!("missing or non-numeric field `{key}`"))
        };

        match obj.get("schema").and_then(JsonValue::as_str) {
            Some(INCIDENT_SCHEMA) => {}
            Some(other) => return Err(format!("unknown schema `{other}`")),
            None => return Err("missing `schema` field".to_string()),
        }
        need_str("scheme")?;
        need_str("exit_class")?;
        need_num("trng_seed")?;
        need_num("decicycles")?;
        need_num("peak_rss")?;
        need_num("dropped_events")?;

        let fault = obj
            .get("fault")
            .and_then(JsonValue::as_obj)
            .ok_or("missing or non-object field `fault`")?;
        fault
            .get("what")
            .and_then(JsonValue::as_str)
            .ok_or("fault is missing string field `what`")?;

        let frame_map = obj
            .get("frame_map")
            .and_then(JsonValue::as_arr)
            .ok_or("missing or non-array field `frame_map`")?;
        for slot in frame_map {
            let slot = slot.as_obj().ok_or("frame_map entry is not an object")?;
            slot.get("name")
                .and_then(JsonValue::as_str)
                .ok_or("frame_map entry missing `name`")?;
            slot.get("addr")
                .and_then(JsonValue::as_u64)
                .ok_or("frame_map entry missing `addr`")?;
            slot.get("size")
                .and_then(JsonValue::as_u64)
                .ok_or("frame_map entry missing `size`")?;
        }

        let draws = obj
            .get("layout_draws")
            .and_then(JsonValue::as_arr)
            .ok_or("missing or non-array field `layout_draws`")?;
        for draw in draws {
            let draw = draw.as_obj().ok_or("layout_draws entry is not an object")?;
            draw.get("func")
                .and_then(JsonValue::as_str)
                .ok_or("layout_draws entry missing `func`")?;
            draw.get("row")
                .and_then(JsonValue::as_u64)
                .ok_or("layout_draws entry missing `row`")?;
        }

        let events = obj
            .get("events")
            .and_then(JsonValue::as_arr)
            .ok_or("missing or non-array field `events`")?;
        for ev in events {
            let ev = ev.as_obj().ok_or("events entry is not an object")?;
            for key in ["seq", "t"] {
                ev.get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or(format!("events entry missing `{key}`"))?;
            }
            ev.get("ev")
                .and_then(JsonValue::as_str)
                .ok_or("events entry missing `ev`")?;
        }

        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::GuardKind;
    use crate::recorder::RecorderConfig;
    use crate::Tracer;

    fn sample_report() -> IncidentReport {
        IncidentReport {
            scheme: "AES-10".to_string(),
            exit_class: "fault:guard:parse".to_string(),
            trng_seed: 7,
            decicycles: 1234,
            peak_rss: 4096,
            dropped_events: 2,
            fault: FaultAccess {
                what: "guard word smashed in parse".to_string(),
                addr: Some(0x7fff_f020),
                len: Some(8),
                write: Some(true),
                segment: Some("stack".to_string()),
                offset: Some(64),
            },
            victim: Some("parse".to_string()),
            frame_map: vec![
                FrameSlot {
                    name: "buf".to_string(),
                    addr: 0x7fff_f000,
                    size: 24,
                },
                FrameSlot {
                    name: "len".to_string(),
                    addr: 0x7fff_f020,
                    size: 8,
                },
            ],
            layout_draws: vec![("parse".to_string(), 4)],
            events: vec![
                "{\"seq\":0,\"t\":0,\"ev\":\"func_enter\",\"func\":\"parse\",\"depth\":1}"
                    .to_string(),
            ],
            defense: Some("smokestack/AES-10".to_string()),
            attack: Some("librelp-cve-2018-1000140".to_string()),
            build_seed: Some(11),
            campaign_seed: Some(22),
            round: Some(3),
        }
    }

    #[test]
    fn report_serializes_and_validates() {
        let json = sample_report().to_json();
        assert_eq!(json.lines().count(), 1);
        let doc = IncidentReport::validate_json(&json).expect("schema-valid");
        assert_eq!(
            doc.get("scheme").and_then(JsonValue::as_str),
            Some("AES-10")
        );
        assert_eq!(
            doc.get("fault")
                .and_then(|f| f.get("segment"))
                .and_then(JsonValue::as_str),
            Some("stack")
        );
        assert_eq!(doc.get("frame_map").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample_report().to_json(), sample_report().to_json());
    }

    #[test]
    fn validation_flags_violations() {
        assert!(IncidentReport::validate_json("nope").is_err());
        assert!(IncidentReport::validate_json("{}")
            .unwrap_err()
            .contains("schema"));
        let mut r = sample_report();
        r.fault.what = String::new(); // empty is fine — still a string
        assert!(IncidentReport::validate_json(&r.to_json()).is_ok());
        // Breaking the schema tag is caught.
        let bad = r
            .to_json()
            .replace(INCIDENT_SCHEMA, "smokestack-incident/99");
        assert!(IncidentReport::validate_json(&bad)
            .unwrap_err()
            .contains("unknown schema"));
        // A frame-map entry missing `size` is caught.
        let bad = sample_report().to_json().replace(",\"size\":24", "");
        assert!(IncidentReport::validate_json(&bad)
            .unwrap_err()
            .contains("size"));
    }

    #[test]
    fn from_recorder_extracts_victim_frame_and_layout() {
        let mut r = FlightRecorder::new(RecorderConfig { ring_capacity: 64 });
        r.on_functions(&["main".to_string(), "parse".to_string()]);
        r.on_event(0, &Event::FuncEnter { func: 0, depth: 1 });
        r.on_event(5, &Event::PboxSelect { func: 1, index: 3 });
        r.on_event(6, &Event::FuncEnter { func: 1, depth: 2 });
        r.on_event(
            7,
            &Event::Alloca {
                func: 1,
                addr: 0x7fff_f000,
                size: 24,
            },
        );
        r.on_event(
            8,
            &Event::Alloca {
                func: 1,
                addr: 0x7fff_f018,
                size: 8,
            },
        );
        r.on_event(
            90,
            &Event::GuardCheck {
                func: 1,
                kind: GuardKind::Word,
                passed: false,
            },
        );
        r.on_event(
            91,
            &Event::Fault {
                what: "guard violation in parse".to_string(),
            },
        );
        r.on_event(
            91,
            &Event::RunEnd {
                peak_rss: 8192,
                decicycles: 91,
            },
        );

        let report = IncidentReport::from_recorder(
            &r,
            "AES-1",
            42,
            "fault:guard:parse",
            FaultAccess {
                what: "guard violation in parse".to_string(),
                ..FaultAccess::default()
            },
            None,
        );
        assert_eq!(report.victim.as_deref(), Some("parse"));
        assert_eq!(report.frame_map.len(), 2);
        assert_eq!(report.frame_map[0].addr, 0x7fff_f000);
        assert_eq!(report.frame_map[1].size, 8);
        assert_eq!(report.layout_draws, vec![("parse".to_string(), 3)]);
        assert_eq!(report.decicycles, 91);
        assert_eq!(report.peak_rss, 8192);
        assert_eq!(report.events.len(), 8);
        IncidentReport::validate_json(&report.to_json()).expect("schema-valid");
    }
}
