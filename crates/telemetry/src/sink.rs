//! Pluggable event sinks: in-memory capture and a JSONL writer.

use crate::event::TracedEvent;
use crate::ring::EventRing;
use std::io::{self, Write};

/// Consumes traced events (typically drained from an [`EventRing`]).
pub trait EventSink {
    /// Consume one event. `names` resolves function indices.
    fn record(&mut self, event: &TracedEvent, names: &[String]);
}

/// Keeps every event it sees (tests, custom post-processing).
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    /// Captured events, in arrival order.
    pub events: Vec<TracedEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }
}

impl EventSink for MemorySink {
    fn record(&mut self, event: &TracedEvent, _names: &[String]) {
        self.events.push(event.clone());
    }
}

/// Writes one JSON object per line to any `io::Write`.
///
/// Write errors are sticky: the first failure is retained (see
/// [`JsonlSink::error`]) and later events are dropped, so the sink can
/// implement the infallible [`EventSink`] trait.
pub struct JsonlSink<W: Write> {
    writer: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer,
            written: 0,
            error: None,
        }
    }

    /// Lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first write error, if any occurred.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the inner writer (or the sticky error).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn record(&mut self, event: &TracedEvent, names: &[String]) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json(names);
        match writeln!(self.writer, "{line}") {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Drain every retained event of `ring` into `sink`, oldest first.
pub fn drain_ring(ring: &EventRing, names: &[String], sink: &mut dyn EventSink) {
    for ev in ring.iter() {
        sink.record(ev, names);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn names() -> Vec<String> {
        vec!["main".to_string()]
    }

    #[test]
    fn jsonl_round_trips_through_ring() {
        let mut ring = EventRing::new(16);
        ring.push(
            5,
            Event::RngDraw {
                scheme: "AES-1",
                cost_decicycles: 192,
            },
        );
        ring.push(9, Event::FuncEnter { func: 0, depth: 1 });

        let mut sink = JsonlSink::new(Vec::new());
        drain_ring(&ring, &names(), &mut sink);
        assert_eq!(sink.written(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();

        let parsed: Vec<TracedEvent> = text
            .lines()
            .map(|l| TracedEvent::from_json(l, &names()).unwrap())
            .collect();
        let original: Vec<TracedEvent> = ring.iter().cloned().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn memory_sink_captures_in_order() {
        let mut ring = EventRing::new(4);
        for i in 0..6 {
            ring.push(i, Event::InputRequest { index: i, bytes: 1 });
        }
        let mut sink = MemorySink::new();
        drain_ring(&ring, &names(), &mut sink);
        let seqs: Vec<u64> = sink.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
    }

    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_errors_are_sticky() {
        let mut sink = JsonlSink::new(FailingWriter);
        let te = TracedEvent {
            seq: 0,
            now: 0,
            event: Event::FuncEnter { func: 0, depth: 1 },
        };
        sink.record(&te, &names());
        sink.record(&te, &names());
        assert_eq!(sink.written(), 0);
        assert!(sink.error().is_some());
        assert!(sink.finish().is_err());
    }
}
