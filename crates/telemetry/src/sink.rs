//! Pluggable event sinks: in-memory capture, a JSONL writer, and a
//! thread-shareable JSONL sink for concurrent producers.

use crate::event::TracedEvent;
use crate::ring::EventRing;
use std::io::{self, BufWriter, Write};
use std::sync::{Arc, Mutex};

/// Consumes traced events (typically drained from an [`EventRing`]).
pub trait EventSink {
    /// Consume one event. `names` resolves function indices.
    fn record(&mut self, event: &TracedEvent, names: &[String]);
}

/// Keeps every event it sees (tests, custom post-processing).
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    /// Captured events, in arrival order.
    pub events: Vec<TracedEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }
}

impl EventSink for MemorySink {
    fn record(&mut self, event: &TracedEvent, _names: &[String]) {
        self.events.push(event.clone());
    }
}

/// Writes one JSON object per line to any `io::Write`.
///
/// Write errors are sticky: the first failure is retained (see
/// [`JsonlSink::error`]) and later events are dropped, so the sink can
/// implement the infallible [`EventSink`] trait.
pub struct JsonlSink<W: Write> {
    writer: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer,
            written: 0,
            error: None,
        }
    }

    /// Lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first write error, if any occurred.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the inner writer (or the sticky error).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn record(&mut self, event: &TracedEvent, names: &[String]) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json(names);
        match writeln!(self.writer, "{line}") {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// A JSONL sink that is safe to share across worker threads.
///
/// [`JsonlSink`] requires `&mut` exclusivity, which forces single-writer
/// ownership; Monte-Carlo campaigns instead need every worker streaming
/// records into one journal. `SharedJsonlSink` wraps a buffered
/// [`JsonlSink`] in an `Arc<Mutex<_>>`: clones are cheap handles to the
/// same journal, the lock is held per line (format outside, write
/// inside), and each line is written atomically so concurrent records
/// never interleave mid-line. Write errors stay sticky, exactly as in
/// the single-threaded sink.
pub struct SharedJsonlSink<W: Write + Send> {
    inner: Arc<Mutex<JsonlSink<BufWriter<W>>>>,
}

impl<W: Write + Send> Clone for SharedJsonlSink<W> {
    fn clone(&self) -> Self {
        SharedJsonlSink {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<W: Write + Send> SharedJsonlSink<W> {
    /// Wrap a writer (buffered internally).
    pub fn new(writer: W) -> SharedJsonlSink<W> {
        SharedJsonlSink {
            inner: Arc::new(Mutex::new(JsonlSink::new(BufWriter::new(writer)))),
        }
    }

    /// Write one pre-formatted JSON line (without trailing newline).
    /// The mutex is held only for the write itself.
    pub fn write_line(&self, line: &str) {
        let mut sink = self.inner.lock().unwrap();
        if sink.error.is_some() {
            return;
        }
        match writeln!(sink.writer, "{line}") {
            Ok(()) => sink.written += 1,
            Err(e) => sink.error = Some(e),
        }
    }

    /// Lines successfully written so far (across all handles).
    pub fn written(&self) -> u64 {
        self.inner.lock().unwrap().written()
    }

    /// Whether a write error has occurred (it is sticky).
    pub fn has_error(&self) -> bool {
        self.inner.lock().unwrap().error().is_some()
    }

    /// Flush buffered lines to the underlying writer without consuming
    /// the sink (checkpointing: the journal on disk is complete up to
    /// every record written so far).
    pub fn flush(&self) -> io::Result<()> {
        let mut sink = self.inner.lock().unwrap();
        if let Some(e) = &sink.error {
            return Err(io::Error::new(e.kind(), e.to_string()));
        }
        sink.writer.flush()
    }

    /// Flush and return the inner writer, or the sticky error. Fails if
    /// other handles are still alive.
    pub fn finish(self) -> io::Result<W> {
        let sink = Arc::try_unwrap(self.inner)
            .map_err(|_| io::Error::other("SharedJsonlSink handles still alive"))?
            .into_inner()
            .unwrap();
        sink.finish()?.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write + Send> EventSink for SharedJsonlSink<W> {
    fn record(&mut self, event: &TracedEvent, names: &[String]) {
        // Format outside the lock; hold it only for the line write.
        let line = event.to_json(names);
        self.write_line(&line);
    }
}

/// Drain every retained event of `ring` into `sink`, oldest first.
pub fn drain_ring(ring: &EventRing, names: &[String], sink: &mut dyn EventSink) {
    for ev in ring.iter() {
        sink.record(ev, names);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn names() -> Vec<String> {
        vec!["main".to_string()]
    }

    #[test]
    fn jsonl_round_trips_through_ring() {
        let mut ring = EventRing::new(16);
        ring.push(
            5,
            Event::RngDraw {
                scheme: "AES-1",
                cost_decicycles: 192,
            },
        );
        ring.push(9, Event::FuncEnter { func: 0, depth: 1 });

        let mut sink = JsonlSink::new(Vec::new());
        drain_ring(&ring, &names(), &mut sink);
        assert_eq!(sink.written(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();

        let parsed: Vec<TracedEvent> = text
            .lines()
            .map(|l| TracedEvent::from_json(l, &names()).unwrap())
            .collect();
        let original: Vec<TracedEvent> = ring.iter().cloned().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn memory_sink_captures_in_order() {
        let mut ring = EventRing::new(4);
        for i in 0..6 {
            ring.push(i, Event::InputRequest { index: i, bytes: 1 });
        }
        let mut sink = MemorySink::new();
        drain_ring(&ring, &names(), &mut sink);
        let seqs: Vec<u64> = sink.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
    }

    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn shared_sink_serializes_concurrent_writers() {
        // N threads hammer one shared sink; every line must arrive
        // intact (no interleaving) and the total count must match.
        let sink = SharedJsonlSink::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let handle = sink.clone();
                scope.spawn(move || {
                    for i in 0..50u64 {
                        handle.write_line(&format!("{{\"t\":{t},\"i\":{i}}}"));
                    }
                });
            }
        });
        assert_eq!(sink.written(), 200);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let mut per_thread = [0u32; 4];
        for line in text.lines() {
            let obj = crate::json::parse_flat_object(line).expect("intact line");
            per_thread[obj["t"].as_u64().unwrap() as usize] += 1;
        }
        assert_eq!(per_thread, [50; 4]);
    }

    #[test]
    fn shared_sink_is_an_event_sink() {
        let mut ring = EventRing::new(8);
        ring.push(1, Event::FuncEnter { func: 0, depth: 1 });
        let sink = SharedJsonlSink::new(Vec::new());
        let mut handle = sink.clone();
        drain_ring(&ring, &names(), &mut handle);
        drop(handle);
        sink.flush().unwrap();
        assert_eq!(sink.written(), 1);
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let parsed = TracedEvent::from_json(text.lines().next().unwrap(), &names()).unwrap();
        assert_eq!(parsed.now, 1);
    }

    #[test]
    fn write_errors_are_sticky() {
        let mut sink = JsonlSink::new(FailingWriter);
        let te = TracedEvent {
            seq: 0,
            now: 0,
            event: Event::FuncEnter { func: 0, depth: 1 },
        };
        sink.record(&te, &names());
        sink.record(&te, &names());
        assert_eq!(sink.written(), 0);
        assert!(sink.error().is_some());
        assert!(sink.finish().is_err());
    }
}
