//! Pluggable event sinks: in-memory capture, a JSONL writer, and a
//! thread-shareable line-atomic JSONL sink for concurrent producers.

use crate::event::TracedEvent;
use crate::ring::EventRing;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// Consumes traced events (typically drained from an [`EventRing`]).
pub trait EventSink {
    /// Consume one event. `names` resolves function indices.
    fn record(&mut self, event: &TracedEvent, names: &[String]);
}

/// Keeps every event it sees (tests, custom post-processing).
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    /// Captured events, in arrival order.
    pub events: Vec<TracedEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }
}

impl EventSink for MemorySink {
    fn record(&mut self, event: &TracedEvent, _names: &[String]) {
        self.events.push(event.clone());
    }
}

/// Writes one JSON object per line to any `io::Write`.
///
/// Write errors are sticky: the first failure is retained (see
/// [`JsonlSink::error`]) and later events are dropped, so the sink can
/// implement the infallible [`EventSink`] trait.
pub struct JsonlSink<W: Write> {
    writer: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer,
            written: 0,
            error: None,
        }
    }

    /// Lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first write error, if any occurred.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the inner writer (or the sticky error).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn record(&mut self, event: &TracedEvent, names: &[String]) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json(names);
        match writeln!(self.writer, "{line}") {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Flush threshold for the line buffer. Large enough to amortize
/// syscalls across many journal records, small enough that a crash
/// loses at most ~one batch of buffered (but always *complete*) lines.
const LINE_BUF_CAP: usize = 64 * 1024;

/// Whole-line buffered journal writer: the backbone of
/// [`SharedJsonlSink`].
///
/// A plain `BufWriter` spills whenever its byte buffer fills — possibly
/// *mid-line*, so a crash (or a reader racing the writer) can observe a
/// torn, unparseable record at the journal tail. `LineJournal` instead
/// accumulates complete `line + '\n'` units and hands the underlying
/// writer only whole-line batches: every `write_all` it issues ends at
/// a line boundary. Dropping the journal flushes whatever is buffered.
struct LineJournal<W: Write> {
    /// `None` only after `finish()` moved the writer out.
    writer: Option<W>,
    /// Pending bytes; always a whole number of lines.
    buf: Vec<u8>,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> LineJournal<W> {
    fn new(writer: W) -> LineJournal<W> {
        LineJournal {
            writer: Some(writer),
            buf: Vec::with_capacity(LINE_BUF_CAP),
            written: 0,
            error: None,
        }
    }

    /// Buffer one line (no trailing newline); spills whole lines once
    /// the buffer crosses [`LINE_BUF_CAP`].
    fn push_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
        self.written += 1;
        if self.buf.len() >= LINE_BUF_CAP {
            self.spill();
        }
    }

    /// Push buffered lines down to the writer (no writer flush).
    fn spill(&mut self) {
        if self.error.is_some() || self.buf.is_empty() {
            return;
        }
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.write_all(&self.buf) {
                self.error = Some(e);
            }
        }
        self.buf.clear();
    }

    /// Spill and flush through to the underlying writer.
    fn flush(&mut self) -> io::Result<()> {
        self.spill();
        if let Some(e) = &self.error {
            return Err(io::Error::new(e.kind(), e.to_string()));
        }
        match self.writer.as_mut() {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }

    /// Flush and return the writer (or the sticky error).
    fn finish(mut self) -> io::Result<W> {
        self.spill();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut w = self.writer.take().expect("writer present until finish");
        w.flush()?;
        Ok(w)
    }
}

impl<W: Write> Drop for LineJournal<W> {
    fn drop(&mut self) {
        // Best-effort flush so buffered lines survive an orderly drop;
        // errors here have nowhere to go.
        let _ = self.flush();
    }
}

/// A line-atomic JSONL sink that is safe to share across worker
/// threads.
///
/// [`JsonlSink`] requires `&mut` exclusivity, which forces single-writer
/// ownership; Monte-Carlo campaigns instead need every worker streaming
/// records into one journal. `SharedJsonlSink` wraps a [`LineJournal`]
/// in an `Arc<Mutex<_>>`: clones are cheap handles to the same journal,
/// the lock is held per line (format outside, buffer inside), and bytes
/// reach the underlying writer only in whole-line batches — a reader
/// tailing the journal (or a post-crash recovery pass) never sees a
/// torn record. Buffered lines are flushed by [`SharedJsonlSink::flush`]
/// (checkpointing), by [`SharedJsonlSink::finish`], and automatically
/// when the last handle drops. Write errors stay sticky, exactly as in
/// the single-threaded sink.
pub struct SharedJsonlSink<W: Write + Send> {
    inner: Arc<Mutex<LineJournal<W>>>,
}

impl<W: Write + Send> Clone for SharedJsonlSink<W> {
    fn clone(&self) -> Self {
        SharedJsonlSink {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<W: Write + Send> SharedJsonlSink<W> {
    /// Wrap a writer (line-buffered internally).
    pub fn new(writer: W) -> SharedJsonlSink<W> {
        SharedJsonlSink {
            inner: Arc::new(Mutex::new(LineJournal::new(writer))),
        }
    }

    /// Write one pre-formatted JSON line (without trailing newline).
    /// The mutex is held only for the buffer append.
    pub fn write_line(&self, line: &str) {
        self.inner.lock().unwrap().push_line(line);
    }

    /// Lines accepted so far (across all handles). With buffering, a
    /// line is counted when accepted; it is durable after the next
    /// [`flush`](SharedJsonlSink::flush).
    pub fn written(&self) -> u64 {
        self.inner.lock().unwrap().written
    }

    /// Whether a write error has occurred (it is sticky).
    pub fn has_error(&self) -> bool {
        self.inner.lock().unwrap().error.is_some()
    }

    /// Flush buffered lines through to the underlying writer without
    /// consuming the sink (checkpointing: the journal on disk is
    /// complete up to every record written so far).
    pub fn flush(&self) -> io::Result<()> {
        self.inner.lock().unwrap().flush()
    }

    /// Flush and return the inner writer, or the sticky error. Fails if
    /// other handles are still alive.
    pub fn finish(self) -> io::Result<W> {
        Arc::try_unwrap(self.inner)
            .map_err(|_| io::Error::other("SharedJsonlSink handles still alive"))?
            .into_inner()
            .unwrap()
            .finish()
    }
}

impl<W: Write + Send> EventSink for SharedJsonlSink<W> {
    fn record(&mut self, event: &TracedEvent, names: &[String]) {
        // Format outside the lock; hold it only for the buffer append.
        let line = event.to_json(names);
        self.write_line(&line);
    }
}

/// Drain every retained event of `ring` into `sink`, oldest first.
pub fn drain_ring(ring: &EventRing, names: &[String], sink: &mut dyn EventSink) {
    for ev in ring.iter() {
        sink.record(ev, names);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn names() -> Vec<String> {
        vec!["main".to_string()]
    }

    #[test]
    fn jsonl_round_trips_through_ring() {
        let mut ring = EventRing::new(16);
        ring.push(
            5,
            Event::RngDraw {
                scheme: "AES-1",
                cost_decicycles: 192,
            },
        );
        ring.push(9, Event::FuncEnter { func: 0, depth: 1 });

        let mut sink = JsonlSink::new(Vec::new());
        drain_ring(&ring, &names(), &mut sink);
        assert_eq!(sink.written(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();

        let parsed: Vec<TracedEvent> = text
            .lines()
            .map(|l| TracedEvent::from_json(l, &names()).unwrap())
            .collect();
        let original: Vec<TracedEvent> = ring.iter().cloned().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn memory_sink_captures_in_order() {
        let mut ring = EventRing::new(4);
        for i in 0..6 {
            ring.push(i, Event::InputRequest { index: i, bytes: 1 });
        }
        let mut sink = MemorySink::new();
        drain_ring(&ring, &names(), &mut sink);
        let seqs: Vec<u64> = sink.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
    }

    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Records the byte chunks of every `write` call, so tests can
    /// assert each chunk ends at a line boundary. Clonable so a copy
    /// survives the sink being dropped.
    #[derive(Clone, Default)]
    struct ChunkWriter {
        chunks: Arc<Mutex<Vec<Vec<u8>>>>,
        flushes: Arc<Mutex<u64>>,
    }

    impl ChunkWriter {
        fn contents(&self) -> Vec<u8> {
            self.chunks.lock().unwrap().concat()
        }
    }

    impl Write for ChunkWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.chunks.lock().unwrap().push(buf.to_vec());
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            *self.flushes.lock().unwrap() += 1;
            Ok(())
        }
    }

    #[test]
    fn shared_sink_serializes_concurrent_writers() {
        // N threads hammer one shared sink; every line must arrive
        // intact (no interleaving) and the total count must match.
        let sink = SharedJsonlSink::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let handle = sink.clone();
                scope.spawn(move || {
                    for i in 0..50u64 {
                        handle.write_line(&format!("{{\"t\":{t},\"i\":{i}}}"));
                    }
                });
            }
        });
        assert_eq!(sink.written(), 200);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let mut per_thread = [0u32; 4];
        for line in text.lines() {
            let obj = crate::json::parse_flat_object(line).expect("intact line");
            per_thread[obj["t"].as_u64().unwrap() as usize] += 1;
        }
        assert_eq!(per_thread, [50; 4]);
    }

    #[test]
    fn shared_sink_is_an_event_sink() {
        let mut ring = EventRing::new(8);
        ring.push(1, Event::FuncEnter { func: 0, depth: 1 });
        let sink = SharedJsonlSink::new(Vec::new());
        let mut handle = sink.clone();
        drain_ring(&ring, &names(), &mut handle);
        drop(handle);
        sink.flush().unwrap();
        assert_eq!(sink.written(), 1);
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let parsed = TracedEvent::from_json(text.lines().next().unwrap(), &names()).unwrap();
        assert_eq!(parsed.now, 1);
    }

    #[test]
    fn write_errors_are_sticky() {
        let mut sink = JsonlSink::new(FailingWriter);
        let te = TracedEvent {
            seq: 0,
            now: 0,
            event: Event::FuncEnter { func: 0, depth: 1 },
        };
        sink.record(&te, &names());
        sink.record(&te, &names());
        assert_eq!(sink.written(), 0);
        assert!(sink.error().is_some());
        assert!(sink.finish().is_err());
    }

    #[test]
    fn shared_sink_errors_surface_on_flush_and_stick() {
        let sink = SharedJsonlSink::new(FailingWriter);
        sink.write_line("{\"a\":1}");
        assert!(!sink.has_error(), "error cannot fire before any spill");
        assert!(sink.flush().is_err());
        assert!(sink.has_error());
        assert!(sink.flush().is_err());
        assert!(sink.finish().is_err());
    }

    #[test]
    fn every_chunk_reaching_the_writer_ends_at_a_line_boundary() {
        // Push well past the spill threshold so mid-stream spills
        // happen, then verify no write ever split a line.
        let writer = ChunkWriter::default();
        let sink = SharedJsonlSink::new(writer.clone());
        let line = format!("{{\"pad\":\"{}\"}}", "x".repeat(1000));
        for _ in 0..200 {
            sink.write_line(&line);
        }
        sink.finish().unwrap();

        let chunks = writer.chunks.lock().unwrap();
        assert!(chunks.len() >= 2, "expected multiple spills");
        for chunk in chunks.iter() {
            assert_eq!(
                chunk.last(),
                Some(&b'\n'),
                "torn write: chunk ends mid-line"
            );
        }
        drop(chunks);
        assert_eq!(writer.contents().split(|&b| b == b'\n').count() - 1, 200);
    }

    #[test]
    fn dropping_the_last_handle_flushes_buffered_lines() {
        let writer = ChunkWriter::default();
        let sink = SharedJsonlSink::new(writer.clone());
        let handle = sink.clone();
        handle.write_line("{\"kept\":true}");
        drop(handle);
        // Still buffered: one live handle, below the spill threshold.
        assert_eq!(writer.contents().len(), 0);
        drop(sink);
        let text = String::from_utf8(writer.contents()).unwrap();
        assert_eq!(text, "{\"kept\":true}\n");
        assert!(*writer.flushes.lock().unwrap() >= 1);
    }
}
