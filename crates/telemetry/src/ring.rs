//! Fixed-capacity event ring with overwrite-oldest semantics.

use crate::event::{Event, TracedEvent};
use std::collections::VecDeque;

/// A bounded buffer of [`TracedEvent`]s. When full, pushing evicts the
/// oldest event and bumps the dropped counter; sequence numbers keep
/// counting, so consumers can tell exactly where the gap is.
#[derive(Debug, Clone)]
pub struct EventRing {
    cap: usize,
    buf: VecDeque<TracedEvent>,
    next_seq: u64,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.max(1);
        EventRing {
            cap,
            buf: VecDeque::with_capacity(cap),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Record `event` at decicycle time `now`; returns its sequence
    /// number. Evicts the oldest event when full.
    pub fn push(&mut self, now: u64, event: Event) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TracedEvent { seq, now, event });
        seq
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TracedEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted to make room (total pushed = `len() + dropped()`).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> Event {
        Event::InputRequest { index: i, bytes: 0 }
    }

    #[test]
    fn fills_then_wraps_dropping_oldest() {
        let mut r = EventRing::new(4);
        for i in 0..4 {
            r.push(i, ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);

        // Two more pushes evict the two oldest.
        r.push(4, ev(4));
        r.push(5, ev(5));
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.total_pushed(), 6);

        let seqs: Vec<u64> = r.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5], "oldest first, gap before seq 2");
    }

    #[test]
    fn sequence_numbers_survive_eviction() {
        let mut r = EventRing::new(2);
        for i in 0..100 {
            let seq = r.push(i, ev(i));
            assert_eq!(seq, i);
        }
        assert_eq!(r.dropped(), 98);
        let seqs: Vec<u64> = r.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![98, 99]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = EventRing::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(0, ev(0));
        r.push(1, ev(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
