//! Hierarchical spans: session → run → function-call → guard-check,
//! with cycle-accurate self/child time.
//!
//! The flat [`Profiler`](crate::Profiler) attributes cycles by hooking
//! **every** charge the VM makes — exact per-category data, but a
//! virtual call per executed instruction (the old tracer's 1.29x
//! overhead). The span recorder instead derives timing purely from the
//! decicycle clock carried on function enter/exit events: at each
//! boundary, the interval since the previous boundary is self time of
//! the span on top of the stack. The cost is proportional to the call
//! count, not the instruction count, and the attribution is still
//! exact — the VM's clock is deterministic and every boundary carries
//! it.
//!
//! Accounting invariant: `run_total == run_self + Σ top-level call
//! totals`, and for every function `total == self + child`. Frames
//! still open when a run ends (a fault unwound them) are closed at the
//! fault clock, so the victim function's partial frame is attributed —
//! exactly what incident forensics wants.

/// Aggregated span statistics for one function across a session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed (or fault-unwound) activations.
    pub calls: u64,
    /// Decicycles spent in the function itself.
    pub self_decicycles: u64,
    /// Decicycles spent in the function and everything it called.
    pub total_decicycles: u64,
    /// Guard-word checks observed in this function's epilogues.
    pub guard_checks: u64,
    /// Canary checks observed in this function's epilogues.
    pub canary_checks: u64,
}

impl SpanStats {
    /// Decicycles attributed to callees.
    pub fn child_decicycles(&self) -> u64 {
        self.total_decicycles - self.self_decicycles
    }
}

/// One open function-call span.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    func: u32,
    entered: u64,
    child: u64,
}

/// Session-level aggregates over completed runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Runs completed.
    pub runs: u64,
    /// Decicycles across all runs.
    pub total_decicycles: u64,
    /// Decicycles spent outside any function (VM prologue, top-level
    /// dispatch).
    pub vm_self_decicycles: u64,
}

/// The span recorder: an open-span stack plus per-function aggregates.
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    stack: Vec<OpenSpan>,
    /// Indexed by function id (sized by `set_function_count`).
    aggs: Vec<SpanStats>,
    /// Child time already attributed to the run span itself.
    run_child: u64,
    session: SessionStats,
}

impl SpanRecorder {
    /// A recorder with no functions registered yet.
    pub fn new() -> SpanRecorder {
        SpanRecorder::default()
    }

    /// Size the per-function table (called once per module).
    pub fn set_function_count(&mut self, n: usize) {
        if self.aggs.len() < n {
            self.aggs.resize(n, SpanStats::default());
        }
    }

    /// A frame for `func` was pushed at decicycle `now`.
    #[inline]
    pub fn enter(&mut self, func: u32, now: u64) {
        self.stack.push(OpenSpan {
            func,
            entered: now,
            child: 0,
        });
    }

    /// The top frame returned at decicycle `now`.
    #[inline]
    pub fn exit(&mut self, now: u64) {
        if let Some(span) = self.stack.pop() {
            self.close(span, now);
        }
    }

    /// A guard or canary check ran in `func`'s epilogue.
    #[inline]
    pub fn guard_check(&mut self, func: u32, canary: bool) {
        if let Some(agg) = self.aggs.get_mut(func as usize) {
            if canary {
                agg.canary_checks += 1;
            } else {
                agg.guard_checks += 1;
            }
        }
    }

    /// The run ended at decicycle `now` (total charged decicycles).
    /// Unwinds any frames a fault left open, then folds the run into
    /// the session aggregates.
    pub fn run_end(&mut self, now: u64) {
        while let Some(span) = self.stack.pop() {
            self.close(span, now);
        }
        self.session.runs += 1;
        self.session.total_decicycles += now;
        self.session.vm_self_decicycles += now - self.run_child;
        self.run_child = 0;
    }

    fn close(&mut self, span: OpenSpan, now: u64) {
        let total = now.saturating_sub(span.entered);
        let this_self = total.saturating_sub(span.child);
        if let Some(agg) = self.aggs.get_mut(span.func as usize) {
            agg.calls += 1;
            agg.self_decicycles += this_self;
            agg.total_decicycles += total;
        }
        match self.stack.last_mut() {
            Some(parent) => parent.child += total,
            None => self.run_child += total,
        }
    }

    /// Per-function aggregates, indexed by function id.
    pub fn stats(&self) -> &[SpanStats] {
        &self.aggs
    }

    /// Session aggregates over completed runs.
    pub fn session(&self) -> &SessionStats {
        &self.session
    }

    /// Frames currently open, outermost first (non-empty only while a
    /// run is in flight or after a fault before `run_end`).
    pub fn open_funcs(&self) -> Vec<u32> {
        self.stack.iter().map(|s| s.func).collect()
    }

    /// The innermost open frame — the victim function when a fault
    /// just fired.
    pub fn innermost_open(&self) -> Option<u32> {
        self.stack.last().map(|s| s.func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_and_child_time_split_exactly() {
        let mut sp = SpanRecorder::new();
        sp.set_function_count(2);
        // main enters at 10, calls leaf [20, 50), main exits at 80.
        sp.enter(0, 10);
        sp.enter(1, 20);
        sp.exit(50);
        sp.exit(80);
        sp.run_end(90);

        let main = &sp.stats()[0];
        assert_eq!(main.calls, 1);
        assert_eq!(main.total_decicycles, 70);
        assert_eq!(main.self_decicycles, 40); // 70 total - 30 in leaf
        assert_eq!(main.child_decicycles(), 30);

        let leaf = &sp.stats()[1];
        assert_eq!(leaf.total_decicycles, 30);
        assert_eq!(leaf.self_decicycles, 30);

        // Run span: 90 total, 20 outside any function (10 before main,
        // 10 after).
        assert_eq!(sp.session().runs, 1);
        assert_eq!(sp.session().total_decicycles, 90);
        assert_eq!(sp.session().vm_self_decicycles, 20);
    }

    #[test]
    fn fault_unwinds_open_frames_to_the_fault_clock() {
        let mut sp = SpanRecorder::new();
        sp.set_function_count(2);
        sp.enter(0, 0);
        sp.enter(1, 30);
        assert_eq!(sp.innermost_open(), Some(1));
        assert_eq!(sp.open_funcs(), vec![0, 1]);
        // Fault at 100: neither frame saw an exit.
        sp.run_end(100);
        assert_eq!(sp.stats()[1].total_decicycles, 70);
        assert_eq!(sp.stats()[0].total_decicycles, 100);
        assert_eq!(sp.stats()[0].self_decicycles, 30);
        assert_eq!(sp.session().vm_self_decicycles, 0);
        assert_eq!(sp.innermost_open(), None);
    }

    #[test]
    fn recursion_attributes_each_activation() {
        let mut sp = SpanRecorder::new();
        sp.set_function_count(1);
        sp.enter(0, 0);
        sp.enter(0, 10);
        sp.exit(20);
        sp.exit(40);
        sp.run_end(40);
        let f = &sp.stats()[0];
        assert_eq!(f.calls, 2);
        // Outer total 40 (10 of it in the inner activation), inner 10.
        assert_eq!(f.total_decicycles, 50);
        assert_eq!(f.self_decicycles, 40);
    }

    #[test]
    fn guard_checks_count_per_function() {
        let mut sp = SpanRecorder::new();
        sp.set_function_count(1);
        sp.guard_check(0, false);
        sp.guard_check(0, false);
        sp.guard_check(0, true);
        assert_eq!(sp.stats()[0].guard_checks, 2);
        assert_eq!(sp.stats()[0].canary_checks, 1);
    }

    #[test]
    fn multiple_runs_accumulate_into_the_session() {
        let mut sp = SpanRecorder::new();
        sp.set_function_count(1);
        for _ in 0..3 {
            sp.enter(0, 5);
            sp.exit(25);
            sp.run_end(30);
        }
        assert_eq!(sp.session().runs, 3);
        assert_eq!(sp.session().total_decicycles, 90);
        assert_eq!(sp.session().vm_self_decicycles, 30);
        assert_eq!(sp.stats()[0].calls, 3);
        assert_eq!(sp.stats()[0].total_decicycles, 60);
    }
}
