//! Observability for the Smokestack VM, built around an always-on
//! **flight recorder**.
//!
//! The paper's evaluation is observability end to end — §V-A attributes
//! hardened-build cycles to RNG latency and instrumentation work with
//! OProfile, and §IV argues security from the *uniformity* of the layout
//! draws. This crate is the in-simulation analog of that tooling:
//!
//! * [`FlightRecorder`] / [`SharedRecorder`] — the always-on layer. A
//!   bounded ring of compact 32-byte [`CompactRecord`]s (no allocation
//!   or formatting on the hot path), hierarchical spans
//!   (session → run → function-call → guard-check) with cycle-accurate
//!   self/child time ([`SpanRecorder`]), and fixed-slot statistics
//!   materialized into names only at drain time. It declines the
//!   per-charge hook ([`Tracer::wants_cycles`]), so the VM's
//!   per-instruction path is untouched.
//! * [`IncidentReport`] — fault forensics: on any fault or guard trip
//!   the recorder window drains into a structured, schema-versioned
//!   JSON report (scheme, layout draw, frame map of the victim
//!   function, faulting access with segment+offset, last N events),
//!   replayable via the seed protocol.
//! * [`StreamingHistogram`] — log-bucketed with linear sub-buckets:
//!   streaming p50/p95/p99/p999 within ~3%, mergeable across threads
//!   with bit-identical fold-order-independent results.
//! * [`MetricsRegistry`] — counters, gauges, histograms, and
//!   per-function permutation-index frequency tables with a
//!   chi-squared uniformity statistic; [`render_prometheus`] exposes a
//!   registry in Prometheus text format.
//! * [`Collector`] / [`Profiler`] — the opt-in *deep* profiler: hooks
//!   every cycle charge for exact per-category per-function
//!   attribution and collapsed-stack flamegraph lines. Costs ~1.3x;
//!   use the recorder unless you need category splits.
//!
//! The VM talks to all of this through the [`Tracer`] trait. The default
//! is no tracer at all (`None` on `VmConfig`), and every emit site in the
//! VM is guarded by a cheap `is-some` check, so the disabled path costs
//! nothing measurable.
//!
//! Everything here is dependency-free by design (hand-rolled JSON, no
//! serde): the workspace builds in registry-less environments.

pub mod collector;
pub mod event;
pub mod histogram;
pub mod incident;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod prometheus;
pub mod record;
pub mod recorder;
pub mod ring;
pub mod sink;
pub mod spans;

pub use collector::{Collector, CollectorConfig, SharedCollector};
pub use event::{Event, GuardKind, TracedEvent};
pub use histogram::StreamingHistogram;
pub use incident::{FaultAccess, FrameSlot, IncidentReport, INCIDENT_SCHEMA};
pub use metrics::{chi_squared_uniform, FreqTable, Histogram, MetricsRegistry};
pub use profile::{FunctionCycles, Profiler};
pub use prometheus::render_prometheus;
pub use record::{CompactRecord, RecordKind, RecordRing};
pub use recorder::{FlightRecorder, RecorderConfig, RecorderStats, SharedRecorder};
pub use ring::EventRing;
pub use sink::{EventSink, JsonlSink, MemorySink, SharedJsonlSink};
pub use spans::{SessionStats, SpanRecorder, SpanStats};

/// The cycle-accounting categories of the VM's `CycleBreakdown`,
/// mirrored here so the VM can report charges without a dependency
/// cycle (telemetry must not depend on the VM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleCategory {
    /// Entropy draws (`stack_rng`).
    Rng,
    /// Loads, stores, address formation.
    Mem,
    /// Arithmetic/logic and intrinsic bookkeeping.
    Alu,
    /// Branches, calls, returns.
    Control,
    /// `get_input` / `print_*` style I/O.
    Io,
    /// Bulk memory intrinsics (memcpy/memset/strlen/...).
    Bulk,
}

impl CycleCategory {
    /// Every category, in `CycleBreakdown` field order.
    pub const ALL: [CycleCategory; 6] = [
        CycleCategory::Rng,
        CycleCategory::Mem,
        CycleCategory::Alu,
        CycleCategory::Control,
        CycleCategory::Io,
        CycleCategory::Bulk,
    ];

    /// Stable index into per-function cycle arrays.
    pub fn index(self) -> usize {
        match self {
            CycleCategory::Rng => 0,
            CycleCategory::Mem => 1,
            CycleCategory::Alu => 2,
            CycleCategory::Control => 3,
            CycleCategory::Io => 4,
            CycleCategory::Bulk => 5,
        }
    }

    /// Short label used in JSON dumps and reports.
    pub fn name(self) -> &'static str {
        match self {
            CycleCategory::Rng => "rng",
            CycleCategory::Mem => "mem",
            CycleCategory::Alu => "alu",
            CycleCategory::Control => "control",
            CycleCategory::Io => "io",
            CycleCategory::Bulk => "bulk",
        }
    }
}

/// Hook the VM calls while executing. All methods default to no-ops so
/// custom tracers override only what they need.
///
/// Contract with the VM:
/// * `on_functions` is called once, before execution, with the module's
///   function names; events refer to functions by index into that slice.
/// * `on_event` receives the current decicycle clock and the event.
/// * `on_cycles` is called for **every** decicycle charge the VM makes,
///   tagged with its category; summing all charges reproduces the run's
///   `decicycles` exactly.
/// * `flat_profile` is called once when the run ends; return the
///   per-function attribution if this tracer maintains one.
pub trait Tracer {
    /// Module function names; events use indices into this slice.
    fn on_functions(&mut self, _names: &[String]) {}

    /// A structured event at decicycle time `_now`.
    fn on_event(&mut self, _now: u64, _ev: &Event) {}

    /// A cycle charge of `_decicycles` in category `_cat`.
    fn on_cycles(&mut self, _cat: CycleCategory, _decicycles: u64) {}

    /// Whether this tracer needs the per-charge [`Tracer::on_cycles`]
    /// hook at all. The VM caches this once at construction: a tracer
    /// that returns `false` (like the
    /// [`FlightRecorder`](crate::FlightRecorder)) costs nothing on the
    /// per-instruction charge path — `charge()` stays a plain integer
    /// add. Defaults to `true` (the deep-profiling
    /// [`Collector`](crate::Collector) needs every charge).
    fn wants_cycles(&self) -> bool {
        true
    }

    /// Per-function cycle attribution, if maintained.
    fn flat_profile(&self) -> Option<Vec<FunctionCycles>> {
        None
    }
}

/// A tracer that ignores everything (useful for overhead measurements
/// of the *enabled-but-empty* path, as opposed to `None` = disabled).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {}
