//! Observability for the Smokestack VM: structured event tracing, a
//! metrics registry, and a per-function flat profiler.
//!
//! The paper's evaluation is observability end to end — §V-A attributes
//! hardened-build cycles to RNG latency and instrumentation work with
//! OProfile, and §IV argues security from the *uniformity* of the layout
//! draws. This crate is the in-simulation analog of that tooling:
//!
//! * [`Event`] / [`EventRing`] — a fixed-capacity ring of typed events
//!   (function entry/exit, `stack_rng` draws, P-BOX index selections,
//!   guard-word checks, faults, attacker input requests) with
//!   overwrite-oldest semantics and a dropped-event counter.
//! * [`MetricsRegistry`] — counters, gauges, log₂-bucketed histograms,
//!   and per-function permutation-index frequency tables with a
//!   chi-squared uniformity statistic.
//! * [`Profiler`] — attributes every cycle the VM charges to the
//!   function executing it, and exports collapsed-stack lines consumable
//!   by flamegraph tooling.
//!
//! The VM talks to all of this through the [`Tracer`] trait. The default
//! is no tracer at all (`None` on `VmConfig`), and every emit site in the
//! VM is guarded by a cheap `is-some` check, so the disabled path costs
//! nothing measurable. [`Collector`] is the batteries-included `Tracer`
//! that feeds the ring, registry, and profiler at once;
//! [`SharedCollector`] wraps it in `Rc<RefCell<..>>` so the caller keeps
//! a handle while the VM owns the tracer box.
//!
//! Everything here is dependency-free by design (hand-rolled JSON, no
//! serde): the workspace builds in registry-less environments.

pub mod collector;
pub mod event;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod ring;
pub mod sink;

pub use collector::{Collector, CollectorConfig, SharedCollector};
pub use event::{Event, GuardKind, TracedEvent};
pub use metrics::{chi_squared_uniform, FreqTable, Histogram, MetricsRegistry};
pub use profile::{FunctionCycles, Profiler};
pub use ring::EventRing;
pub use sink::{EventSink, JsonlSink, MemorySink, SharedJsonlSink};

/// The cycle-accounting categories of the VM's `CycleBreakdown`,
/// mirrored here so the VM can report charges without a dependency
/// cycle (telemetry must not depend on the VM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleCategory {
    /// Entropy draws (`stack_rng`).
    Rng,
    /// Loads, stores, address formation.
    Mem,
    /// Arithmetic/logic and intrinsic bookkeeping.
    Alu,
    /// Branches, calls, returns.
    Control,
    /// `get_input` / `print_*` style I/O.
    Io,
    /// Bulk memory intrinsics (memcpy/memset/strlen/...).
    Bulk,
}

impl CycleCategory {
    /// Every category, in `CycleBreakdown` field order.
    pub const ALL: [CycleCategory; 6] = [
        CycleCategory::Rng,
        CycleCategory::Mem,
        CycleCategory::Alu,
        CycleCategory::Control,
        CycleCategory::Io,
        CycleCategory::Bulk,
    ];

    /// Stable index into per-function cycle arrays.
    pub fn index(self) -> usize {
        match self {
            CycleCategory::Rng => 0,
            CycleCategory::Mem => 1,
            CycleCategory::Alu => 2,
            CycleCategory::Control => 3,
            CycleCategory::Io => 4,
            CycleCategory::Bulk => 5,
        }
    }

    /// Short label used in JSON dumps and reports.
    pub fn name(self) -> &'static str {
        match self {
            CycleCategory::Rng => "rng",
            CycleCategory::Mem => "mem",
            CycleCategory::Alu => "alu",
            CycleCategory::Control => "control",
            CycleCategory::Io => "io",
            CycleCategory::Bulk => "bulk",
        }
    }
}

/// Hook the VM calls while executing. All methods default to no-ops so
/// custom tracers override only what they need.
///
/// Contract with the VM:
/// * `on_functions` is called once, before execution, with the module's
///   function names; events refer to functions by index into that slice.
/// * `on_event` receives the current decicycle clock and the event.
/// * `on_cycles` is called for **every** decicycle charge the VM makes,
///   tagged with its category; summing all charges reproduces the run's
///   `decicycles` exactly.
/// * `flat_profile` is called once when the run ends; return the
///   per-function attribution if this tracer maintains one.
pub trait Tracer {
    /// Module function names; events use indices into this slice.
    fn on_functions(&mut self, _names: &[String]) {}

    /// A structured event at decicycle time `_now`.
    fn on_event(&mut self, _now: u64, _ev: &Event) {}

    /// A cycle charge of `_decicycles` in category `_cat`.
    fn on_cycles(&mut self, _cat: CycleCategory, _decicycles: u64) {}

    /// Per-function cycle attribution, if maintained.
    fn flat_profile(&self) -> Option<Vec<FunctionCycles>> {
        None
    }
}

/// A tracer that ignores everything (useful for overhead measurements
/// of the *enabled-but-empty* path, as opposed to `None` = disabled).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {}
