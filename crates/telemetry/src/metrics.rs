//! Counters, gauges, log₂ histograms, streaming percentile histograms,
//! and permutation-index frequency tables with a chi-squared
//! uniformity statistic.

use crate::histogram::StreamingHistogram;
use crate::json::push_json_str;
use std::collections::BTreeMap;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds exactly the value 0; bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b)`. 65 buckets cover the whole `u64` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for `value`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `b`.
    pub fn bucket_lo(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Inclusive upper bound of bucket `b`.
    pub fn bucket_hi(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts (index = bucket).
    pub fn counts(&self) -> &[u64; 65] {
        &self.counts
    }

    /// Compact JSON: only non-empty buckets, keyed by their lower bound.
    fn to_json(&self) -> String {
        let mut s = String::from("{\"count\":");
        s.push_str(&self.count.to_string());
        s.push_str(&format!(
            ",\"sum\":{},\"min\":{},\"max\":{},\"buckets\":{{",
            self.sum,
            self.min(),
            self.max
        ));
        let mut first = true;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\"{}\":{}", Self::bucket_lo(b), c));
        }
        s.push_str("}}");
        s
    }
}

/// Chi-squared statistic of `counts` against the uniform distribution
/// over its bins. Returns 0.0 for degenerate inputs (fewer than two
/// bins or no observations).
pub fn chi_squared_uniform(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if counts.len() < 2 || total == 0 {
        return 0.0;
    }
    let expected = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&o| {
            let d = o as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// Frequency table over small integer indices (P-BOX row selections).
/// Grows automatically to cover the largest index observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FreqTable {
    counts: Vec<u64>,
    total: u64,
}

impl FreqTable {
    /// An empty table.
    pub fn new() -> FreqTable {
        FreqTable::default()
    }

    /// Record one observation of `index`.
    pub fn observe(&mut self, index: u64) {
        let i = index as usize;
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.total += 1;
    }

    /// Per-index counts (index 0..).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Chi-squared uniformity statistic over the observed index range.
    pub fn chi_squared(&self) -> f64 {
        chi_squared_uniform(&self.counts)
    }

    fn to_json(&self) -> String {
        let counts: Vec<String> = self.counts.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"total\":{},\"chi_squared\":{:.3},\"counts\":[{}]}}",
            self.total,
            self.chi_squared(),
            counts.join(",")
        )
    }
}

/// Named counters, gauges, histograms, and frequency tables.
///
/// Names are dotted strings (`rng_draws.AES-10`, `pbox_index.server`);
/// `BTreeMap` keeps dumps deterministically ordered.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    streams: BTreeMap<String, StreamingHistogram>,
    freq_tables: BTreeMap<String, FreqTable>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `by` to counter `name`.
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.entry_counter(name) += by;
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Raise gauge `name` to `value` if larger (high-water mark).
    pub fn gauge_max(&mut self, name: &str, value: u64) {
        let g = self.gauges.entry(name.to_string()).or_insert(0);
        *g = (*g).max(value);
    }

    /// Record `value` into histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry_or_default(name).observe(value);
    }

    /// Record index `index` into frequency table `name`.
    pub fn observe_index(&mut self, name: &str, index: u64) {
        self.freq_tables.entry_or_default(name).observe(index);
    }

    /// Record `value` into streaming percentile histogram `name`.
    pub fn stream_observe(&mut self, name: &str, value: u64) {
        self.streams.entry_or_default(name).observe(value);
    }

    /// Merge a whole [`StreamingHistogram`] into slot `name` (how the
    /// flight recorder materializes its fixed-slot histograms at drain
    /// time).
    pub fn merge_stream(&mut self, name: &str, h: &StreamingHistogram) {
        self.streams.entry_or_default(name).merge(h);
    }

    /// Merge a whole [`FreqTable`] into slot `name`.
    pub fn merge_freq_table(&mut self, name: &str, table: &FreqTable) {
        let mine = self.freq_tables.entry_or_default(name);
        for (i, &c) in table.counts.iter().enumerate() {
            if i >= mine.counts.len() {
                mine.counts.resize(i + 1, 0);
            }
            mine.counts[i] += c;
        }
        mine.total += table.total;
    }

    /// Counter value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Streaming percentile histogram by name.
    pub fn stream(&self, name: &str) -> Option<&StreamingHistogram> {
        self.streams.get(name)
    }

    /// All streaming histograms, ordered by name.
    pub fn streams(&self) -> impl Iterator<Item = (&str, &StreamingHistogram)> {
        self.streams.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All counters, ordered by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, ordered by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All coarse histograms, ordered by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Frequency table by name.
    pub fn freq_table(&self, name: &str) -> Option<&FreqTable> {
        self.freq_tables.get(name)
    }

    /// All frequency tables, ordered by name.
    pub fn freq_tables(&self) -> impl Iterator<Item = (&str, &FreqTable)> {
        self.freq_tables.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Fold another registry into this one (counters add, gauges take
    /// the max, histograms and tables merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.entry_counter(k) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauge_max(k, v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry_or_default(k).merge(h);
        }
        for (k, h) in &other.streams {
            self.streams.entry_or_default(k).merge(h);
        }
        for (k, t) in &other.freq_tables {
            self.merge_freq_table(k, t);
        }
    }

    fn entry_counter(&mut self, name: &str) -> &mut u64 {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_string(), 0);
        }
        self.counters.get_mut(name).unwrap()
    }

    /// Dump the whole registry as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                s.push(',');
            }
            first = false;
            push_json_str(&mut s, k);
            s.push_str(&format!(":{v}"));
        }
        s.push_str("},\"gauges\":{");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                s.push(',');
            }
            first = false;
            push_json_str(&mut s, k);
            s.push_str(&format!(":{v}"));
        }
        s.push_str("},\"histograms\":{");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                s.push(',');
            }
            first = false;
            push_json_str(&mut s, k);
            s.push(':');
            s.push_str(&h.to_json());
        }
        s.push_str("},\"streams\":{");
        first = true;
        for (k, h) in &self.streams {
            if !first {
                s.push(',');
            }
            first = false;
            push_json_str(&mut s, k);
            s.push(':');
            s.push_str(&h.to_json());
        }
        s.push_str("},\"freq_tables\":{");
        first = true;
        for (k, t) in &self.freq_tables {
            if !first {
                s.push(',');
            }
            first = false;
            push_json_str(&mut s, k);
            s.push(':');
            s.push_str(&t.to_json());
        }
        s.push_str("}}");
        s
    }
}

/// `entry(..).or_default()` without the repeated `to_string`
/// boilerplate at call sites.
trait EntryOrDefault<V: Default> {
    fn entry_or_default(&mut self, name: &str) -> &mut V;
}

impl<V: Default> EntryOrDefault<V> for BTreeMap<String, V> {
    fn entry_or_default(&mut self, name: &str) -> &mut V {
        if !self.contains_key(name) {
            self.insert(name.to_string(), V::default());
        }
        self.get_mut(name).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Bucket 0 is exactly {0}; bucket b covers [2^(b-1), 2^b - 1].
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for b in 0..=64 {
            assert_eq!(Histogram::bucket_of(Histogram::bucket_lo(b)), b);
            assert_eq!(Histogram::bucket_of(Histogram::bucket_hi(b)), b);
        }
    }

    #[test]
    fn histogram_stats_and_merge() {
        let mut a = Histogram::new();
        for v in [0, 1, 5, 9] {
            a.observe(v);
        }
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 15);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 9);
        assert!((a.mean() - 3.75).abs() < 1e-12);

        let mut b = Histogram::new();
        b.observe(1 << 40);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), 1 << 40);
        assert_eq!(a.counts()[41], 1);
        // Merging an empty histogram is the identity.
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn chi_squared_basics() {
        // Perfectly uniform -> 0.
        assert_eq!(chi_squared_uniform(&[10, 10, 10, 10]), 0.0);
        // Degenerate inputs -> 0.
        assert_eq!(chi_squared_uniform(&[]), 0.0);
        assert_eq!(chi_squared_uniform(&[5]), 0.0);
        assert_eq!(chi_squared_uniform(&[0, 0]), 0.0);
        // All mass in one of two bins: statistic = total.
        assert!((chi_squared_uniform(&[40, 0]) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn freq_table_grows_and_scores() {
        let mut t = FreqTable::new();
        for i in 0..8u64 {
            for _ in 0..100 {
                t.observe(i);
            }
        }
        assert_eq!(t.total(), 800);
        assert_eq!(t.counts().len(), 8);
        assert_eq!(t.chi_squared(), 0.0);
        t.observe(15);
        assert_eq!(t.counts().len(), 16);
    }

    #[test]
    fn registry_round_trip() {
        let mut m = MetricsRegistry::new();
        m.inc("rng_draws.AES-10", 3);
        m.gauge_max("peak_rss", 100);
        m.gauge_max("peak_rss", 50);
        m.observe("frame_bytes", 48);
        m.observe_index("pbox_index.server", 2);
        assert_eq!(m.counter("rng_draws.AES-10"), 3);
        assert_eq!(m.gauge("peak_rss"), Some(100));
        assert_eq!(m.histogram("frame_bytes").unwrap().count(), 1);
        assert_eq!(m.freq_table("pbox_index.server").unwrap().total(), 1);

        let json = m.to_json();
        assert!(json.contains("\"rng_draws.AES-10\":3"));
        assert!(json.contains("\"peak_rss\":100"));
        assert!(json.contains("\"chi_squared\""));
        // The dump is itself a flat-ish JSON object; spot-check balance.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
    }

    #[test]
    fn registry_merge() {
        let mut a = MetricsRegistry::new();
        a.inc("x", 1);
        a.observe_index("t", 0);
        let mut b = MetricsRegistry::new();
        b.inc("x", 2);
        b.inc("y", 5);
        b.gauge_max("g", 9);
        b.observe("h", 7);
        b.observe_index("t", 3);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 5);
        assert_eq!(a.gauge("g"), Some(9));
        assert_eq!(a.histogram("h").unwrap().count(), 1);
        let t = a.freq_table("t").unwrap();
        assert_eq!(t.total(), 2);
        assert_eq!(t.counts(), &[1, 0, 0, 1]);
    }
}
