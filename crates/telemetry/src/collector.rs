//! The batteries-included tracer: ring + metrics + profiler in one.

use crate::event::{Event, GuardKind};
use crate::metrics::MetricsRegistry;
use crate::profile::{FunctionCycles, Profiler};
use crate::ring::EventRing;
use crate::sink::EventSink;
use crate::{CycleCategory, Tracer};
use std::cell::RefCell;
use std::rc::Rc;

/// What a [`Collector`] retains.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Ring capacity in events.
    pub ring_capacity: usize,
    /// Keep the event ring at all.
    pub trace: bool,
    /// Maintain the metrics registry.
    pub metrics: bool,
    /// Maintain the per-function profiler.
    pub profile: bool,
}

impl Default for CollectorConfig {
    fn default() -> CollectorConfig {
        CollectorConfig {
            ring_capacity: 4096,
            trace: true,
            metrics: true,
            profile: true,
        }
    }
}

/// A [`Tracer`] that feeds an [`EventRing`], a [`MetricsRegistry`], and
/// a [`Profiler`] simultaneously.
#[derive(Debug)]
pub struct Collector {
    cfg: CollectorConfig,
    names: Vec<String>,
    ring: EventRing,
    metrics: MetricsRegistry,
    profiler: Profiler,
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new(CollectorConfig::default())
    }
}

impl Collector {
    /// Build from a config.
    pub fn new(cfg: CollectorConfig) -> Collector {
        Collector {
            ring: EventRing::new(cfg.ring_capacity),
            cfg,
            names: Vec::new(),
            metrics: MetricsRegistry::new(),
            profiler: Profiler::new(),
        }
    }

    /// Function names registered by the VM.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The retained event trace.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The per-function profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Resolve a function name (for reports).
    pub fn func_name(&self, func: u32) -> String {
        self.names
            .get(func as usize)
            .cloned()
            .unwrap_or_else(|| format!("#{func}"))
    }

    /// Drain the retained events into `sink`, oldest first.
    pub fn drain_to(&self, sink: &mut dyn EventSink) {
        crate::sink::drain_ring(&self.ring, &self.names, sink);
    }

    /// Collapsed-stack lines for flamegraph tooling.
    pub fn collapsed_lines(&self) -> Vec<String> {
        self.profiler.collapsed_lines(&self.names)
    }

    fn update_metrics(&mut self, ev: &Event) {
        match ev {
            Event::FuncEnter { depth, .. } => {
                self.metrics.gauge_max("call_depth_max", *depth as u64);
            }
            Event::FuncExit { frame_bytes, .. } => {
                self.metrics.observe("frame_bytes", *frame_bytes);
            }
            Event::RngDraw {
                scheme,
                cost_decicycles,
            } => {
                self.metrics.inc(&format!("rng_draws.{scheme}"), 1);
                self.metrics
                    .observe("rng_cost_decicycles", *cost_decicycles);
            }
            Event::PboxSelect { func, index } => {
                let name = self.func_name(*func);
                self.metrics
                    .observe_index(&format!("pbox_index.{name}"), *index);
            }
            Event::GuardCheck { kind, passed, .. } => {
                let base = match kind {
                    GuardKind::Word => "guard_checks",
                    GuardKind::Canary => "canary_checks",
                };
                let suffix = if *passed { "passed" } else { "failed" };
                self.metrics.inc(&format!("{base}.{suffix}"), 1);
            }
            Event::Fault { .. } => {
                self.metrics.inc("faults", 1);
            }
            Event::InputRequest { bytes, .. } => {
                self.metrics.inc("input_requests", 1);
                self.metrics.observe("input_bytes", *bytes);
            }
            Event::RunEnd {
                peak_rss,
                decicycles,
            } => {
                self.metrics.inc("runs", 1);
                self.metrics.gauge_max("peak_rss", *peak_rss);
                self.metrics.gauge_set("decicycles", *decicycles);
            }
            Event::Alloca { size, .. } => {
                self.metrics.observe("alloca_bytes", *size);
            }
        }
    }
}

impl Tracer for Collector {
    fn on_functions(&mut self, names: &[String]) {
        self.names = names.to_vec();
    }

    fn on_event(&mut self, now: u64, ev: &Event) {
        if self.cfg.profile {
            match ev {
                Event::FuncEnter { func, .. } => self.profiler.enter(*func),
                Event::FuncExit { .. } => self.profiler.exit(),
                _ => {}
            }
        }
        if self.cfg.metrics {
            self.update_metrics(ev);
        }
        if self.cfg.trace {
            self.ring.push(now, ev.clone());
        }
    }

    fn on_cycles(&mut self, cat: CycleCategory, decicycles: u64) {
        if self.cfg.profile {
            self.profiler.charge(cat, decicycles);
        }
    }

    fn flat_profile(&self) -> Option<Vec<FunctionCycles>> {
        if self.cfg.profile {
            Some(self.profiler.flat_profile(&self.names))
        } else {
            None
        }
    }
}

/// Clonable handle around a [`Collector`] so the caller keeps access
/// while the VM owns the tracer box:
///
/// ```ignore
/// let shared = SharedCollector::default();
/// let cfg = VmConfig { tracer: Some(Box::new(shared.clone())), ..VmConfig::default() };
/// // ... run the VM ...
/// let json = shared.with(|c| c.metrics().to_json());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedCollector(Rc<RefCell<Collector>>);

impl SharedCollector {
    /// Build from a config.
    pub fn new(cfg: CollectorConfig) -> SharedCollector {
        SharedCollector(Rc::new(RefCell::new(Collector::new(cfg))))
    }

    /// Read access to the underlying collector.
    pub fn with<R>(&self, f: impl FnOnce(&Collector) -> R) -> R {
        f(&self.0.borrow())
    }
}

impl Tracer for SharedCollector {
    fn on_functions(&mut self, names: &[String]) {
        self.0.borrow_mut().on_functions(names);
    }

    fn on_event(&mut self, now: u64, ev: &Event) {
        self.0.borrow_mut().on_event(now, ev);
    }

    fn on_cycles(&mut self, cat: CycleCategory, decicycles: u64) {
        self.0.borrow_mut().on_cycles(cat, decicycles);
    }

    fn flat_profile(&self) -> Option<Vec<FunctionCycles>> {
        self.0.borrow().flat_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_routes_to_all_three_backends() {
        let mut c = Collector::default();
        c.on_functions(&["main".to_string(), "f".to_string()]);
        c.on_event(0, &Event::FuncEnter { func: 0, depth: 1 });
        c.on_cycles(CycleCategory::Alu, 10);
        c.on_event(
            3,
            &Event::RngDraw {
                scheme: "pseudo",
                cost_decicycles: 34,
            },
        );
        c.on_event(4, &Event::PboxSelect { func: 1, index: 2 });
        c.on_event(
            9,
            &Event::FuncExit {
                func: 0,
                frame_bytes: 64,
            },
        );
        assert_eq!(c.ring().len(), 4);
        assert_eq!(c.metrics().counter("rng_draws.pseudo"), 1);
        assert_eq!(c.metrics().freq_table("pbox_index.f").unwrap().total(), 1);
        let flat = c.flat_profile().unwrap();
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].name, "main");
        assert_eq!(flat[0].total(), 10);
    }

    #[test]
    fn disabled_facets_stay_empty() {
        let mut c = Collector::new(CollectorConfig {
            ring_capacity: 8,
            trace: false,
            metrics: false,
            profile: false,
        });
        c.on_functions(&["main".to_string()]);
        c.on_event(0, &Event::FuncEnter { func: 0, depth: 1 });
        c.on_cycles(CycleCategory::Alu, 10);
        assert!(c.ring().is_empty());
        assert_eq!(c.metrics().to_json(), MetricsRegistry::new().to_json());
        assert!(c.flat_profile().is_none());
    }

    #[test]
    fn shared_collector_is_observable_after_moving_into_a_box() {
        let shared = SharedCollector::default();
        let mut boxed: Box<dyn Tracer> = Box::new(shared.clone());
        boxed.on_functions(&["main".to_string()]);
        boxed.on_event(0, &Event::FuncEnter { func: 0, depth: 1 });
        boxed.on_cycles(CycleCategory::Control, 5);
        drop(boxed);
        assert_eq!(shared.with(|c| c.ring().len()), 1);
        assert_eq!(shared.with(|c| c.profiler().total_charged()), 5);
    }
}
