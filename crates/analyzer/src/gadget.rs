//! DOP gadget-surface enumeration.
//!
//! STEROIDS-style data-oriented programming compiles payloads out of
//! *dereference gadgets* (a load whose pointer operand the attacker can
//! steer) and *assignment gadgets* (a store through such a pointer),
//! entered through an unchecked overflow. This module enumerates all
//! three classes for a function:
//!
//! * a load whose pointer operand is memory-derived ([`Taint`]) is a
//!   dereference gadget;
//! * a store whose pointer operand is memory-derived is an assignment
//!   gadget;
//! * an unchecked write intrinsic whose destination is a stack slot
//!   with a dynamic offset or dynamic length is an overflow entry.
//!
//! Everything here is *surface*, not defect: a clean program can carry
//! gadgets (any pointer chase through an attacker-reachable buffer is
//! one). The report exists so the defender can see what a DOP payload
//! would have to work with, and how much of it slot pruning may touch.

use smokestack_telemetry::json::push_json_str;

use smokestack_ir::cfg::Cfg;
use smokestack_ir::{Function, Inst};

use crate::bounds::intrinsic_ranges;
use crate::escape::EscapeSummary;
use crate::liveness;
use crate::provenance::{Base, Resolution, Taint};

/// Which gadget class a site belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GadgetKind {
    /// Load through an attacker-steerable pointer.
    Deref,
    /// Store through an attacker-steerable pointer.
    Assign,
    /// Unchecked intrinsic write with dynamic destination or length.
    OverflowEntry,
}

impl GadgetKind {
    fn name(self) -> &'static str {
        match self {
            GadgetKind::Deref => "deref",
            GadgetKind::Assign => "assign",
            GadgetKind::OverflowEntry => "overflow-entry",
        }
    }
}

/// One gadget occurrence.
#[derive(Debug, Clone)]
pub struct GadgetSite {
    /// Gadget class.
    pub kind: GadgetKind,
    /// Basic block index.
    pub block: u32,
    /// Instruction index within the block.
    pub inst: usize,
    /// Stack slot involved (overflow target, or the slot a steered
    /// pointer still provably stays inside).
    pub slot: Option<String>,
}

/// Per-function DOP gadget surface.
#[derive(Debug, Clone)]
pub struct GadgetSurfaceReport {
    /// Function name.
    pub func: String,
    /// Dereference gadgets (attacker-steerable loads).
    pub deref_gadgets: Vec<GadgetSite>,
    /// Assignment gadgets (attacker-steerable stores).
    pub assign_gadgets: Vec<GadgetSite>,
    /// Overflow entries (unchecked dynamic writes into stack slots).
    pub overflow_entries: Vec<GadgetSite>,
    /// Total stack slots in the function.
    pub slots: usize,
    /// Names of slots classified provably non-attacker-reachable.
    pub safe_slots: Vec<String>,
    /// Stores no later load observes (frame dataflow slack).
    pub dead_stores: usize,
}

impl GadgetSurfaceReport {
    /// Enumerate the gadget surface of `f`.
    pub fn analyze(
        f: &Function,
        cfg: &Cfg,
        res: &Resolution,
        esc: &EscapeSummary,
        taint: &Taint,
    ) -> GadgetSurfaceReport {
        let safe = esc.safe_mask(res);
        let slot_name = |v| match res.value(v).base {
            Base::Slot { slot, .. } => Some(res.slots.get(slot).name.clone()),
            _ => None,
        };
        let mut report = GadgetSurfaceReport {
            func: f.name.clone(),
            deref_gadgets: Vec::new(),
            assign_gadgets: Vec::new(),
            overflow_entries: Vec::new(),
            slots: res.slots.len(),
            safe_slots: res
                .slots
                .slots
                .iter()
                .enumerate()
                .filter(|(i, _)| safe[*i])
                .map(|(_, s)| s.name.clone())
                .collect(),
            dead_stores: 0,
        };
        let pinned: Vec<bool> = safe.iter().map(|s| !*s).collect();
        report.dead_stores = liveness::dead_store_count(f, cfg, res, &pinned);
        for (bid, b) in f.iter_blocks() {
            for (i, inst) in b.insts.iter().enumerate() {
                match inst {
                    Inst::Load { ptr, .. } if taint.value(*ptr) => {
                        report.deref_gadgets.push(GadgetSite {
                            kind: GadgetKind::Deref,
                            block: bid.0,
                            inst: i,
                            slot: slot_name(*ptr),
                        });
                    }
                    Inst::Store { ptr, .. } if taint.value(*ptr) => {
                        report.assign_gadgets.push(GadgetSite {
                            kind: GadgetKind::Assign,
                            block: bid.0,
                            inst: i,
                            slot: slot_name(*ptr),
                        });
                    }
                    Inst::Call { callee, args, .. } => {
                        for range in intrinsic_ranges(callee, args) {
                            if !range.writes {
                                continue;
                            }
                            let Base::Slot { slot, offset } = res.value(range.ptr).base else {
                                continue;
                            };
                            let len_const = range.len.and_then(|l| res.const_of(l));
                            let dynamic_dst = offset.is_none()
                                || res.slots.get(slot).is_vla
                                || taint.value(range.ptr);
                            let dynamic_len = range.len.is_some() && len_const.is_none();
                            if dynamic_dst || dynamic_len {
                                report.overflow_entries.push(GadgetSite {
                                    kind: GadgetKind::OverflowEntry,
                                    block: bid.0,
                                    inst: i,
                                    slot: Some(res.slots.get(slot).name.clone()),
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        report
    }

    /// Total gadget sites of all classes.
    pub fn total(&self) -> usize {
        self.deref_gadgets.len() + self.assign_gadgets.len() + self.overflow_entries.len()
    }

    /// Render as indented text lines (empty string when there is no
    /// surface at all).
    pub fn render_text(&self) -> String {
        if self.total() == 0 && self.dead_stores == 0 {
            return String::new();
        }
        let mut out = format!(
            "{}: {} deref, {} assign, {} overflow-entry; {} of {} slots safe; {} dead stores\n",
            self.func,
            self.deref_gadgets.len(),
            self.assign_gadgets.len(),
            self.overflow_entries.len(),
            self.safe_slots.len(),
            self.slots,
            self.dead_stores,
        );
        for site in self
            .deref_gadgets
            .iter()
            .chain(&self.assign_gadgets)
            .chain(&self.overflow_entries)
        {
            out.push_str(&format!(
                "  {} at bb{} #{}{}\n",
                site.kind.name(),
                site.block,
                site.inst,
                match &site.slot {
                    Some(s) => format!(" (slot `{s}`)"),
                    None => String::new(),
                }
            ));
        }
        out
    }

    /// Append as a JSON object to `out`.
    pub fn push_json(&self, out: &mut String) {
        out.push_str("{\"func\":");
        push_json_str(out, &self.func);
        out.push_str(&format!(
            ",\"slots\":{},\"dead_stores\":{},\"safe_slots\":[",
            self.slots, self.dead_stores
        ));
        for (i, s) in self.safe_slots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(out, s);
        }
        out.push(']');
        for (key, sites) in [
            ("deref_gadgets", &self.deref_gadgets),
            ("assign_gadgets", &self.assign_gadgets),
            ("overflow_entries", &self.overflow_entries),
        ] {
            out.push_str(&format!(",\"{key}\":["));
            for (i, site) in sites.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"block\":{},\"inst\":{}",
                    site.block, site.inst
                ));
                if let Some(s) = &site.slot {
                    out.push_str(",\"slot\":");
                    push_json_str(out, s);
                }
                out.push('}');
            }
            out.push(']');
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokestack_ir::{Builder, Intrinsic, Module, Type, Value};

    fn surface(f: &Function, m: &Module) -> GadgetSurfaceReport {
        let cfg = Cfg::compute(f);
        let res = Resolution::compute(f);
        let esc = EscapeSummary::analyze(f, &res);
        let safe = esc.safe_mask(&res);
        let taint = Taint::compute(f, m, &res, &safe);
        GadgetSurfaceReport::analyze(f, &cfg, &res, &esc, &taint)
    }

    #[test]
    fn pointer_chase_through_input_buffer_is_deref_gadget() {
        // get_input(buf); p = *(long*)buf; v = *p. Loading `p` only
        // reads attacker data; dereferencing it is the gadget.
        let mut f = Function::new("f", vec![], Type::I64);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I8, 16), "buf");
        b.call_intrinsic(Intrinsic::GetInput, vec![buf.into(), Value::i64(16)]);
        let p = b.load(Type::Ptr, buf.into());
        let v = b.load(Type::I64, Value::Reg(p));
        b.ret(Some(v.into()));
        let m = Module::new();
        let rep = surface(&f, &m);
        assert_eq!(rep.deref_gadgets.len(), 1);
        assert!(rep.assign_gadgets.is_empty());
    }

    #[test]
    fn store_through_loaded_pointer_is_assign_gadget() {
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I8, 16), "buf");
        b.call_intrinsic(Intrinsic::GetInput, vec![buf.into(), Value::i64(16)]);
        let p = b.load(Type::Ptr, buf.into());
        b.store(Type::I64, Value::i64(0), Value::Reg(p));
        b.ret(None);
        let m = Module::new();
        let rep = surface(&f, &m);
        assert_eq!(rep.assign_gadgets.len(), 1);
    }

    #[test]
    fn dynamic_length_write_is_overflow_entry() {
        let mut f = Function::new("f", vec![Type::I64], Type::Void);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I8, 16), "buf");
        b.call_intrinsic(
            Intrinsic::GetInput,
            vec![buf.into(), Value::Reg(smokestack_ir::RegId(0))],
        );
        b.ret(None);
        let m = Module::new();
        let rep = surface(&f, &m);
        assert_eq!(rep.overflow_entries.len(), 1);
        assert_eq!(rep.overflow_entries[0].slot.as_deref(), Some("buf"));
    }

    #[test]
    fn clean_spill_reload_has_no_surface() {
        // The minic parameter-spill shape: store arg to slot, reload.
        let mut f = Function::new("f", vec![Type::Ptr], Type::I64);
        let mut b = Builder::new(&mut f);
        let p = b.alloca(Type::Ptr, "p");
        b.store(Type::Ptr, Value::Reg(smokestack_ir::RegId(0)), p.into());
        let pv = b.load(Type::Ptr, p.into());
        let v = b.load(Type::I64, Value::Reg(pv));
        b.ret(Some(v.into()));
        let m = Module::new();
        let rep = surface(&f, &m);
        assert_eq!(rep.total(), 0, "spilled-parameter reload must stay clean");
        assert_eq!(rep.safe_slots, vec!["p".to_string()]);
    }
}
