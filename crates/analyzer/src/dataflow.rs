//! A generic worklist dataflow solver over [`smokestack_ir::cfg::Cfg`].
//!
//! Analyses implement [`DataflowAnalysis`]: a lattice of per-block states
//! (`join` is the lattice join, `transfer_inst`/`transfer_term` the
//! transfer functions) plus a [`Direction`]. The solver iterates a
//! worklist seeded in reverse postorder (postorder for backward
//! analyses) until the states reach a fixpoint.
//!
//! States are per-block: the solver stores the state at block entry and
//! computes the exit state by running the transfer functions over the
//! block body. For a backward analysis "entry" means the state at the
//! *end* of the block (flowing in from successors) and "exit" the state
//! at the top.

use std::collections::VecDeque;

use smokestack_ir::cfg::Cfg;
use smokestack_ir::{BlockId, Function, Inst, Terminator};

/// Direction a dataflow analysis propagates facts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors (e.g. reaching
    /// definitions, may-be-uninitialized).
    Forward,
    /// Facts flow from successors to predecessors (e.g. liveness).
    Backward,
}

/// A dataflow analysis: a join-semilattice of states plus transfer
/// functions.
pub trait DataflowAnalysis {
    /// The abstract state attached to each program point.
    type State: Clone + PartialEq;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// State at the boundary: function entry for forward analyses, every
    /// exit (`ret`/`unreachable`) for backward ones.
    fn boundary_state(&self, f: &Function) -> Self::State;

    /// Initial (bottom) state for all other blocks.
    fn init_state(&self, f: &Function) -> Self::State;

    /// Join `other` into `into`; return `true` if `into` changed.
    fn join(&self, into: &mut Self::State, other: &Self::State) -> bool;

    /// Apply one instruction's effect to the state. For backward analyses
    /// instructions are visited in reverse order within the block.
    fn transfer_inst(&self, state: &mut Self::State, bid: BlockId, idx: usize, inst: &Inst);

    /// Apply the terminator's effect. Defaults to a no-op.
    fn transfer_term(&self, _state: &mut Self::State, _bid: BlockId, _term: &Terminator) {}
}

/// Fixpoint solution: the state at each block's entry and exit, in the
/// direction of the analysis (for backward analyses `entry` is the state
/// at the block *end*).
#[derive(Debug, Clone)]
pub struct BlockStates<S> {
    /// State flowing into each block (index = `BlockId.0`).
    pub entry: Vec<S>,
    /// State after applying the block's transfer functions.
    pub exit: Vec<S>,
}

impl<S> BlockStates<S> {
    /// State at the in-edge of `b`.
    pub fn entry(&self, b: BlockId) -> &S {
        &self.entry[b.0 as usize]
    }

    /// State at the out-edge of `b`.
    pub fn exit(&self, b: BlockId) -> &S {
        &self.exit[b.0 as usize]
    }
}

/// Run `analysis` over `f` to a fixpoint.
pub fn solve<A: DataflowAnalysis>(f: &Function, cfg: &Cfg, analysis: &A) -> BlockStates<A::State> {
    let n = cfg.len();
    let dir = analysis.direction();
    let mut entry: Vec<A::State> = (0..n).map(|_| analysis.init_state(f)).collect();
    let mut exit: Vec<A::State> = (0..n).map(|_| analysis.init_state(f)).collect();

    // Boundary blocks: the entry block (forward) or every block whose
    // terminator leaves the function (backward).
    let boundary = analysis.boundary_state(f);
    let mut order = cfg.reverse_postorder();
    match dir {
        Direction::Forward => {
            if n > 0 {
                entry[0] = boundary;
            }
        }
        Direction::Backward => {
            order.reverse(); // postorder: visit consumers before producers
            for (bid, b) in f.iter_blocks() {
                if matches!(b.term, Terminator::Ret(_) | Terminator::Unreachable) {
                    entry[bid.0 as usize] = boundary.clone();
                }
            }
        }
    }

    let mut on_list = vec![false; n];
    let mut worklist: VecDeque<BlockId> = VecDeque::with_capacity(order.len());
    for b in order {
        worklist.push_back(b);
        on_list[b.0 as usize] = true;
    }

    while let Some(b) = worklist.pop_front() {
        on_list[b.0 as usize] = false;
        let bi = b.0 as usize;

        // Merge incoming states from the relevant neighbors.
        let inputs = match dir {
            Direction::Forward => cfg.preds(b),
            Direction::Backward => cfg.succs(b),
        };
        for &p in inputs {
            let other = exit[p.0 as usize].clone();
            analysis.join(&mut entry[bi], &other);
        }

        // Run the block's transfer functions.
        let mut state = entry[bi].clone();
        let block = f.block(b);
        match dir {
            Direction::Forward => {
                for (i, inst) in block.insts.iter().enumerate() {
                    analysis.transfer_inst(&mut state, b, i, inst);
                }
                analysis.transfer_term(&mut state, b, &block.term);
            }
            Direction::Backward => {
                analysis.transfer_term(&mut state, b, &block.term);
                for (i, inst) in block.insts.iter().enumerate().rev() {
                    analysis.transfer_inst(&mut state, b, i, inst);
                }
            }
        }

        if state != exit[bi] {
            exit[bi] = state;
            let outputs = match dir {
                Direction::Forward => cfg.succs(b),
                Direction::Backward => cfg.preds(b),
            };
            for &s in outputs {
                if !on_list[s.0 as usize] {
                    on_list[s.0 as usize] = true;
                    worklist.push_back(s);
                }
            }
        }
    }

    BlockStates { entry, exit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokestack_ir::{Builder, Type, Value};

    /// Forward "reached block count" analysis: state = number of
    /// instructions seen on some path (max-join). Checks the solver
    /// terminates on loops and respects direction.
    struct CountInsts;

    impl DataflowAnalysis for CountInsts {
        type State = u64;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary_state(&self, _f: &Function) -> u64 {
            0
        }
        fn init_state(&self, _f: &Function) -> u64 {
            0
        }
        fn join(&self, into: &mut u64, other: &u64) -> bool {
            if *other > *into {
                *into = *other;
                true
            } else {
                false
            }
        }
        fn transfer_inst(&self, state: &mut u64, _b: BlockId, _i: usize, _inst: &Inst) {
            *state += 1;
        }
    }

    #[test]
    fn forward_fixpoint_on_diamond() {
        let mut f = Function::new("d", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let x = b.alloca(Type::I64, "x");
        let l = b.new_block();
        let r = b.new_block();
        let j = b.new_block();
        b.cond_br(Value::i8(1), l, r);
        b.switch_to(l);
        b.store(Type::I64, Value::i64(1), x.into());
        b.br(j);
        b.switch_to(r);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        let cfg = Cfg::compute(&f);
        let states = solve(&f, &cfg, &CountInsts);
        // Join block sees max(entry+1 store, entry alone) = 2 insts.
        assert_eq!(*states.entry(BlockId(3)), 2);
    }

    /// Backward analysis marking blocks that can reach a `ret`.
    struct ReachesExit;

    impl DataflowAnalysis for ReachesExit {
        type State = bool;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn boundary_state(&self, _f: &Function) -> bool {
            true
        }
        fn init_state(&self, _f: &Function) -> bool {
            false
        }
        fn join(&self, into: &mut bool, other: &bool) -> bool {
            let old = *into;
            *into = *into || *other;
            *into != old
        }
        fn transfer_inst(&self, _state: &mut bool, _b: BlockId, _i: usize, _inst: &Inst) {}
    }

    #[test]
    fn backward_reaches_exit() {
        // entry -> loop -> loop (infinite), entry -> out -> ret
        let mut f = Function::new("l", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let looped = b.new_block();
        let out = b.new_block();
        b.cond_br(Value::i8(1), looped, out);
        b.switch_to(looped);
        b.br(looped);
        b.switch_to(out);
        b.ret(None);
        let cfg = Cfg::compute(&f);
        let states = solve(&f, &cfg, &ReachesExit);
        assert!(*states.exit(BlockId(0)));
        assert!(*states.entry(BlockId(2)));
        // The self-loop never reaches an exit.
        assert!(!*states.entry(BlockId(1)));
    }
}
