//! Interprocedural gadget-chain reachability.
//!
//! The per-function gadget surface ([`crate::gadget`]) answers "what is
//! here"; this pass answers the STEROIDS question: starting from one
//! *overflow entry*, which deref/assign gadgets anywhere in the call
//! graph can an attacker-steered pointer actually reach, and what does
//! the corrupting write have to look like?
//!
//! A chain is:
//!
//! * an **entry** — an unchecked input write into a stack slot (dynamic
//!   length, dynamic destination, or constant capacity exceeding the
//!   slot), either directly in a function or *lifted* from a callee
//!   that performs an unbounded input write through a passed slot
//!   address ([`crate::interproc`] summaries);
//! * the **steered slots** — everything the overflow can corrupt given
//!   the VM's baseline layout: same-frame slots declared before the
//!   entry slot (they sit at higher addresses, the sweep direction) and
//!   every slot of every transitive caller frame (caller frames sit
//!   above callee frames);
//! * the **reached gadgets** — loads/stores (or intrinsic accesses)
//!   through *computed* pointers whose value chain reads one of the
//!   steered slots, in the entry function or any transitive caller
//!   (with one level of parameter mapping into their callees);
//! * per gadget, the **enabling conditions** — comparisons of steered
//!   slot words against constants that must hold for control flow to
//!   reach the gadget, recovered precisely enough that the synthesizer
//!   can schedule satisfying values.
//!
//! Everything is ordered by (function, block, instruction) and rendered
//! through the hand-rolled JSON helpers, so reports are bit-identical
//! across runs.

use std::collections::HashSet;

use smokestack_telemetry::json::push_json_str;

use smokestack_ir::{
    BlockId, Callee, CmpPred, FuncId, Function, Inst, Intrinsic, Module, RegId, Terminator, Value,
};

use crate::bounds::intrinsic_ranges;
use crate::escape::EscapeSummary;
use crate::interproc::{Extent, ModuleSummaries};
use crate::provenance::{Base, Resolution, Taint};

/// How the corrupting write moves through memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanic {
    /// Contiguous byte sweep upward from the entry slot (`get_input`,
    /// `read_line`, `memcpy`).
    LinearSweep,
    /// The write lands at an attacker-controlled offset from the entry
    /// slot (`snprintf_cat` with a dynamic destination cursor).
    CursorJump,
}

impl Mechanic {
    fn name(self) -> &'static str {
        match self {
            Mechanic::LinearSweep => "linear-sweep",
            Mechanic::CursorJump => "cursor-jump",
        }
    }
}

/// The overflow entry of a chain.
#[derive(Debug, Clone)]
pub struct EntrySite {
    /// Function containing the (possibly lifted) entry.
    pub func: String,
    /// Function id of `func`.
    pub func_id: FuncId,
    /// Name of the slot the write enters through.
    pub slot: String,
    /// Slot index in the function's slot table.
    pub slot_idx: usize,
    /// Basic block of the write (or lifted call).
    pub block: u32,
    /// Instruction index within the block.
    pub inst: usize,
    /// Write mechanic.
    pub mechanic: Mechanic,
    /// Slot feeding the dynamic length, when the length operand is
    /// loaded from a slot the attacker filled earlier (the
    /// "length-header request" shape).
    pub feed: Option<String>,
    /// Callee name when this entry was lifted from an unbounded
    /// input write inside a direct callee.
    pub lifted_from: Option<String>,
}

/// One slot the overflow can corrupt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SteeredSlot {
    /// Owning function.
    pub func: String,
    /// Function id.
    pub func_id: FuncId,
    /// Slot name.
    pub slot: String,
    /// Slot index in the owning function's slot table.
    pub slot_idx: usize,
    /// Call distance from the entry function (0 = same frame).
    pub depth: u32,
}

/// A comparison that must hold for control flow to reach a gadget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnablingCond {
    /// Function holding the compared slot (same as the gadget's).
    pub func: String,
    /// Compared slot.
    pub slot: String,
    /// Slot index.
    pub slot_idx: usize,
    /// Byte offset of the loaded word within the slot.
    pub offset: i64,
    /// Width of the loaded word, in bytes.
    pub width: u64,
    /// Comparison predicate, as required (already inverted when the
    /// gadget lives on the else edge).
    pub pred: CmpPred,
    /// Constant right-hand side.
    pub rhs: i64,
    /// One concrete value satisfying the condition.
    pub satisfy: i64,
}

/// A gadget a chain reaches.
#[derive(Debug, Clone)]
pub struct ChainGadget {
    /// Deref (load) or assign (store).
    pub kind: crate::gadget::GadgetKind,
    /// Function containing the gadget.
    pub func: String,
    /// Function id.
    pub func_id: FuncId,
    /// Basic block.
    pub block: u32,
    /// Instruction index.
    pub inst: usize,
    /// Steered slots the gadget's pointer chain reads, sorted by
    /// (function id, slot index).
    pub via: Vec<(String, String)>,
    /// Conditions guarding the gadget that compare slot words against
    /// constants (the synthesizer's schedule input).
    pub conds: Vec<EnablingCond>,
}

/// One entry with everything it reaches.
#[derive(Debug, Clone)]
pub struct Chain {
    /// The overflow entry.
    pub entry: EntrySite,
    /// Shortest call path from `main` to the entry function.
    pub path: Vec<String>,
    /// Corruptible slots.
    pub steered: Vec<SteeredSlot>,
    /// Reached gadgets.
    pub gadgets: Vec<ChainGadget>,
}

/// The full chain report for a module.
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// All chains, ordered by (entry function, block, instruction).
    pub chains: Vec<Chain>,
}

/// Per-function facts the pass needs repeatedly.
struct FnFacts {
    res: Resolution,
    taint: Taint,
}

impl ChainReport {
    /// Run the chain reachability pass over `m`.
    pub fn analyze(m: &Module) -> ChainReport {
        let sums = ModuleSummaries::compute(m);
        let facts: Vec<FnFacts> = m
            .iter_funcs()
            .map(|(_, f)| {
                let res = Resolution::compute(f);
                let esc = EscapeSummary::analyze(f, &res);
                let safe = esc.safe_mask(&res);
                let taint = Taint::compute(f, m, &res, &safe);
                FnFacts { res, taint }
            })
            .collect();
        let mut chains = Vec::new();
        for (fid, f) in m.iter_funcs() {
            for entry in find_entries(m, fid, f, &facts, &sums) {
                let steered = steer_set(m, &sums, &entry, &facts);
                let gadgets = reach_gadgets(m, &sums, &entry, &steered, &facts);
                if gadgets.is_empty() {
                    continue;
                }
                let path = call_path(m, &sums.callgraph, fid);
                chains.push(Chain {
                    entry,
                    path,
                    steered,
                    gadgets,
                });
            }
        }
        ChainReport { chains }
    }

    /// Render as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"smokestack-chains/1\",\"chains\":[");
        for (i, c) in self.chains.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.push_json(&mut out);
        }
        out.push_str(&format!("],\"total\":{}}}", self.chains.len()));
        out
    }

    /// Render as indented text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for c in &self.chains {
            out.push_str(&format!(
                "chain: entry `{}` in {} (bb{} #{}, {}{}{})\n",
                c.entry.slot,
                c.entry.func,
                c.entry.block,
                c.entry.inst,
                c.entry.mechanic.name(),
                match &c.entry.feed {
                    Some(s) => format!(", len fed via `{s}`"),
                    None => String::new(),
                },
                match &c.entry.lifted_from {
                    Some(g) => format!(", lifted from {g}"),
                    None => String::new(),
                },
            ));
            out.push_str(&format!("  path: {}\n", c.path.join(" -> ")));
            out.push_str(&format!(
                "  steers {} slot(s), reaches {} gadget(s):\n",
                c.steered.len(),
                c.gadgets.len()
            ));
            for g in &c.gadgets {
                let via: Vec<String> = g.via.iter().map(|(f, s)| format!("{f}:{s}")).collect();
                out.push_str(&format!(
                    "    {} in {} bb{} #{} via {}{}\n",
                    match g.kind {
                        crate::gadget::GadgetKind::Deref => "deref",
                        crate::gadget::GadgetKind::Assign => "assign",
                        crate::gadget::GadgetKind::OverflowEntry => "entry",
                    },
                    g.func,
                    g.block,
                    g.inst,
                    via.join(","),
                    if g.conds.is_empty() {
                        String::new()
                    } else {
                        format!(" ({} cond(s))", g.conds.len())
                    }
                ));
            }
        }
        out.push_str(&format!("{} chain(s)\n", self.chains.len()));
        out
    }
}

impl Chain {
    fn push_json(&self, out: &mut String) {
        out.push_str("{\"entry\":{\"func\":");
        push_json_str(out, &self.entry.func);
        out.push_str(",\"slot\":");
        push_json_str(out, &self.entry.slot);
        out.push_str(&format!(
            ",\"slot_idx\":{},\"block\":{},\"inst\":{},\"mechanic\":\"{}\"",
            self.entry.slot_idx,
            self.entry.block,
            self.entry.inst,
            self.entry.mechanic.name()
        ));
        if let Some(feed) = &self.entry.feed {
            out.push_str(",\"feed\":");
            push_json_str(out, feed);
        }
        if let Some(lf) = &self.entry.lifted_from {
            out.push_str(",\"lifted_from\":");
            push_json_str(out, lf);
        }
        out.push_str("},\"path\":[");
        for (i, p) in self.path.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(out, p);
        }
        out.push_str("],\"steered\":[");
        for (i, s) in self.steered.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"func\":");
            push_json_str(out, &s.func);
            out.push_str(",\"slot\":");
            push_json_str(out, &s.slot);
            out.push_str(&format!(
                ",\"slot_idx\":{},\"depth\":{}}}",
                s.slot_idx, s.depth
            ));
        }
        out.push_str("],\"gadgets\":[");
        for (i, g) in self.gadgets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"func\":",
                match g.kind {
                    crate::gadget::GadgetKind::Deref => "deref",
                    crate::gadget::GadgetKind::Assign => "assign",
                    crate::gadget::GadgetKind::OverflowEntry => "entry",
                }
            ));
            push_json_str(out, &g.func);
            out.push_str(&format!(
                ",\"block\":{},\"inst\":{},\"via\":[",
                g.block, g.inst
            ));
            for (j, (vf, vs)) in g.via.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"func\":");
                push_json_str(out, vf);
                out.push_str(",\"slot\":");
                push_json_str(out, vs);
                out.push('}');
            }
            out.push_str("],\"conds\":[");
            for (j, c) in g.conds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"func\":");
                push_json_str(out, &c.func);
                out.push_str(",\"slot\":");
                push_json_str(out, &c.slot);
                out.push_str(&format!(
                    ",\"slot_idx\":{},\"offset\":{},\"width\":{},\"pred\":\"{}\",\"rhs\":{},\"satisfy\":{}}}",
                    c.slot_idx, c.offset, c.width, c.pred, c.rhs, c.satisfy
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
}

/// Overflow entries of `f`: unchecked input writes into stack slots
/// (dynamic length / dynamic destination / overflowing constant
/// capacity), plus call sites lifted from callees whose summary shows
/// an unbounded input write through a passed slot address.
fn find_entries(
    m: &Module,
    fid: FuncId,
    f: &Function,
    facts: &[FnFacts],
    sums: &ModuleSummaries,
) -> Vec<EntrySite> {
    let ff = &facts[fid.0 as usize];
    let res = &ff.res;
    let mut out = Vec::new();
    for (bid, b) in f.iter_blocks() {
        for (i, inst) in b.insts.iter().enumerate() {
            let Inst::Call { callee, args, .. } = inst else {
                continue;
            };
            match callee {
                Callee::Intrinsic(which) => {
                    for range in intrinsic_ranges(callee, args) {
                        if !range.writes {
                            continue;
                        }
                        let Base::Slot { slot, offset } = res.value(range.ptr).base else {
                            continue;
                        };
                        let s = res.slots.get(slot);
                        let len_const = range.len.and_then(|l| res.const_of(l));
                        let dynamic_dst = offset.is_none() || s.is_vla || ff.taint.value(range.ptr);
                        let dynamic_len = range.len.is_some() && len_const.is_none();
                        let over_capacity = match (offset, len_const, s.size) {
                            (Some(o), Some(c), Some(size)) if o >= 0 && c >= 0 => {
                                c as u64 > size.saturating_sub(o as u64)
                            }
                            _ => false,
                        };
                        if !(dynamic_dst || dynamic_len || over_capacity) {
                            continue;
                        }
                        // Only *input-driven* writes are entries: the
                        // attacker must control the bytes.
                        let input = matches!(
                            *which,
                            Intrinsic::GetInput | Intrinsic::ReadLine | Intrinsic::SnprintfCat
                        );
                        if !input {
                            continue;
                        }
                        let mechanic =
                            if matches!(*which, Intrinsic::SnprintfCat) && offset.is_none() {
                                Mechanic::CursorJump
                            } else {
                                Mechanic::LinearSweep
                            };
                        out.push(EntrySite {
                            func: f.name.clone(),
                            func_id: fid,
                            slot: s.name.clone(),
                            slot_idx: slot,
                            block: bid.0,
                            inst: i,
                            mechanic,
                            feed: dynamic_len
                                .then(|| len_feed_slot(f, res, range.len.unwrap()))
                                .flatten(),
                            lifted_from: None,
                        });
                    }
                }
                Callee::Direct(g) => {
                    for (j, a) in args.iter().enumerate() {
                        let Base::Slot { slot, offset } = res.value(*a).base else {
                            continue;
                        };
                        let Some(pf) = sums.of(*g).params.get(j) else {
                            continue;
                        };
                        if !pf.writes_input {
                            continue;
                        }
                        let s = res.slots.get(slot);
                        let overflows = match (pf.extent, offset, s.size) {
                            (Extent::Unbounded, _, _) => true,
                            (Extent::Bounded(e), Some(o), Some(size)) if o >= 0 => {
                                o as u64 + e > size
                            }
                            (Extent::Bounded(_), _, _) => true, // dynamic offset
                            (Extent::Untouched, _, _) => false,
                        };
                        if !overflows {
                            continue; // bounded callee: the trap case
                        }
                        out.push(EntrySite {
                            func: f.name.clone(),
                            func_id: fid,
                            slot: s.name.clone(),
                            slot_idx: slot,
                            block: bid.0,
                            inst: i,
                            mechanic: Mechanic::LinearSweep,
                            feed: None,
                            lifted_from: Some(m.func(*g).name.clone()),
                        });
                    }
                }
                Callee::Indirect(_) => {}
            }
        }
    }
    out
}

/// Resolve a dynamic length operand back to the slot it is loaded from,
/// when that slot was previously filled by an input intrinsic (the
/// length-header prelude the synthesizer must replay).
fn len_feed_slot(f: &Function, res: &Resolution, len: Value) -> Option<String> {
    let mut v = len;
    loop {
        let r = v.as_reg()?;
        let mut def = None;
        for (_, b) in f.iter_blocks() {
            for inst in &b.insts {
                if inst.result() == Some(r) {
                    def = Some(inst.clone());
                }
            }
        }
        match def? {
            Inst::Cast { val, .. } => v = val,
            Inst::Load { ptr, .. } => {
                let Base::Slot { slot, .. } = res.value(ptr).base else {
                    return None;
                };
                // Confirm some input intrinsic fills that slot.
                for (_, b) in f.iter_blocks() {
                    for inst in &b.insts {
                        if let Inst::Call { callee, args, .. } = inst {
                            if matches!(
                                callee,
                                Callee::Intrinsic(Intrinsic::GetInput | Intrinsic::ReadLine)
                            ) {
                                for range in intrinsic_ranges(callee, args) {
                                    if range.writes
                                        && matches!(res.value(range.ptr).base,
                                            Base::Slot { slot: s2, .. } if s2 == slot)
                                    {
                                        return Some(res.slots.get(slot).name.clone());
                                    }
                                }
                            }
                        }
                    }
                }
                return None;
            }
            _ => return None,
        }
    }
}

/// Everything the entry write can corrupt: same-frame slots declared
/// before the entry slot (higher addresses in the baseline layout) and
/// all slots of every transitive caller frame.
fn steer_set(
    m: &Module,
    sums: &ModuleSummaries,
    entry: &EntrySite,
    facts: &[FnFacts],
) -> Vec<SteeredSlot> {
    let mut out = Vec::new();
    let res = &facts[entry.func_id.0 as usize].res;
    for (i, s) in res.slots.slots.iter().enumerate() {
        if i < entry.slot_idx {
            out.push(SteeredSlot {
                func: entry.func.clone(),
                func_id: entry.func_id,
                slot: s.name.clone(),
                slot_idx: i,
                depth: 0,
            });
        }
    }
    for anc in sums.callgraph.ancestors(entry.func_id) {
        let af = m.func(anc.func);
        let ares = &facts[anc.func.0 as usize].res;
        for (i, s) in ares.slots.slots.iter().enumerate() {
            out.push(SteeredSlot {
                func: af.name.clone(),
                func_id: anc.func,
                slot: s.name.clone(),
                slot_idx: i,
                depth: anc.depth,
            });
        }
    }
    out
}

/// Gadgets reachable from the steered set: computed-pointer accesses in
/// the entry function or any ancestor whose pointer value chain reads a
/// steered slot.
fn reach_gadgets(
    m: &Module,
    sums: &ModuleSummaries,
    entry: &EntrySite,
    steered: &[SteeredSlot],
    facts: &[FnFacts],
) -> Vec<ChainGadget> {
    let steered_set: HashSet<(u32, usize)> =
        steered.iter().map(|s| (s.func_id.0, s.slot_idx)).collect();
    let mut scope: Vec<FuncId> = vec![entry.func_id];
    scope.extend(
        sums.callgraph
            .ancestors(entry.func_id)
            .iter()
            .map(|a| a.func),
    );
    scope.sort_by_key(|f| f.0);
    scope.dedup();
    let mut out = Vec::new();
    for &h in &scope {
        let f = m.func(h);
        let ff = &facts[h.0 as usize];
        for (bid, b) in f.iter_blocks() {
            for (i, inst) in b.insts.iter().enumerate() {
                let push = |kind, ptr: Value, out: &mut Vec<ChainGadget>| {
                    // Computed pointer: unknown provenance or a dynamic
                    // offset within a known slot.
                    let computed = match ff.res.value(ptr).base {
                        Base::None => ptr.as_reg().is_some(),
                        Base::Slot { offset, .. } => offset.is_none(),
                        Base::Global(_) => false,
                    };
                    if !computed {
                        return;
                    }
                    let sources = ptr_sources(m, sums, h, ptr, facts);
                    let via: Vec<(String, String)> = sources
                        .iter()
                        .filter(|(fi, si)| steered_set.contains(&(fi.0, *si)))
                        .map(|(fi, si)| {
                            let sf = m.func(*fi);
                            let sres = &facts[fi.0 as usize].res;
                            (sf.name.clone(), sres.slots.get(*si).name.clone())
                        })
                        .collect();
                    if via.is_empty() {
                        return;
                    }
                    let conds = enabling_conds(f, ff, bid);
                    out.push(ChainGadget {
                        kind,
                        func: f.name.clone(),
                        func_id: h,
                        block: bid.0,
                        inst: i,
                        via,
                        conds,
                    });
                };
                match inst {
                    Inst::Load { ptr, .. } => {
                        push(crate::gadget::GadgetKind::Deref, *ptr, &mut out)
                    }
                    Inst::Store { ptr, val, .. } => {
                        push(crate::gadget::GadgetKind::Assign, *ptr, &mut out);
                        // Value-flow gadget: a write to *global* state
                        // whose stored value derives from steered slots
                        // (the `bot_commands = bot_commands + arg`
                        // shape) — observable cross-frame corruption
                        // even though the pointer itself is constant.
                        if matches!(ff.res.value(*ptr).base, Base::Global(_)) {
                            let sources = ptr_sources(m, sums, h, *val, facts);
                            let via: Vec<(String, String)> = sources
                                .iter()
                                .filter(|(fi, si)| steered_set.contains(&(fi.0, *si)))
                                .map(|(fi, si)| {
                                    let sf = m.func(*fi);
                                    let sres = &facts[fi.0 as usize].res;
                                    (sf.name.clone(), sres.slots.get(*si).name.clone())
                                })
                                .collect();
                            if !via.is_empty() {
                                out.push(ChainGadget {
                                    kind: crate::gadget::GadgetKind::Assign,
                                    func: f.name.clone(),
                                    func_id: h,
                                    block: bid.0,
                                    inst: i,
                                    via,
                                    conds: enabling_conds(f, ff, bid),
                                });
                            }
                        }
                    }
                    Inst::Call { callee, args, .. } => {
                        for range in intrinsic_ranges(callee, args) {
                            let kind = if range.writes {
                                crate::gadget::GadgetKind::Assign
                            } else {
                                crate::gadget::GadgetKind::Deref
                            };
                            push(kind, range.ptr, &mut out);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    out.sort_by_key(|e| (e.func_id.0, e.block, e.inst));
    out
}

/// Slots the value chain of `v` (in function `h`) reads: loads add
/// their source slot, geps/casts/arithmetic are walked through, and
/// parameters are mapped one call-edge up into each caller's argument.
fn ptr_sources(
    m: &Module,
    sums: &ModuleSummaries,
    h: FuncId,
    v: Value,
    facts: &[FnFacts],
) -> Vec<(FuncId, usize)> {
    let mut out: Vec<(FuncId, usize)> = Vec::new();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    walk(m, sums, h, v, facts, &mut out, &mut seen, 2);
    out.sort_by_key(|(f, s)| (f.0, *s));
    out.dedup();
    out
}

#[allow(clippy::too_many_arguments)]
fn walk(
    m: &Module,
    sums: &ModuleSummaries,
    h: FuncId,
    v: Value,
    facts: &[FnFacts],
    out: &mut Vec<(FuncId, usize)>,
    seen: &mut HashSet<(u32, u32)>,
    param_hops: u32,
) {
    let Some(r) = v.as_reg() else { return };
    if !seen.insert((h.0, r.0)) {
        return;
    }
    let f = m.func(h);
    if (r.0 as usize) < f.params.len() {
        // Parameter: map through every direct call site one edge up.
        if param_hops == 0 {
            return;
        }
        for site in sums.callgraph.sites_calling(h) {
            let cf = m.func(site.caller);
            let Inst::Call { args, .. } = &cf.block(BlockId(site.block)).insts[site.inst] else {
                continue;
            };
            let Some(a) = args.get(r.0 as usize) else {
                continue;
            };
            let cres = &facts[site.caller.0 as usize].res;
            if let Base::Slot { slot, .. } = cres.value(*a).base {
                out.push((site.caller, slot));
            }
            walk(m, sums, site.caller, *a, facts, out, seen, param_hops - 1);
        }
        return;
    }
    let res = &facts[h.0 as usize].res;
    for (_, b) in f.iter_blocks() {
        for inst in &b.insts {
            if inst.result() != Some(r) {
                continue;
            }
            match inst {
                Inst::Load { ptr, .. } => {
                    if let Base::Slot { slot, .. } = res.value(*ptr).base {
                        out.push((h, slot));
                        // Follow store-to-load forwarding: values the
                        // function itself spilled into this slot carry
                        // their own provenance (`long *q = p;` chains).
                        for (_, b2) in f.iter_blocks() {
                            for i2 in &b2.insts {
                                if let Inst::Store { val, ptr: p2, .. } = i2 {
                                    if matches!(res.value(*p2).base,
                                        Base::Slot { slot: s2, .. } if s2 == slot)
                                    {
                                        walk(m, sums, h, *val, facts, out, seen, param_hops);
                                    }
                                }
                            }
                        }
                    }
                    walk(m, sums, h, *ptr, facts, out, seen, param_hops);
                }
                Inst::Gep { base, offset, .. } => {
                    if let Base::Slot { slot, .. } = res.value(*base).base {
                        out.push((h, slot));
                    }
                    walk(m, sums, h, *base, facts, out, seen, param_hops);
                    walk(m, sums, h, *offset, facts, out, seen, param_hops);
                }
                Inst::Cast { val, .. } => walk(m, sums, h, *val, facts, out, seen, param_hops),
                Inst::Bin { lhs, rhs, .. } => {
                    walk(m, sums, h, *lhs, facts, out, seen, param_hops);
                    walk(m, sums, h, *rhs, facts, out, seen, param_hops);
                }
                _ => {}
            }
            return;
        }
    }
}

/// Conditions required to reach `target`: for every conditional branch,
/// if deleting one outgoing edge makes `target` unreachable from the
/// entry, the other edge must be taken — when the branch condition is
/// `icmp(load(slot + const), const)`, record it with a satisfying value.
fn enabling_conds(f: &Function, ff: &FnFacts, target: BlockId) -> Vec<EnablingCond> {
    let mut out = Vec::new();
    for (bid, b) in f.iter_blocks() {
        let Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } = &b.term
        else {
            continue;
        };
        // If deleting the then-edge makes the target unreachable, the
        // gadget NEEDS that edge, i.e. the condition must be true (and
        // symmetrically for the else-edge).
        for (removed, want_true) in [(*then_bb, true), (*else_bb, false)] {
            if reachable_without(f, target, bid, removed) {
                continue;
            }
            if let Some(c) = decode_cond(f, &ff.res, *cond, want_true) {
                out.push(c);
            }
        }
    }
    out.sort_by_key(|c| (c.slot_idx, c.offset, c.rhs));
    out.dedup();
    out
}

/// Whether `target` is reachable from the function entry when the edge
/// `from -> removed` is deleted.
fn reachable_without(f: &Function, target: BlockId, from: BlockId, removed: BlockId) -> bool {
    let mut seen = HashSet::new();
    let mut stack = vec![Function::ENTRY];
    while let Some(b) = stack.pop() {
        if !seen.insert(b.0) {
            continue;
        }
        if b == target {
            return true;
        }
        for succ in f.block(b).term.successors() {
            if b == from && succ == removed {
                continue;
            }
            stack.push(succ);
        }
    }
    false
}

/// Decode `cond` (must be `want_true`) into a slot-word comparison with
/// a satisfying value, when it has the `icmp(load, const)` shape —
/// possibly wrapped in the truthiness comparison MiniC emits around
/// every `if` (`icmp ne (zext inner) 0`).
fn decode_cond(
    f: &Function,
    res: &Resolution,
    cond: Value,
    want_true: bool,
) -> Option<EnablingCond> {
    let r = strip_casts(f, cond).as_reg()?;
    let def = find_def(f, r)?;
    let Inst::Icmp { pred, lhs, rhs, .. } = def else {
        return None;
    };
    // Truthiness forwarding: `(inner-bool) != 0` / `== 0` where the
    // bool side is itself a comparison result.
    for (bool_side, const_side, p) in [(lhs, rhs, pred), (rhs, lhs, swap_pred(pred))] {
        if res.const_of(const_side) == Some(0) && matches!(p, CmpPred::Eq | CmpPred::Ne) {
            let inner = strip_casts(f, bool_side);
            if let Some(ri) = inner.as_reg() {
                if matches!(find_def(f, ri), Some(Inst::Icmp { .. })) {
                    let want = if matches!(p, CmpPred::Ne) {
                        want_true
                    } else {
                        !want_true
                    };
                    return decode_cond(f, res, inner, want);
                }
            }
        }
    }
    let (load_side, const_side, mut pred) = match (slot_load(f, res, lhs), res.const_of(rhs)) {
        (Some(l), Some(c)) => (l, c, pred),
        _ => match (slot_load(f, res, rhs), res.const_of(lhs)) {
            (Some(l), Some(c)) => (l, c, swap_pred(pred)),
            _ => return None,
        },
    };
    if !want_true {
        pred = negate_pred(pred);
    }
    let satisfy = satisfying_value(pred, const_side)?;
    let (slot_idx, offset, width) = load_side;
    Some(EnablingCond {
        func: f.name.clone(),
        slot: res.slots.get(slot_idx).name.clone(),
        slot_idx,
        offset,
        width,
        pred,
        rhs: const_side,
        satisfy,
    })
}

/// Follow cast definitions back to the underlying value.
pub(crate) fn strip_casts(f: &Function, v: Value) -> Value {
    let mut v = v;
    while let Some(r) = v.as_reg() {
        match find_def(f, r) {
            Some(Inst::Cast { val, .. }) => v = val,
            _ => break,
        }
    }
    v
}

pub(crate) fn find_def(f: &Function, r: RegId) -> Option<Inst> {
    for (_, b) in f.iter_blocks() {
        for inst in &b.insts {
            if inst.result() == Some(r) {
                return Some(inst.clone());
            }
        }
    }
    None
}

/// Resolve a value (through casts) to a constant-offset slot load:
/// (slot index, byte offset, load width in bytes).
pub(crate) fn slot_load(f: &Function, res: &Resolution, v: Value) -> Option<(usize, i64, u64)> {
    let mut v = v;
    loop {
        let r = v.as_reg()?;
        match find_def(f, r)? {
            Inst::Cast { val, .. } => v = val,
            Inst::Load { ty, ptr, .. } => {
                let Base::Slot {
                    slot,
                    offset: Some(off),
                } = res.value(ptr).base
                else {
                    return None;
                };
                return Some((slot, off, ty.checked_size()?));
            }
            _ => return None,
        }
    }
}

fn swap_pred(p: CmpPred) -> CmpPred {
    match p {
        CmpPred::Eq => CmpPred::Eq,
        CmpPred::Ne => CmpPred::Ne,
        CmpPred::Slt => CmpPred::Sgt,
        CmpPred::Sle => CmpPred::Sge,
        CmpPred::Sgt => CmpPred::Slt,
        CmpPred::Sge => CmpPred::Sle,
        CmpPred::Ult => CmpPred::Ugt,
        CmpPred::Ule => CmpPred::Uge,
        CmpPred::Ugt => CmpPred::Ult,
        CmpPred::Uge => CmpPred::Ule,
    }
}

fn negate_pred(p: CmpPred) -> CmpPred {
    match p {
        CmpPred::Eq => CmpPred::Ne,
        CmpPred::Ne => CmpPred::Eq,
        CmpPred::Slt => CmpPred::Sge,
        CmpPred::Sle => CmpPred::Sgt,
        CmpPred::Sgt => CmpPred::Sle,
        CmpPred::Sge => CmpPred::Slt,
        CmpPred::Ult => CmpPred::Uge,
        CmpPred::Ule => CmpPred::Ugt,
        CmpPred::Ugt => CmpPred::Ule,
        CmpPred::Uge => CmpPred::Ult,
    }
}

/// One concrete value making `x <pred> c` true.
fn satisfying_value(pred: CmpPred, c: i64) -> Option<i64> {
    Some(match pred {
        CmpPred::Eq => c,
        CmpPred::Ne => c.wrapping_add(1),
        CmpPred::Sgt => c.checked_add(1)?,
        CmpPred::Sge => c,
        CmpPred::Slt => c.checked_sub(1)?,
        CmpPred::Sle => c,
        CmpPred::Ult => {
            if c == 0 {
                return None;
            }
            c.wrapping_sub(1)
        }
        CmpPred::Ule => c,
        CmpPred::Ugt => c.checked_add(1)?,
        CmpPred::Uge => c,
    })
}

/// Shortest `main -> ... -> fid` call path (function names); just the
/// function itself when `main` cannot reach it.
fn call_path(m: &Module, cg: &crate::callgraph::CallGraph, fid: FuncId) -> Vec<String> {
    let Some(main) = m.func_by_name("main") else {
        return vec![m.func(fid).name.clone()];
    };
    let mut prev: Vec<Option<FuncId>> = vec![None; cg.callees.len()];
    let mut seen = vec![false; cg.callees.len()];
    let mut queue = std::collections::VecDeque::new();
    seen[main.0 as usize] = true;
    queue.push_back(main);
    while let Some(g) = queue.pop_front() {
        if g == fid {
            let mut path = vec![fid];
            let mut cur = fid;
            while let Some(p) = prev[cur.0 as usize] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return path.iter().map(|f| m.func(*f).name.clone()).collect();
        }
        for &c in &cg.callees[g.0 as usize] {
            if !seen[c.0 as usize] {
                seen[c.0 as usize] = true;
                prev[c.0 as usize] = Some(g);
                queue.push_back(c);
            }
        }
    }
    vec![m.func(fid).name.clone()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        smokestack_minic::compile(src).expect("compiles")
    }

    const CORPUS: &str = r#"
        long g_total = 0;
        void read_packet(long dst) {
            long n = 0;
            get_input(&n, 8);
            get_input(dst, n);
        }
        void read_header(long dst) { get_input(dst, 8); }
        void session(long tag) {
            long mode = 0;
            long amount = 0;
            char hdr[8];
            char inbox[32];
            read_header(hdr);
            read_packet(inbox);
            if (mode == 9) {
                g_total = g_total + amount;
            }
        }
        int main() { long seed = 7; session(seed); return 0; }
    "#;

    #[test]
    fn lifted_entry_found_and_trap_rejected() {
        let m = compile(CORPUS);
        let rep = ChainReport::analyze(&m);
        assert_eq!(rep.chains.len(), 1, "{}", rep.render_text());
        let c = &rep.chains[0];
        assert_eq!(c.entry.func, "session");
        assert_eq!(c.entry.slot, "inbox");
        assert_eq!(c.entry.lifted_from.as_deref(), Some("read_packet"));
        // The bounded read_header(hdr) call must NOT be an entry.
        assert!(rep
            .chains
            .iter()
            .all(|c| c.entry.lifted_from.as_deref() != Some("read_header")));
    }

    #[test]
    fn steered_covers_earlier_slots_and_callers() {
        let m = compile(CORPUS);
        let rep = ChainReport::analyze(&m);
        let c = &rep.chains[0];
        let names: Vec<(&str, &str, u32)> = c
            .steered
            .iter()
            .map(|s| (s.func.as_str(), s.slot.as_str(), s.depth))
            .collect();
        assert!(names.contains(&("session", "mode", 0)));
        assert!(names.contains(&("session", "amount", 0)));
        assert!(names.contains(&("session", "hdr", 0)));
        // main's frame is above session's.
        assert!(names.contains(&("main", "seed", 1)));
        // inbox itself is not steered.
        assert!(!names.iter().any(|(_, s, _)| *s == "inbox"));
    }

    #[test]
    fn direct_deref_chain_with_condition() {
        // An overflow reaches a guarded store-through-pointer: the
        // chain must carry the gadget AND the mode==9 condition.
        let m = compile(
            r#"
            long secret = 5;
            int main() {
                long mode = 0;
                long p = 0;
                char buf[16];
                long n = 0;
                get_input(&n, 8);
                get_input(buf, n);
                if (mode == 77) {
                    long *q = p;
                    q[0] = 1;
                }
                return 0;
            }
            "#,
        );
        let rep = ChainReport::analyze(&m);
        assert_eq!(rep.chains.len(), 1, "{}", rep.render_text());
        let c = &rep.chains[0];
        assert_eq!(c.entry.feed.as_deref(), Some("n"));
        let g = c
            .gadgets
            .iter()
            .find(|g| g.kind == crate::gadget::GadgetKind::Assign)
            .expect("assign gadget");
        assert!(g.via.iter().any(|(_, s)| s == "p"), "{:?}", g.via);
        let cond = g.conds.iter().find(|c| c.slot == "mode").expect("cond");
        assert_eq!(cond.pred, CmpPred::Eq);
        assert_eq!(cond.satisfy, 77);
    }

    #[test]
    fn json_deterministic() {
        let m = compile(CORPUS);
        let a = ChainReport::analyze(&m).to_json();
        let b = ChainReport::analyze(&m).to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"smokestack-chains/1\""));
    }

    #[test]
    fn bounded_program_has_no_chains() {
        let m = compile(
            r#"
            int main() {
                char buf[16];
                get_input(buf, 16);
                long x = 3;
                return x;
            }
            "#,
        );
        let rep = ChainReport::analyze(&m);
        assert!(rep.chains.is_empty(), "{}", rep.render_text());
    }
}
