//! # smokestack-analyzer
//!
//! Static dataflow analysis over the Smokestack IR: the defender-side
//! counterpart of the paper's compiler passes. The Smokestack
//! instrumentation must *find* every stack allocation and decide what to
//! randomize; this crate goes further and maps why randomization is
//! needed at all — the bug classes DOP payloads enter through and the
//! gadget surface they compile against (Hu et al.'s data-oriented
//! programming, automated by STEROIDS).
//!
//! Layers:
//!
//! * [`dataflow`] — a reusable forward/backward worklist solver over
//!   [`smokestack_ir::cfg`], with lattice-join and transfer-function
//!   traits;
//! * [`provenance`] — slot discovery, per-register abstract values
//!   (slot + constant offset + constant), and memory-derived-value
//!   taint with store-to-load forwarding through safe slots;
//! * [`escape`] — address-taken / pointer-escape classification per
//!   slot (the CleanStack-style attacker-reachability split);
//! * [`init`] — definite-initialization (loads reachable before any
//!   store);
//! * [`bounds`] — constant-index accesses and constant intrinsic
//!   capacities vs slot sizes;
//! * [`liveness`] — backward slot liveness (dead-store statistics);
//! * [`gadget`] — the per-function DOP gadget-surface report;
//! * [`diag`] — structured diagnostics with stable rule IDs and
//!   text/JSON rendering.
//!
//! The top-level entry point is [`analyze_module`]; the instrumentation
//! consumes [`prunable_slots`] for its opt-in `prune_safe_slots` mode.
//!
//! # Examples
//!
//! ```
//! use smokestack_analyzer::analyze_module;
//!
//! let m = smokestack_minic::compile(
//!     "int main() { char buf[4]; buf[6] = 1; return 0; }",
//! )
//! .unwrap();
//! let report = analyze_module(&m);
//! assert_eq!(report.error_count(), 1);
//! assert_eq!(report.functions[0].diagnostics[0].rule, "oob-access");
//! ```

#![warn(missing_docs)]

pub mod bounds;
pub mod callgraph;
pub mod chain;
pub mod dataflow;
pub mod diag;
pub mod escape;
pub mod gadget;
pub mod init;
pub mod interproc;
pub mod liveness;
pub mod provenance;
pub mod synth;

use smokestack_ir::cfg::Cfg;
use smokestack_ir::{Function, Module};
use smokestack_telemetry::MetricsRegistry;

pub use callgraph::{Ancestor, CallGraph, CallSite};
pub use chain::{Chain, ChainGadget, ChainReport, EnablingCond, EntrySite, Mechanic, SteeredSlot};
pub use dataflow::{solve, BlockStates, DataflowAnalysis, Direction};
pub use diag::{rules, Diagnostic, Severity, SrcPos};
pub use escape::{EscapeSummary, SlotFlags};
pub use gadget::{GadgetKind, GadgetSite, GadgetSurfaceReport};
pub use interproc::{Extent, FnSummary, ModuleSummaries, ParamFacts};
pub use provenance::{AbsVal, Base, Resolution, SlotTable, Taint};
pub use synth::{synthesize, Goal, GoalCheck, PayloadPlan, PlanWrite, SymValue};

/// Findings and surface for one function.
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// Function name.
    pub func: String,
    /// Defect findings (errors and warnings), in block order.
    pub diagnostics: Vec<Diagnostic>,
    /// DOP gadget surface.
    pub gadgets: GadgetSurfaceReport,
}

/// The full analysis result for a module.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Per-function results, in module order.
    pub functions: Vec<FunctionReport>,
}

/// Run the whole suite over one function.
pub fn analyze_function(m: &Module, f: &Function) -> FunctionReport {
    let cfg = Cfg::compute(f);
    let res = Resolution::compute(f);
    let esc = EscapeSummary::analyze(f, &res);
    let safe = esc.safe_mask(&res);
    let taint = Taint::compute(f, m, &res, &safe);

    let mut diagnostics = bounds::check(f, &res);
    diagnostics.extend(init::check(f, &cfg, &res, &esc));
    diagnostics.sort_by_key(|d| (d.block, d.inst, d.rule));

    let gadgets = GadgetSurfaceReport::analyze(f, &cfg, &res, &esc, &taint);
    FunctionReport {
        func: f.name.clone(),
        diagnostics,
        gadgets,
    }
}

/// Run the whole suite over every function of `m`.
pub fn analyze_module(m: &Module) -> AnalysisReport {
    AnalysisReport {
        functions: m.funcs.iter().map(|f| analyze_function(m, f)).collect(),
    }
}

impl AnalysisReport {
    /// Iterate over all diagnostics of all functions.
    pub fn diagnostics(&self) -> impl Iterator<Item = &Diagnostic> {
        self.functions.iter().flat_map(|f| f.diagnostics.iter())
    }

    /// Number of `Error` findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning` findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Total gadget sites across all functions.
    pub fn gadget_total(&self) -> usize {
        self.functions.iter().map(|f| f.gadgets.total()).sum()
    }

    /// Attach source positions to diagnostics from a
    /// `(function, variable) -> position` lookup (e.g. the minic
    /// source map).
    pub fn apply_source_map(&mut self, lookup: impl Fn(&str, &str) -> Option<SrcPos>) {
        for f in &mut self.functions {
            for d in &mut f.diagnostics {
                if d.pos.is_none() {
                    if let Some(slot) = &d.slot {
                        d.pos = lookup(&d.func, slot);
                    }
                }
            }
        }
    }

    /// Render the whole report as text: diagnostics first, then the
    /// non-empty gadget surfaces.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in self.diagnostics() {
            out.push_str(&d.render_text());
            out.push('\n');
        }
        let mut surface = String::new();
        for f in &self.functions {
            surface.push_str(&f.gadgets.render_text());
        }
        if !surface.is_empty() {
            out.push_str("gadget surface:\n");
            out.push_str(&surface);
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} gadget site(s)\n",
            self.error_count(),
            self.warning_count(),
            self.gadget_total()
        ));
        out
    }

    /// Render the whole report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics().enumerate() {
            if i > 0 {
                out.push(',');
            }
            d.push_json(&mut out);
        }
        out.push_str("],\"gadget_surface\":[");
        for (i, f) in self.functions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            f.gadgets.push_json(&mut out);
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{},\"gadgets\":{}}}",
            self.error_count(),
            self.warning_count(),
            self.gadget_total()
        ));
        out
    }

    /// Record summary counters into a telemetry registry.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        reg.inc("analyzer.diags.error", self.error_count() as u64);
        reg.inc("analyzer.diags.warning", self.warning_count() as u64);
        let mut deref = 0u64;
        let mut assign = 0u64;
        let mut entries = 0u64;
        let mut safe = 0u64;
        let mut slots = 0u64;
        let mut dead = 0u64;
        for f in &self.functions {
            deref += f.gadgets.deref_gadgets.len() as u64;
            assign += f.gadgets.assign_gadgets.len() as u64;
            entries += f.gadgets.overflow_entries.len() as u64;
            safe += f.gadgets.safe_slots.len() as u64;
            slots += f.gadgets.slots as u64;
            dead += f.gadgets.dead_stores as u64;
        }
        reg.inc("analyzer.gadgets.deref", deref);
        reg.inc("analyzer.gadgets.assign", assign);
        reg.inc("analyzer.gadgets.overflow_entry", entries);
        reg.inc("analyzer.slots.total", slots);
        reg.inc("analyzer.slots.safe", safe);
        reg.inc("analyzer.dead_stores", dead);
    }
}

/// Entry-block instruction indexes of `f`'s randomizable slots when the
/// *whole frame* is provably non-attacker-reachable; empty otherwise.
///
/// Pruning is all-or-nothing per function. A frame is prunable only
/// when every slot is safe: its address never escapes, every access is
/// a constant in-bounds offset, and it is fixed-size — so no
/// out-of-bounds write can originate in or reach the frame, and
/// randomizing it adds no security. The moment *one* slot is
/// attacker-reachable (escaping buffer, dynamic index, VLA), every
/// sibling slot must stay in the permutation: those safe slots are
/// precisely what the randomization hides the unsafe one among.
/// Pruning them would collapse the layout toward determinism — in the
/// degenerate case a lone unsafe buffer permutes with itself and the
/// frame is fully predictable again.
pub fn prunable_slots(f: &Function) -> Vec<usize> {
    let res = Resolution::compute(f);
    let esc = EscapeSummary::analyze(f, &res);
    let safe = esc.safe_mask(&res);
    let mut out = Vec::new();
    for (i, s) in res.slots.slots.iter().enumerate() {
        if s.is_vla || !safe[i] {
            return Vec::new();
        }
        if s.randomizable && s.block == Function::ENTRY {
            out.push(s.index);
        }
    }
    out
}

/// Per-function [`prunable_slots`] with interprocedural escape
/// summaries: a slot whose address escapes only into provably-safe
/// direct callees (non-escaping, writes bounded within the slot) stays
/// prunable. Returns one entry-block index list per function, in module
/// order, under the same all-or-nothing-per-frame contract as
/// [`prunable_slots`].
pub fn prunable_slots_module(m: &Module) -> Vec<Vec<usize>> {
    let sums = interproc::ModuleSummaries::compute(m);
    m.iter_funcs()
        .map(|(fid, f)| {
            let res = Resolution::compute(f);
            let refined = interproc::refined_safe_mask(m, fid, &sums);
            let mut out = Vec::new();
            for (i, s) in res.slots.slots.iter().enumerate() {
                if s.is_vla || !refined[i] {
                    return Vec::new();
                }
                if s.randomizable && s.block == Function::ENTRY {
                    out.push(s.index);
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokestack_minic::compile;

    #[test]
    fn clean_program_zero_findings() {
        let m = compile(
            r#"
            int sum(int a, int b) { return a + b; }
            int main() {
                char buf[16];
                int n = get_input(buf, 16);
                return sum(n, 1);
            }
            "#,
        )
        .unwrap();
        let r = analyze_module(&m);
        assert_eq!(r.error_count(), 0);
        assert_eq!(r.warning_count(), 0);
    }

    #[test]
    fn planted_uninit_and_oob_flagged() {
        let m = compile(
            r#"
            int main() {
                int x;
                char buf[4];
                buf[6] = 1;
                return x;
            }
            "#,
        )
        .unwrap();
        let r = analyze_module(&m);
        let rules: Vec<&str> = r.diagnostics().map(|d| d.rule).collect();
        assert!(rules.contains(&diag::rules::OOB_ACCESS));
        assert!(rules.contains(&diag::rules::UNINIT_READ));
    }

    #[test]
    fn prunable_slots_all_or_nothing() {
        // `buf` escapes into get_input and is indexed dynamically, so
        // the frame has an attacker-reachable slot: nothing may be
        // pruned — `idx` is what the permutation hides `buf` among.
        let m = compile(
            r#"
            int main() {
                long idx = 3;
                char buf[8];
                get_input(buf, 8);
                buf[idx] = 1;
                return 0;
            }
            "#,
        )
        .unwrap();
        let f = m.func(m.func_by_name("main").unwrap());
        assert!(prunable_slots(f).is_empty());

        // An all-safe frame is prunable in full.
        let m = compile(
            r#"
            int main() {
                long a = 1;
                long b = 2;
                int c = 3;
                return a + b + c;
            }
            "#,
        )
        .unwrap();
        let f = m.func(m.func_by_name("main").unwrap());
        let prunable = prunable_slots(f);
        let names: Vec<&str> = prunable
            .iter()
            .map(|&i| match &f.block(Function::ENTRY).insts[i] {
                smokestack_ir::Inst::Alloca { name, .. } => name.as_str(),
                _ => panic!("prunable index is not an alloca"),
            })
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn json_report_shape() {
        let m = compile("int main() { char b[4]; b[9] = 2; return 0; }").unwrap();
        let j = analyze_module(&m).to_json();
        assert!(j.starts_with("{\"diagnostics\":["));
        assert!(j.contains("\"oob-access\""));
        assert!(j.contains("\"errors\":1"));
    }

    #[test]
    fn metrics_recorded() {
        let m = compile("int main() { char b[4]; b[9] = 2; return 0; }").unwrap();
        let mut reg = MetricsRegistry::default();
        analyze_module(&m).record_metrics(&mut reg);
        assert_eq!(reg.counter("analyzer.diags.error"), 1);
        assert!(reg.counter("analyzer.slots.total") >= 1);
    }
}
