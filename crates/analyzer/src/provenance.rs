//! Slot discovery and abstract value provenance.
//!
//! The IR is SSA-like for register values (each register defined once,
//! definitions dominate uses, no phis), so the value a register holds
//! can be summarized by one bottom-up walk over its use-def chain. Every
//! register gets an [`AbsVal`]: which stack slot (if any) the value
//! points into, at which constant byte offset, and what constant integer
//! it is, when those are statically known.
//!
//! On top of the resolved values, [`Taint`] computes which registers
//! hold data *derived from attacker-corruptible memory* — the property
//! STEROIDS-style DOP gadget discovery keys on. A load result is tainted
//! when the pointer itself is tainted, when it reads a slot whose
//! address has escaped (an out-of-bounds write can reach such a slot),
//! or when it reads a safe slot into which some store put a tainted
//! value (store-to-load forwarding keeps spilled parameters and clean
//! locals out of the gadget surface).

use std::collections::HashMap;

use smokestack_ir::{
    BinOp, BlockId, Callee, CastKind, Function, Inst, IntWidth, Intrinsic, Module, RegId, Type,
    Value,
};

/// One stack slot: an `alloca` instruction and its static facts.
#[derive(Debug, Clone)]
pub struct Slot {
    /// Source-level variable name.
    pub name: String,
    /// Register holding the slot's address.
    pub reg: RegId,
    /// Allocated type (element type, for VLAs).
    pub ty: Type,
    /// Byte size, when statically known (`None` for VLAs).
    pub size: Option<u64>,
    /// Whether this is a variable-length allocation.
    pub is_vla: bool,
    /// Block holding the `alloca`.
    pub block: BlockId,
    /// Instruction index within that block.
    pub index: usize,
    /// The IR's `randomizable` flag (false for instrumentation-owned
    /// slots like the Smokestack slab).
    pub randomizable: bool,
}

/// All slots of one function, with a register → slot index map.
#[derive(Debug, Clone, Default)]
pub struct SlotTable {
    /// Slots in discovery (block, instruction) order.
    pub slots: Vec<Slot>,
    by_reg: HashMap<RegId, usize>,
}

impl SlotTable {
    /// Discover every `alloca` of `f` (any block — VLAs are allocated at
    /// their declaration site).
    pub fn discover(f: &Function) -> SlotTable {
        let mut t = SlotTable::default();
        for (bid, b) in f.iter_blocks() {
            for (i, inst) in b.insts.iter().enumerate() {
                if let Inst::Alloca {
                    result,
                    ty,
                    count,
                    name,
                    randomizable,
                    ..
                } = inst
                {
                    let is_vla = count.is_some();
                    let size = if is_vla { None } else { ty.checked_size() };
                    t.by_reg.insert(*result, t.slots.len());
                    t.slots.push(Slot {
                        name: name.clone(),
                        reg: *result,
                        ty: ty.clone(),
                        size,
                        is_vla,
                        block: bid,
                        index: i,
                        randomizable: *randomizable,
                    });
                }
            }
        }
        t
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the function has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot whose address lives in `r`, if `r` is an alloca result.
    pub fn of_reg(&self, r: RegId) -> Option<usize> {
        self.by_reg.get(&r).copied()
    }

    /// Shared access to slot `i`.
    pub fn get(&self, i: usize) -> &Slot {
        &self.slots[i]
    }
}

/// What a pointer-ish value points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base {
    /// Unknown provenance (parameters, call results, loaded pointers).
    None,
    /// Points into stack slot `slot`, at byte `offset` when that is a
    /// single known constant (`None` = some dynamic offset).
    Slot {
        /// Index into the function's [`SlotTable`].
        slot: usize,
        /// Constant byte offset from the slot base, if known.
        offset: Option<i64>,
    },
    /// Points at a module global.
    Global(smokestack_ir::GlobalId),
}

/// Static summary of one register's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Pointer provenance.
    pub base: Base,
    /// Constant integer value, if statically known.
    pub konst: Option<i64>,
}

impl AbsVal {
    const UNKNOWN: AbsVal = AbsVal {
        base: Base::None,
        konst: None,
    };

    fn konst(v: i64) -> AbsVal {
        AbsVal {
            base: Base::None,
            konst: Some(v),
        }
    }
}

/// Resolved per-register values for one function.
#[derive(Debug, Clone)]
pub struct Resolution {
    /// Discovered slots.
    pub slots: SlotTable,
    vals: Vec<AbsVal>,
}

impl Resolution {
    /// Resolve every register of `f`.
    pub fn compute(f: &Function) -> Resolution {
        let slots = SlotTable::discover(f);
        let defs = f.def_sites();
        let mut r = Resolution {
            slots,
            vals: vec![AbsVal::UNKNOWN; f.reg_count()],
        };
        let mut done = vec![false; f.reg_count()];
        // Parameters stay UNKNOWN.
        for d in done.iter_mut().take(f.params.len()) {
            *d = true;
        }
        for reg in 0..f.reg_count() {
            r.resolve_reg(f, &defs, &mut done, RegId(reg as u32));
        }
        r
    }

    /// The abstract value of `r`.
    pub fn reg(&self, r: RegId) -> AbsVal {
        self.vals[r.0 as usize]
    }

    /// The abstract value of an operand.
    pub fn value(&self, v: Value) -> AbsVal {
        match v {
            Value::Reg(r) => self.reg(r),
            Value::ConstInt(c, _) => AbsVal::konst(c),
            Value::Global(g) => AbsVal {
                base: Base::Global(g),
                konst: None,
            },
            Value::Func(_) | Value::NullPtr => AbsVal::UNKNOWN,
        }
    }

    /// Constant value of an operand, if statically known.
    pub fn const_of(&self, v: Value) -> Option<i64> {
        self.value(v).konst
    }

    fn resolve_reg(
        &mut self,
        f: &Function,
        defs: &HashMap<RegId, (BlockId, usize)>,
        done: &mut Vec<bool>,
        r: RegId,
    ) -> AbsVal {
        if done[r.0 as usize] {
            return self.vals[r.0 as usize];
        }
        // Defs dominate uses and there are no phis, so the use-def walk
        // cannot cycle; mark first anyway so malformed input terminates.
        done[r.0 as usize] = true;
        let Some(&(bid, idx)) = defs.get(&r) else {
            return AbsVal::UNKNOWN;
        };
        let inst = &f.block(bid).insts[idx];
        let val = self.resolve_inst(f, defs, done, inst);
        self.vals[r.0 as usize] = val;
        val
    }

    fn resolve_operand(
        &mut self,
        f: &Function,
        defs: &HashMap<RegId, (BlockId, usize)>,
        done: &mut Vec<bool>,
        v: Value,
    ) -> AbsVal {
        if let Value::Reg(r) = v {
            self.resolve_reg(f, defs, done, r);
        }
        self.value(v)
    }

    fn resolve_inst(
        &mut self,
        f: &Function,
        defs: &HashMap<RegId, (BlockId, usize)>,
        done: &mut Vec<bool>,
        inst: &Inst,
    ) -> AbsVal {
        match inst {
            Inst::Alloca { result, .. } => match self.slots.of_reg(*result) {
                Some(s) => AbsVal {
                    base: Base::Slot {
                        slot: s,
                        offset: Some(0),
                    },
                    konst: None,
                },
                None => AbsVal::UNKNOWN,
            },
            Inst::Gep { base, offset, .. } => {
                let b = self.resolve_operand(f, defs, done, *base);
                let off = self.resolve_operand(f, defs, done, *offset).konst;
                match b.base {
                    Base::Slot { slot, offset: cur } => AbsVal {
                        base: Base::Slot {
                            slot,
                            offset: match (cur, off) {
                                (Some(c), Some(o)) => c.checked_add(o),
                                _ => None,
                            },
                        },
                        konst: None,
                    },
                    Base::Global(g) => AbsVal {
                        base: Base::Global(g),
                        konst: None,
                    },
                    Base::None => AbsVal::UNKNOWN,
                }
            }
            Inst::Bin {
                op,
                width,
                lhs,
                rhs,
                ..
            } => {
                let l = self.resolve_operand(f, defs, done, *lhs).konst;
                let r = self.resolve_operand(f, defs, done, *rhs).konst;
                match (l, r) {
                    (Some(a), Some(b)) => fold_bin(*op, *width, a, b)
                        .map(AbsVal::konst)
                        .unwrap_or(AbsVal::UNKNOWN),
                    _ => AbsVal::UNKNOWN,
                }
            }
            Inst::Cast { kind, to, val, .. } => {
                let v = self.resolve_operand(f, defs, done, *val);
                // Casts preserve pointer provenance (ptrtoint/inttoptr
                // round-trips still point at the same slot) and fold
                // constants where the semantics are width games.
                let konst = v.konst.and_then(|c| fold_cast(*kind, to, c));
                AbsVal {
                    base: v.base,
                    konst,
                }
            }
            Inst::Load { .. } | Inst::Call { .. } | Inst::Icmp { .. } => AbsVal::UNKNOWN,
            Inst::Store { .. } => AbsVal::UNKNOWN,
        }
    }
}

fn fold_bin(op: BinOp, width: IntWidth, a: i64, b: i64) -> Option<i64> {
    let raw = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::SDiv => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::UDiv => {
            if b == 0 {
                return None;
            }
            ((a as u64) / (b as u64)) as i64
        }
        BinOp::SRem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::URem => {
            if b == 0 {
                return None;
            }
            ((a as u64) % (b as u64)) as i64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::LShr => (((a as u64) & width.mask()) >> (b as u32 & 63)) as i64,
        BinOp::AShr => width.sext(a as u64) >> (b as u32 & 63),
    };
    Some(width.sext(width.truncate(raw as u64)))
}

fn fold_cast(kind: CastKind, to: &Type, c: i64) -> Option<i64> {
    match kind {
        CastKind::ZextOrTrunc => {
            let w = to.int_width()?;
            Some(w.truncate(c as u64) as i64)
        }
        CastKind::SextFrom(from) => {
            let v = from.sext(from.truncate(c as u64));
            match to.int_width() {
                Some(w) => Some(w.sext(w.truncate(v as u64))),
                None => Some(v),
            }
        }
        CastKind::PtrToInt | CastKind::IntToPtr => Some(c),
    }
}

/// Which registers hold attacker-corruptible ("memory-derived") data,
/// and which slots hold such data in memory.
#[derive(Debug, Clone)]
pub struct Taint {
    reg: Vec<bool>,
    /// Per-slot: does the slot's *content* carry tainted data?
    pub slot_content: Vec<bool>,
}

impl Taint {
    /// Fixpoint taint computation.
    ///
    /// `safe` marks slots whose address never escapes and whose accesses
    /// are all constant-offset in-bounds (see `escape`): their content
    /// is exactly what the function stored, so loads forward the taint
    /// of the stored values. All other slots are attacker-corruptible —
    /// an out-of-bounds write can reach them — so loads from them are
    /// tainted unconditionally.
    pub fn compute(f: &Function, m: &Module, res: &Resolution, safe: &[bool]) -> Taint {
        let mut t = Taint {
            reg: vec![false; f.reg_count()],
            slot_content: (0..res.slots.len()).map(|s| !safe[s]).collect(),
        };
        // Flow-insensitive fixpoint: a pass can both discover newly
        // tainted stores and propagate them to loads, so iterate until
        // no bit changes. Monotone over a finite bit set, terminates.
        loop {
            let mut changed = false;
            for (_, b) in f.iter_blocks() {
                for inst in &b.insts {
                    match inst {
                        Inst::Load { result, ptr, .. } => {
                            let lt = t.load_tainted(m, res, *ptr);
                            if lt && !t.reg[result.0 as usize] {
                                t.reg[result.0 as usize] = true;
                                changed = true;
                            }
                        }
                        Inst::Store { val, ptr, .. } => {
                            if t.value(*val) {
                                if let Base::Slot { slot, .. } = res.value(*ptr).base {
                                    if !t.slot_content[slot] {
                                        t.slot_content[slot] = true;
                                        changed = true;
                                    }
                                }
                            }
                        }
                        // Atomic word ops are memory accesses dressed as
                        // calls: a load forwards the pointee's taint to
                        // its result, a store forwards the stored
                        // value's taint into the slot content, and RMW
                        // does both.
                        Inst::Call {
                            result,
                            callee: Callee::Intrinsic(which),
                            args,
                        } if matches!(
                            which,
                            Intrinsic::AtomicLoad | Intrinsic::AtomicStore | Intrinsic::AtomicRmw
                        ) =>
                        {
                            if matches!(which, Intrinsic::AtomicLoad | Intrinsic::AtomicRmw) {
                                if let Some(r) = result {
                                    let lt = t.load_tainted(m, res, args[0]);
                                    if lt && !t.reg[r.0 as usize] {
                                        t.reg[r.0 as usize] = true;
                                        changed = true;
                                    }
                                }
                            }
                            if matches!(which, Intrinsic::AtomicStore | Intrinsic::AtomicRmw)
                                && t.value(args[1])
                            {
                                if let Base::Slot { slot, .. } = res.value(args[0]).base {
                                    if !t.slot_content[slot] {
                                        t.slot_content[slot] = true;
                                        changed = true;
                                    }
                                }
                            }
                        }
                        other => {
                            if let Some(r) = other.result() {
                                let any = other.operands().iter().any(|&v| t.value(v));
                                // Call results are *not* tainted: they
                                // are produced by the callee, not read
                                // through a corruptible pointer here.
                                let tainted = any && !matches!(other, Inst::Call { .. });
                                if tainted && !t.reg[r.0 as usize] {
                                    t.reg[r.0 as usize] = true;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        t
    }

    fn load_tainted(&self, m: &Module, res: &Resolution, ptr: Value) -> bool {
        if self.value(ptr) {
            return true;
        }
        match res.value(ptr).base {
            Base::Slot { slot, .. } => self.slot_content[slot],
            Base::Global(g) => !m.global(g).readonly,
            Base::None => false,
        }
    }

    /// Whether register `r` is tainted.
    pub fn reg(&self, r: RegId) -> bool {
        self.reg[r.0 as usize]
    }

    /// Whether operand `v` is tainted.
    pub fn value(&self, v: Value) -> bool {
        match v {
            Value::Reg(r) => self.reg(r),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokestack_ir::Builder;

    #[test]
    fn const_gep_chain_resolves_to_slot_offset() {
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I8, 16), "buf");
        // gep(gep(buf, 4), 3) -> buf+7
        let g1 = b.gep(buf.into(), Value::i64(4));
        let g2 = b.gep(g1.into(), Value::i64(3));
        b.ret(None);
        let res = Resolution::compute(&f);
        assert_eq!(
            res.reg(g2).base,
            Base::Slot {
                slot: 0,
                offset: Some(7)
            }
        );
    }

    #[test]
    fn folded_scaled_index() {
        // The minic shape: gep(buf, mul(2, 4)) -> buf+8.
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I32, 8), "buf");
        let scaled = b.bin(BinOp::Mul, IntWidth::W64, Value::i64(2), Value::i64(4));
        let addr = b.gep(buf.into(), scaled.into());
        b.ret(None);
        let res = Resolution::compute(&f);
        assert_eq!(
            res.reg(addr).base,
            Base::Slot {
                slot: 0,
                offset: Some(8)
            }
        );
    }

    #[test]
    fn dynamic_index_loses_offset_but_keeps_slot() {
        let mut f = Function::new("f", vec![Type::I64], Type::Void);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I8, 16), "buf");
        let addr = b.gep(buf.into(), Value::Reg(RegId(0)));
        b.ret(None);
        let res = Resolution::compute(&f);
        assert_eq!(
            res.reg(addr).base,
            Base::Slot {
                slot: 0,
                offset: None
            }
        );
    }

    #[test]
    fn taint_forwards_through_safe_slot_but_not_from_unsafe() {
        // safe slot `a` gets an untainted store; unsafe slot `u` is
        // attacker-reachable, so its load is tainted and storing that
        // value into safe slot `c` taints c's loads too.
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let a = b.alloca(Type::I64, "a");
        let u = b.alloca(Type::I64, "u");
        let c = b.alloca(Type::I64, "c");
        b.store(Type::I64, Value::i64(1), a.into());
        let la = b.load(Type::I64, a.into());
        let lu = b.load(Type::I64, u.into());
        b.store(Type::I64, Value::Reg(lu), c.into());
        let lc = b.load(Type::I64, c.into());
        b.ret(None);
        let m = Module::new();
        let res = Resolution::compute(&f);
        let safe = vec![true, false, true];
        let t = Taint::compute(&f, &m, &res, &safe);
        assert!(!t.reg(la));
        assert!(t.reg(lu));
        assert!(t.reg(lc));
    }
}
