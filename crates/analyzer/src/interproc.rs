//! Bottom-up interprocedural summaries: what each function does with
//! (pointers derived from) its parameters.
//!
//! MiniC spills every parameter into a stack slot at entry and reloads
//! it at each use, so tracking a parameter through a function requires
//! store-to-load forwarding through provably-safe slots. The analysis
//! resolves, per register and per safe slot, whether the value is
//! *parameter `i` plus a constant byte offset*; a second pass derives
//! [`ParamFacts`] from every use of such a value. Summaries compose at
//! direct call sites (shifting write extents by the constant argument
//! offset) and are iterated bottom-up over the call-graph SCCs to a
//! fixpoint, so recursion converges monotonically.
//!
//! Consumers:
//! * `prunable_slots_module` — a slot whose address escapes *only*
//!   into callees that provably stay within its bounds remains
//!   prunable (CleanStack-style refinement of the intraprocedural
//!   escape classification).
//! * `chain` — call sites passing a slot to a callee that performs an
//!   unbounded input-driven write through that parameter are lifted to
//!   interprocedural overflow entries.

use smokestack_ir::{Callee, CastKind, FuncId, Function, Inst, Module, Terminator, Type, Value};

use crate::bounds::intrinsic_ranges;
use crate::callgraph::CallGraph;
use crate::escape::EscapeSummary;
use crate::provenance::{Base, Resolution};

/// How far through a parameter-derived pointer a function may write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extent {
    /// Never written through.
    Untouched,
    /// All writes land within `[0, n)` bytes of the incoming pointer.
    Bounded(u64),
    /// Writes at attacker-controlled or unknown offsets/lengths.
    Unbounded,
}

impl Extent {
    /// Lattice join (Untouched < Bounded < Unbounded).
    pub fn join(self, other: Extent) -> Extent {
        match (self, other) {
            (Extent::Untouched, x) | (x, Extent::Untouched) => x,
            (Extent::Unbounded, _) | (_, Extent::Unbounded) => Extent::Unbounded,
            (Extent::Bounded(a), Extent::Bounded(b)) => Extent::Bounded(a.max(b)),
        }
    }

    /// Shift by a constant base offset (a call passing `p + off`).
    fn shifted(self, off: Option<i64>) -> Extent {
        match (self, off) {
            (Extent::Untouched, _) => Extent::Untouched,
            (Extent::Bounded(e), Some(d)) if d >= 0 => Extent::Bounded(d as u64 + e),
            _ => Extent::Unbounded,
        }
    }
}

/// What a function may do with one of its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamFacts {
    /// Memory is read through the parameter (directly or transitively).
    pub read: bool,
    /// Memory is written through the parameter.
    pub written: bool,
    /// Some write through the parameter carries external-input bytes
    /// (`get_input`/`read_line` family), directly or transitively.
    pub writes_input: bool,
    /// The parameter value leaks beyond what the extent captures:
    /// stored to untracked memory, returned, fed to pointer arithmetic
    /// we cannot follow, printed, or passed somewhere opaque.
    pub escapes: bool,
    /// Write extent through the parameter.
    pub extent: Extent,
}

impl ParamFacts {
    const BOTTOM: ParamFacts = ParamFacts {
        read: false,
        written: false,
        writes_input: false,
        escapes: false,
        extent: Extent::Untouched,
    };

    fn join(&mut self, other: ParamFacts) -> bool {
        let before = *self;
        self.read |= other.read;
        self.written |= other.written;
        self.writes_input |= other.writes_input;
        self.escapes |= other.escapes;
        self.extent = self.extent.join(other.extent);
        *self != before
    }

    /// Whether a slot of `size` bytes passed (at constant offset `off`)
    /// to a callee with these facts provably stays in bounds and
    /// unleaked — the condition under which the pass-to-call does not
    /// disqualify the slot from pruning.
    pub fn provably_safe_for(&self, off: Option<i64>, size: u64) -> bool {
        if self.escapes {
            return false;
        }
        match self.extent.shifted(off) {
            Extent::Untouched => true,
            Extent::Bounded(e) => e <= size,
            Extent::Unbounded => false,
        }
    }
}

/// Summary of one function.
#[derive(Debug, Clone)]
pub struct FnSummary {
    /// Facts per parameter, indexed by parameter position.
    pub params: Vec<ParamFacts>,
    /// Whether the return value may carry attacker-controlled bytes.
    pub ret_tainted: bool,
}

/// Parameter provenance of a value: which parameter it is derived from
/// and at which constant byte offset (`None` = dynamic offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PVal {
    /// Not yet constrained (lattice bottom).
    Unset,
    /// Parameter `idx` plus an offset.
    Param { idx: usize, off: Option<i64> },
    /// Anything else (constants, loads, call results, conflicts).
    Other,
}

impl PVal {
    fn join(self, other: PVal) -> PVal {
        match (self, other) {
            (PVal::Unset, x) | (x, PVal::Unset) => x,
            (a, b) if a == b => a,
            (PVal::Param { idx: a, off: x }, PVal::Param { idx: b, off: y }) if a == b => {
                PVal::Param {
                    idx: a,
                    off: if x == y { x } else { None },
                }
            }
            _ => PVal::Other,
        }
    }

    fn add(self, delta: Option<i64>) -> PVal {
        match self {
            PVal::Param { idx, off } => PVal::Param {
                idx,
                off: match (off, delta) {
                    (Some(a), Some(b)) => Some(a + b),
                    _ => None,
                },
            },
            other => other,
        }
    }
}

/// Per-function parameter-provenance resolution (registers plus
/// forwarding through safe spill slots).
struct ParamRes {
    regs: Vec<PVal>,
    slots: Vec<PVal>,
}

impl ParamRes {
    fn compute(f: &Function, res: &Resolution, safe: &[bool]) -> ParamRes {
        let mut pr = ParamRes {
            regs: vec![PVal::Unset; f.reg_count()],
            slots: vec![PVal::Unset; res.slots.len()],
        };
        for i in 0..f.params.len() {
            pr.regs[i] = PVal::Param {
                idx: i,
                off: Some(0),
            };
        }
        // Flow-insensitive fixpoint: registers are single-assignment,
        // slot states join over all stores.
        loop {
            let mut changed = false;
            for (_, b) in f.iter_blocks() {
                for inst in &b.insts {
                    let (result, new) = pr.transfer(f, res, safe, inst);
                    if let Some(r) = result {
                        let j = pr.regs[r.0 as usize].join(new);
                        if j != pr.regs[r.0 as usize] {
                            pr.regs[r.0 as usize] = j;
                            changed = true;
                        }
                    }
                    if let Inst::Store { ty, val, ptr } = inst {
                        let v = pr.value(*val);
                        if let Base::Slot { slot, offset } = res.value(*ptr).base {
                            let stored = if safe[slot]
                                && offset == Some(0)
                                && ty.checked_size() == Some(8)
                            {
                                v
                            } else {
                                PVal::Other
                            };
                            let j = pr.slots[slot].join(stored);
                            if j != pr.slots[slot] {
                                pr.slots[slot] = j;
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        pr
    }

    fn value(&self, v: Value) -> PVal {
        match v {
            Value::Reg(r) => self.regs[r.0 as usize],
            _ => PVal::Other,
        }
    }

    /// Result register and its provenance for one instruction.
    fn transfer(
        &self,
        _f: &Function,
        res: &Resolution,
        safe: &[bool],
        inst: &Inst,
    ) -> (Option<smokestack_ir::RegId>, PVal) {
        match inst {
            Inst::Gep {
                result,
                base,
                offset,
            } => {
                let d = res.const_of(*offset);
                (Some(*result), self.value(*base).add(d))
            }
            Inst::Bin {
                result,
                op,
                width,
                lhs,
                rhs,
            } => {
                use smokestack_ir::BinOp;
                if *width != smokestack_ir::IntWidth::W64 {
                    return (Some(*result), PVal::Other);
                }
                let v = match op {
                    BinOp::Add => match (self.value(*lhs), res.const_of(*rhs)) {
                        (p @ PVal::Param { .. }, Some(c)) => p.add(Some(c)),
                        _ => match (res.const_of(*lhs), self.value(*rhs)) {
                            (Some(c), p @ PVal::Param { .. }) => p.add(Some(c)),
                            _ => PVal::Other,
                        },
                    },
                    BinOp::Sub => match (self.value(*lhs), res.const_of(*rhs)) {
                        (p @ PVal::Param { .. }, Some(c)) => p.add(Some(-c)),
                        _ => PVal::Other,
                    },
                    _ => PVal::Other,
                };
                (Some(*result), v)
            }
            Inst::Cast {
                result,
                kind,
                to,
                val,
            } => {
                // Value-preserving casts keep provenance; anything that
                // can change the bit pattern drops it.
                let keeps = matches!(kind, CastKind::PtrToInt | CastKind::IntToPtr)
                    || matches!(to, Type::Ptr)
                    || to.checked_size() == Some(8);
                (
                    Some(*result),
                    if keeps { self.value(*val) } else { PVal::Other },
                )
            }
            Inst::Load { result, ty, ptr } => {
                let v = match res.value(*ptr).base {
                    Base::Slot { slot, offset }
                        if safe[slot] && offset == Some(0) && ty.checked_size() == Some(8) =>
                    {
                        self.slots[slot]
                    }
                    _ => PVal::Other,
                };
                (Some(*result), v)
            }
            Inst::Alloca { result, .. } => (Some(*result), PVal::Other),
            Inst::Icmp { result, .. } => (Some(*result), PVal::Other),
            Inst::Call { result, .. } => (*result, PVal::Other),
            Inst::Store { .. } => (None, PVal::Unset),
        }
    }
}

/// Interprocedural summaries for every function of a module.
#[derive(Debug, Clone)]
pub struct ModuleSummaries {
    /// Per-function summaries, indexed by `FuncId`.
    pub summaries: Vec<FnSummary>,
    /// The call graph the fixpoint ran over.
    pub callgraph: CallGraph,
}

impl ModuleSummaries {
    /// Compute summaries bottom-up to a global fixpoint.
    pub fn compute(m: &Module) -> ModuleSummaries {
        let callgraph = CallGraph::compute(m);
        let pre: Vec<(Resolution, Vec<bool>, ParamRes)> = m
            .iter_funcs()
            .map(|(_, f)| {
                let res = Resolution::compute(f);
                let esc = EscapeSummary::analyze(f, &res);
                let safe = esc.safe_mask(&res);
                let pr = ParamRes::compute(f, &res, &safe);
                (res, safe, pr)
            })
            .collect();
        let mut summaries: Vec<FnSummary> = m
            .iter_funcs()
            .map(|(_, f)| FnSummary {
                params: vec![ParamFacts::BOTTOM; f.params.len()],
                ret_tainted: false,
            })
            .collect();
        // Iterate whole-module until stable; bottom-up order makes the
        // common (acyclic) case converge in one sweep. `Bounded` has
        // infinite ascending chains (recursion like `walk(p + 8)` grows
        // the bound every sweep), so after a few sweeps any extent
        // still in motion is widened straight to `Unbounded`; the
        // remaining lattice (booleans) is finite and converges.
        let mut sweeps = 0u32;
        loop {
            let mut changed = false;
            let widen = sweeps >= 3;
            for fid in callgraph.bottom_up() {
                let f = m.func(fid);
                let (res, _, pr) = &pre[fid.0 as usize];
                let next = summarize(m, f, res, pr, &summaries);
                let cur = &mut summaries[fid.0 as usize];
                for (p, np) in cur.params.iter_mut().zip(next.params) {
                    let before_extent = p.extent;
                    changed |= p.join(np);
                    if widen && p.extent != before_extent {
                        p.extent = Extent::Unbounded;
                    }
                }
                if next.ret_tainted && !cur.ret_tainted {
                    cur.ret_tainted = true;
                    changed = true;
                }
            }
            sweeps += 1;
            if !changed {
                break;
            }
        }
        ModuleSummaries {
            summaries,
            callgraph,
        }
    }

    /// Summary of `f`.
    pub fn of(&self, f: FuncId) -> &FnSummary {
        &self.summaries[f.0 as usize]
    }

    /// Slots of `fid` whose content may carry attacker bytes once
    /// callee effects are taken into account: slots the function itself
    /// exposes (intraprocedural unsafety) plus slots passed to callees
    /// that write external input through the parameter.
    pub fn tainted_slots(&self, m: &Module, fid: FuncId) -> Vec<bool> {
        let f = m.func(fid);
        let res = Resolution::compute(f);
        let esc = EscapeSummary::analyze(f, &res);
        let safe = esc.safe_mask(&res);
        let mut tainted: Vec<bool> = safe.iter().map(|s| !s).collect();
        for (_, b) in f.iter_blocks() {
            for inst in &b.insts {
                if let Inst::Call {
                    callee: Callee::Direct(g),
                    args,
                    ..
                } = inst
                {
                    for (j, a) in args.iter().enumerate() {
                        if let Base::Slot { slot, .. } = res.value(*a).base {
                            if let Some(pf) = self.of(*g).params.get(j) {
                                if pf.writes_input || pf.escapes {
                                    tainted[slot] = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        tainted
    }
}

/// One summarization pass over `f` given the current callee summaries.
fn summarize(
    m: &Module,
    f: &Function,
    res: &Resolution,
    pr: &ParamRes,
    summaries: &[FnSummary],
) -> FnSummary {
    let n = f.params.len();
    let mut params = vec![ParamFacts::BOTTOM; n];
    let mut ret_tainted = false;
    let mark = |p: PVal, facts: ParamFacts, params: &mut Vec<ParamFacts>| {
        if let PVal::Param { idx, .. } = p {
            params[idx].join(facts);
        }
    };
    let escape = ParamFacts {
        escapes: true,
        ..ParamFacts::BOTTOM
    };

    for (_, b) in f.iter_blocks() {
        for inst in &b.insts {
            match inst {
                Inst::Load { ptr, .. } => {
                    if let PVal::Param { idx, .. } = pr.value(*ptr) {
                        params[idx].read = true;
                    }
                }
                Inst::Store { ty, val, ptr } => {
                    // Writing through a parameter-derived pointer.
                    if let PVal::Param { idx, off } = pr.value(*ptr) {
                        let size = ty.checked_size();
                        let ext = match (off, size) {
                            (Some(o), Some(s)) if o >= 0 => Extent::Bounded(o as u64 + s),
                            _ => Extent::Unbounded,
                        };
                        params[idx].join(ParamFacts {
                            written: true,
                            extent: ext,
                            ..ParamFacts::BOTTOM
                        });
                    }
                    // Storing a parameter value somewhere we do not
                    // track its further uses.
                    if let p @ PVal::Param { .. } = pr.value(*val) {
                        let forwarded = matches!(
                            res.value(*ptr).base,
                            Base::Slot { slot, offset: Some(0) }
                                if pr.slots.get(slot).is_some()
                                    && pr.slots[slot] != PVal::Other
                        ) && ty.checked_size() == Some(8);
                        if !forwarded {
                            mark(p, escape, &mut params);
                        }
                    }
                }
                Inst::Gep { result, base, .. } => {
                    // Provenance lost at this instruction => escape.
                    if pr.regs[result.0 as usize] == PVal::Other {
                        if let p @ PVal::Param { .. } = pr.value(*base) {
                            mark(p, escape, &mut params);
                        }
                    }
                }
                Inst::Bin {
                    result, lhs, rhs, ..
                } => {
                    if pr.regs[result.0 as usize] == PVal::Other {
                        for v in [lhs, rhs] {
                            if let p @ PVal::Param { .. } = pr.value(*v) {
                                mark(p, escape, &mut params);
                            }
                        }
                    }
                }
                Inst::Cast { result, val, .. } => {
                    if pr.regs[result.0 as usize] == PVal::Other {
                        if let p @ PVal::Param { .. } = pr.value(*val) {
                            mark(p, escape, &mut params);
                        }
                    }
                }
                // Comparisons only observe the value; no pointer flows.
                Inst::Icmp { .. } => {}
                Inst::Alloca { count, .. } => {
                    if let Some(c) = count {
                        if let p @ PVal::Param { .. } = pr.value(*c) {
                            mark(p, escape, &mut params);
                        }
                    }
                }
                Inst::Call {
                    callee,
                    args,
                    result,
                } => match callee {
                    Callee::Direct(g) => {
                        let cs = &summaries[g.0 as usize];
                        for (j, a) in args.iter().enumerate() {
                            if let PVal::Param { idx, off } = pr.value(*a) {
                                match cs.params.get(j) {
                                    Some(cf) => {
                                        params[idx].join(ParamFacts {
                                            read: cf.read,
                                            written: cf.written,
                                            writes_input: cf.writes_input,
                                            escapes: cf.escapes,
                                            extent: if cf.written {
                                                cf.extent.shifted(off)
                                            } else {
                                                Extent::Untouched
                                            },
                                        });
                                    }
                                    None => {
                                        params[idx].escapes = true;
                                    }
                                }
                            }
                        }
                        let _ = result;
                    }
                    Callee::Intrinsic(which) => {
                        let ranges = intrinsic_ranges(callee, args);
                        let input_driven = matches!(
                            *which,
                            smokestack_ir::Intrinsic::GetInput | smokestack_ir::Intrinsic::ReadLine
                        );
                        let mut covered = vec![false; args.len()];
                        for r in &ranges {
                            if let Some(pos) = args.iter().position(|a| *a == r.ptr) {
                                covered[pos] = true;
                            }
                            if let Some(len) = r.len {
                                if let Some(pos) = args.iter().position(|a| *a == len) {
                                    covered[pos] = true;
                                }
                            }
                            if let PVal::Param { idx, off } = pr.value(r.ptr) {
                                if r.writes {
                                    let ext = match (off, r.len.and_then(|l| res.const_of(l))) {
                                        (Some(o), Some(l)) if o >= 0 && l >= 0 => {
                                            Extent::Bounded(o as u64 + l as u64)
                                        }
                                        _ => Extent::Unbounded,
                                    };
                                    params[idx].join(ParamFacts {
                                        written: true,
                                        writes_input: input_driven,
                                        extent: ext,
                                        ..ParamFacts::BOTTOM
                                    });
                                } else {
                                    params[idx].read = true;
                                }
                            }
                        }
                        for (a, c) in args.iter().zip(covered) {
                            if c {
                                continue;
                            }
                            if let p @ PVal::Param { .. } = pr.value(*a) {
                                // Printed, freed, used as a length...:
                                // treat as an opaque leak.
                                mark(p, escape, &mut params);
                            }
                        }
                    }
                    Callee::Indirect(_) => {
                        for a in args {
                            if let p @ PVal::Param { .. } = pr.value(*a) {
                                mark(p, escape, &mut params);
                            }
                        }
                    }
                },
            }
        }
        if let Terminator::Ret(Some(v)) = &b.term {
            if let p @ PVal::Param { .. } = pr.value(*v) {
                mark(p, escape, &mut params);
            }
            ret_tainted |= ret_value_tainted(m, f, res, *v, summaries);
        }
    }
    FnSummary {
        params,
        ret_tainted,
    }
}

/// Whether a returned value may carry attacker bytes: a load from a
/// non-safe slot, an external-input intrinsic result, or the result of
/// a callee whose own return is tainted.
fn ret_value_tainted(
    m: &Module,
    f: &Function,
    res: &Resolution,
    v: Value,
    summaries: &[FnSummary],
) -> bool {
    let Some(r) = v.as_reg() else { return false };
    let esc = EscapeSummary::analyze(f, res);
    let safe = esc.safe_mask(res);
    for (_, b) in f.iter_blocks() {
        for inst in &b.insts {
            if inst.result() != Some(r) {
                continue;
            }
            return match inst {
                Inst::Load { ptr, .. } => match res.value(*ptr).base {
                    Base::Slot { slot, .. } => !safe[slot],
                    Base::Global(g) => !m.global(g).readonly,
                    Base::None => true,
                },
                Inst::Call { callee, .. } => match callee {
                    Callee::Direct(g) => summaries[g.0 as usize].ret_tainted,
                    Callee::Intrinsic(which) => matches!(
                        *which,
                        smokestack_ir::Intrinsic::GetInput
                            | smokestack_ir::Intrinsic::ReadLine
                            | smokestack_ir::Intrinsic::SnprintfCat
                    ),
                    Callee::Indirect(_) => true,
                },
                _ => false,
            };
        }
    }
    false
}

/// Refined per-slot safety for `fid`: like the intraprocedural
/// [`EscapeSummary::safe_mask`], except that passing the slot's address
/// to a *provably safe* direct callee (non-escaping, writes bounded
/// within the slot) is forgiven.
///
/// The intraprocedural flags cannot be reused directly: MiniC lowers
/// `callee(&x)` through a `ptrtoint`, which `escape` counts as an
/// integer leak *in addition to* the pass-to-call. Provenance flows
/// through casts, so this scan re-derives disqualification from the
/// instructions that actually consume a slot-derived value, treating
/// casts and geps as transparent and judging direct-call arguments by
/// the callee's summary instead of unconditionally.
pub fn refined_safe_mask(m: &Module, fid: FuncId, sums: &ModuleSummaries) -> Vec<bool> {
    let f = m.func(fid);
    let res = Resolution::compute(f);
    let esc = EscapeSummary::analyze(f, &res);
    let base = esc.safe_mask(&res);
    let mut refined: Vec<bool> = (0..res.slots.len())
        .map(|i| {
            let s = res.slots.get(i);
            !s.is_vla && s.size.is_some()
        })
        .collect();
    let kill = |v: Value, refined: &mut Vec<bool>, res: &Resolution| {
        if let Base::Slot { slot, .. } = res.value(v).base {
            refined[slot] = false;
        }
    };
    for (_, b) in f.iter_blocks() {
        for inst in &b.insts {
            match inst {
                // Casts and geps keep provenance; their consumers are
                // what we judge.
                Inst::Cast { .. } | Inst::Gep { .. } => {}
                Inst::Load { ty, ptr, .. } | Inst::Store { ty, ptr, .. } => {
                    if let Base::Slot { slot, offset } = res.value(*ptr).base {
                        let size = res.slots.get(slot).size.unwrap_or(0);
                        let acc = ty.checked_size().unwrap_or(u64::MAX);
                        match offset {
                            Some(o) if o >= 0 && (o as u64).saturating_add(acc) <= size => {}
                            _ => refined[slot] = false,
                        }
                    }
                    if let Inst::Store { val, .. } = inst {
                        // The slot's address is stored to memory.
                        kill(*val, &mut refined, &res);
                    }
                }
                // Arithmetic (beyond what `Resolution` folds) and
                // comparisons launder the address into an integer.
                Inst::Bin { lhs, rhs, .. } | Inst::Icmp { lhs, rhs, .. } => {
                    kill(*lhs, &mut refined, &res);
                    kill(*rhs, &mut refined, &res);
                }
                Inst::Alloca { count, .. } => {
                    if let Some(c) = count {
                        kill(*c, &mut refined, &res);
                    }
                }
                Inst::Call { callee, args, .. } => match callee {
                    Callee::Direct(g) => {
                        for (j, a) in args.iter().enumerate() {
                            let Base::Slot { slot, offset } = res.value(*a).base else {
                                continue;
                            };
                            let size = res.slots.get(slot).size.unwrap_or(0);
                            let ok = sums
                                .of(*g)
                                .params
                                .get(j)
                                .map(|pf| pf.provably_safe_for(offset, size))
                                .unwrap_or(false);
                            if !ok {
                                refined[slot] = false;
                            }
                        }
                    }
                    // Intrinsic and indirect arguments keep the
                    // intraprocedural (conservative) classification.
                    _ => {
                        for a in args {
                            kill(*a, &mut refined, &res);
                        }
                        if let Callee::Indirect(t) = callee {
                            kill(*t, &mut refined, &res);
                        }
                    }
                },
            }
        }
        if let Terminator::Ret(Some(v)) = &b.term {
            kill(*v, &mut refined, &res);
        }
        if let Terminator::CondBr { cond, .. } = &b.term {
            kill(*cond, &mut refined, &res);
        }
    }
    // Never reclassify below the intraprocedural answer.
    for (r, b) in refined.iter_mut().zip(&base) {
        *r |= *b;
    }
    refined
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        smokestack_minic::compile(src).expect("compiles")
    }

    fn facts<'a>(m: &Module, sums: &'a ModuleSummaries, func: &str) -> &'a FnSummary {
        sums.of(m.func_by_name(func).expect("func"))
    }

    #[test]
    fn bounded_callee_write_is_bounded() {
        let m = compile(
            r#"
            void fill(long dst) { long *d = dst; d[0] = 7; }
            int main() { long x = 0; fill(&x); return x; }
            "#,
        );
        let sums = ModuleSummaries::compute(&m);
        let pf = &facts(&m, &sums, "fill").params[0];
        assert!(pf.written, "{pf:?}");
        assert!(!pf.escapes, "{pf:?}");
        assert_eq!(pf.extent, Extent::Bounded(8), "{pf:?}");
        assert!(!pf.writes_input);
    }

    #[test]
    fn input_write_through_param_is_flagged() {
        let m = compile(
            r#"
            void read_packet(long dst) {
                long n = 0;
                get_input(&n, 8);
                get_input(dst, n);
            }
            int main() { char b[16]; read_packet(b); return 0; }
            "#,
        );
        let sums = ModuleSummaries::compute(&m);
        let pf = &facts(&m, &sums, "read_packet").params[0];
        assert!(pf.written && pf.writes_input, "{pf:?}");
        assert_eq!(pf.extent, Extent::Unbounded, "{pf:?}");
    }

    #[test]
    fn const_len_input_through_param_is_bounded() {
        let m = compile(
            r#"
            void read_header(long dst) { get_input(dst, 8); }
            int main() { char b[8]; read_header(b); return 0; }
            "#,
        );
        let sums = ModuleSummaries::compute(&m);
        let pf = &facts(&m, &sums, "read_header").params[0];
        assert!(pf.written && pf.writes_input);
        assert_eq!(pf.extent, Extent::Bounded(8), "{pf:?}");
        assert!(!pf.escapes);
    }

    #[test]
    fn transitive_composition_shifts_extent() {
        let m = compile(
            r#"
            void inner(long p) { long *d = p; d[0] = 1; }
            void outer(long q) { inner(q + 8); }
            int main() { char b[16]; outer(b); return 0; }
            "#,
        );
        let sums = ModuleSummaries::compute(&m);
        let pf = &facts(&m, &sums, "outer").params[0];
        assert_eq!(pf.extent, Extent::Bounded(16), "{pf:?}");
        assert!(!pf.escapes);
    }

    #[test]
    fn printed_param_escapes() {
        let m = compile(
            r#"
            void show(long p) { print_int(p); }
            int main() { long x = 1; show(&x); return 0; }
            "#,
        );
        let sums = ModuleSummaries::compute(&m);
        assert!(facts(&m, &sums, "show").params[0].escapes);
    }

    #[test]
    fn recursion_converges_unbounded() {
        let m = compile(
            r#"
            void walk(long p, long n) {
                if (n > 0) {
                    long *d = p;
                    d[0] = n;
                    walk(p + 8, n - 1);
                }
            }
            int main() { char b[64]; walk(b, 4); return 0; }
            "#,
        );
        let sums = ModuleSummaries::compute(&m);
        let pf = &facts(&m, &sums, "walk").params[0];
        assert!(pf.written);
        // p + 8 recursion: extent grows without bound => Unbounded.
        assert_eq!(pf.extent, Extent::Unbounded, "{pf:?}");
    }

    #[test]
    fn refined_mask_forgives_safe_callee() {
        let m = compile(
            r#"
            void fill(long dst) { long *d = dst; d[0] = 7; }
            void leaky(long dst) { long n = 0; get_input(&n, 8); get_input(dst, n); }
            void host(long tag) {
                long a = 0;
                char b[32];
                fill(&a);
                leaky(b);
            }
            int main() { host(1); return 0; }
            "#,
        );
        let sums = ModuleSummaries::compute(&m);
        let fid = m.func_by_name("host").unwrap();
        let f = m.func(fid);
        let res = Resolution::compute(f);
        let refined = refined_safe_mask(&m, fid, &sums);
        let idx = |name: &str| {
            (0..res.slots.len())
                .find(|&i| res.slots.get(i).name == name)
                .unwrap()
        };
        assert!(refined[idx("a")], "bounded callee should stay prunable");
        assert!(!refined[idx("b")], "unbounded callee must disqualify");
    }

    #[test]
    fn ret_taint_propagates_through_calls() {
        let m = compile(
            r#"
            long fetch() { long n = 0; get_input(&n, 8); return n; }
            long relay() { return fetch(); }
            long pure() { return 7; }
            int main() { return relay() + pure(); }
            "#,
        );
        let sums = ModuleSummaries::compute(&m);
        assert!(facts(&m, &sums, "fetch").ret_tainted);
        assert!(facts(&m, &sums, "relay").ret_tainted);
        assert!(!facts(&m, &sums, "pure").ret_tainted);
    }
}
