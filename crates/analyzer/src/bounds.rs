//! Static bounds checking: constant-offset accesses and constant
//! capacities of the unchecked memory intrinsics, checked against slot
//! sizes. These are the overflow candidates a DOP payload enters
//! through, so the same decoding also feeds the gadget-surface report.

use smokestack_ir::{Callee, Function, Inst, Intrinsic, Value};

use crate::diag::{rules, Diagnostic, Severity};
use crate::provenance::{Base, Resolution};

/// A memory range an intrinsic call touches.
#[derive(Debug, Clone, Copy)]
pub struct IntrinsicRange {
    /// The pointer argument.
    pub ptr: Value,
    /// The byte count argument (capacity for writers). `None` when the
    /// intrinsic determines the length itself (`strlen`, `print_str`).
    pub len: Option<Value>,
    /// Whether the intrinsic writes through `ptr` with externally
    /// controlled bytes (the DOP entry shape) or only reads.
    pub writes: bool,
}

/// Decode which memory ranges an intrinsic call accesses.
///
/// Only the unchecked libc-like primitives are modeled — the
/// instrumentation intrinsics never take program pointers.
pub fn intrinsic_ranges(callee: &Callee, args: &[Value]) -> Vec<IntrinsicRange> {
    let Callee::Intrinsic(i) = callee else {
        return Vec::new();
    };
    match i {
        Intrinsic::GetInput | Intrinsic::ReadLine => vec![IntrinsicRange {
            ptr: args[0],
            len: Some(args[1]),
            writes: true,
        }],
        Intrinsic::SnprintfCat => vec![IntrinsicRange {
            ptr: args[0],
            len: Some(args[1]),
            writes: true,
        }],
        Intrinsic::Memcpy => vec![
            IntrinsicRange {
                ptr: args[0],
                len: Some(args[2]),
                writes: true,
            },
            IntrinsicRange {
                ptr: args[1],
                len: Some(args[2]),
                writes: false,
            },
        ],
        Intrinsic::Memset => vec![IntrinsicRange {
            ptr: args[0],
            len: Some(args[2]),
            writes: true,
        }],
        Intrinsic::Strlen | Intrinsic::PrintStr => vec![IntrinsicRange {
            ptr: args[0],
            len: None,
            writes: false,
        }],
        // The concurrency word primitives always touch exactly 8 bytes;
        // the count is implicit in the operation, so a synthesized
        // constant stands in for the missing length argument.
        Intrinsic::AtomicLoad => vec![IntrinsicRange {
            ptr: args[0],
            len: Some(Value::i64(8)),
            writes: false,
        }],
        Intrinsic::AtomicStore | Intrinsic::AtomicRmw => vec![IntrinsicRange {
            ptr: args[0],
            len: Some(Value::i64(8)),
            writes: true,
        }],
        // Lock/unlock both read and update the mutex word.
        Intrinsic::MutexLock | Intrinsic::MutexUnlock => vec![IntrinsicRange {
            ptr: args[0],
            len: Some(Value::i64(8)),
            writes: true,
        }],
        _ => Vec::new(),
    }
}

/// Check every constant-offset access and constant-capacity intrinsic
/// range in `f` against the slot sizes.
pub fn check(f: &Function, res: &Resolution) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut diag = |rule, severity, bid: smokestack_ir::BlockId, i, slot: usize, message| {
        out.push(Diagnostic {
            rule,
            severity,
            func: f.name.clone(),
            block: bid.0,
            inst: i,
            slot: Some(res.slots.get(slot).name.clone()),
            message,
            pos: None,
        });
    };
    for (bid, b) in f.iter_blocks() {
        for (i, inst) in b.insts.iter().enumerate() {
            match inst {
                Inst::Load { ptr, ty, .. } | Inst::Store { ptr, ty, .. } => {
                    let Base::Slot {
                        slot,
                        offset: Some(off),
                    } = res.value(*ptr).base
                    else {
                        continue;
                    };
                    let (Some(size), Some(acc)) = (res.slots.get(slot).size, ty.checked_size())
                    else {
                        continue;
                    };
                    if off < 0 || (off as u64).saturating_add(acc) > size {
                        let verb = if matches!(inst, Inst::Store { .. }) {
                            "store"
                        } else {
                            "load"
                        };
                        let name = &res.slots.get(slot).name;
                        diag(
                            rules::OOB_ACCESS,
                            Severity::Error,
                            bid,
                            i,
                            slot,
                            format!(
                                "{verb} of {acc} byte(s) at offset {off} outside `{name}` ({size} bytes)"
                            ),
                        );
                    }
                }
                Inst::Call { callee, args, .. } => {
                    for range in intrinsic_ranges(callee, args) {
                        let Base::Slot { slot, offset } = res.value(range.ptr).base else {
                            continue;
                        };
                        let Some(size) = res.slots.get(slot).size else {
                            continue;
                        };
                        let off = match offset {
                            Some(o) if o >= 0 => o as u64,
                            Some(o) => {
                                let name = &res.slots.get(slot).name;
                                diag(
                                    rules::OOB_INTRINSIC,
                                    Severity::Error,
                                    bid,
                                    i,
                                    slot,
                                    format!("intrinsic accesses `{name}` at negative offset {o}"),
                                );
                                continue;
                            }
                            None => continue, // dynamic: gadget surface, not a lint
                        };
                        let Some(cap) = range.len.and_then(|l| res.const_of(l)) else {
                            continue; // dynamic length: gadget surface
                        };
                        if cap < 0 {
                            continue;
                        }
                        let remaining = size.saturating_sub(off);
                        if cap as u64 > remaining {
                            let name = &res.slots.get(slot).name;
                            if range.writes {
                                // Input-driven writers only overflow when
                                // the input is long enough; bulk copies
                                // of a constant length always do.
                                let definite = matches!(
                                    callee,
                                    Callee::Intrinsic(
                                        Intrinsic::Memcpy
                                            | Intrinsic::Memset
                                            | Intrinsic::AtomicStore
                                            | Intrinsic::AtomicRmw
                                            | Intrinsic::MutexLock
                                            | Intrinsic::MutexUnlock
                                    )
                                );
                                if definite {
                                    diag(
                                        rules::OOB_INTRINSIC,
                                        Severity::Error,
                                        bid,
                                        i,
                                        slot,
                                        format!(
                                            "write of {cap} bytes into `{name}`+{off} overruns the slot ({remaining} bytes remain)"
                                        ),
                                    );
                                } else {
                                    diag(
                                        rules::OVERFLOW_CAPACITY,
                                        Severity::Warning,
                                        bid,
                                        i,
                                        slot,
                                        format!(
                                            "capacity {cap} exceeds the {remaining} bytes remaining in `{name}`+{off}: long input overflows"
                                        ),
                                    );
                                }
                            } else {
                                diag(
                                    rules::OOB_INTRINSIC,
                                    Severity::Error,
                                    bid,
                                    i,
                                    slot,
                                    format!(
                                        "read of {cap} bytes from `{name}`+{off} overruns the slot ({remaining} bytes remain)"
                                    ),
                                );
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokestack_ir::{Builder, Type};

    fn run(f: &Function) -> Vec<Diagnostic> {
        let res = Resolution::compute(f);
        check(f, &res)
    }

    #[test]
    fn const_index_store_past_end() {
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I8, 4), "buf");
        let addr = b.gep(buf.into(), Value::i64(6));
        b.store(Type::I8, Value::i8(1), addr.into());
        b.ret(None);
        let d = run(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::OOB_ACCESS);
        assert_eq!(d[0].severity, Severity::Error);
    }

    #[test]
    fn in_bounds_accesses_clean() {
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I8, 4), "buf");
        let addr = b.gep(buf.into(), Value::i64(3));
        b.store(Type::I8, Value::i8(1), addr.into());
        b.call_intrinsic(Intrinsic::GetInput, vec![buf.into(), Value::i64(4)]);
        b.ret(None);
        assert!(run(&f).is_empty());
    }

    #[test]
    fn oversized_get_input_capacity_warns() {
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I8, 16), "buf");
        b.call_intrinsic(Intrinsic::GetInput, vec![buf.into(), Value::i64(64)]);
        b.ret(None);
        let d = run(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::OVERFLOW_CAPACITY);
        assert_eq!(d[0].severity, Severity::Warning);
    }

    #[test]
    fn const_memcpy_overflow_is_error() {
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let dst = b.alloca(Type::array(Type::I8, 8), "dst");
        let src = b.alloca(Type::array(Type::I8, 32), "src");
        b.call_intrinsic(
            Intrinsic::Memcpy,
            vec![dst.into(), src.into(), Value::i64(32)],
        );
        b.ret(None);
        let d = run(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::OOB_INTRINSIC);
        assert_eq!(d[0].severity, Severity::Error);
        assert_eq!(d[0].slot.as_deref(), Some("dst"));
    }

    #[test]
    fn dynamic_length_not_a_lint() {
        let mut f = Function::new("f", vec![Type::I64], Type::Void);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I8, 16), "buf");
        b.call_intrinsic(
            Intrinsic::GetInput,
            vec![buf.into(), Value::Reg(smokestack_ir::RegId(0))],
        );
        b.ret(None);
        assert!(run(&f).is_empty());
    }
}
