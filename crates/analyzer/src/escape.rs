//! Address-taken / pointer-escape analysis per stack slot.
//!
//! A slot is *safe* when no pointer to it can exist outside the direct,
//! constant-offset, in-bounds accesses the function itself performs:
//! its address is never stored to memory, passed to a call or intrinsic,
//! returned, converted to an integer, or offset dynamically. Safe slots
//! cannot be reached by an out-of-bounds write and cannot source a DOP
//! dereference chain — this is the reachability classification
//! CleanStack applies to stack objects, and what the `prune_safe_slots`
//! instrumentation mode keys on.

use smokestack_ir::{Function, Inst, Terminator, Value};

use crate::provenance::{Base, Resolution};

/// How a slot's address leaks, plus access-shape facts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotFlags {
    /// Address stored into memory (`p = &x`).
    pub stored_to_memory: bool,
    /// Address passed as a call or intrinsic argument.
    pub passed_to_call: bool,
    /// Address returned to the caller.
    pub returned: bool,
    /// Address observed as an integer (ptrtoint, pointer comparison, or
    /// pointer-derived arithmetic).
    pub int_leaked: bool,
    /// Some access uses a dynamic (non-constant) offset.
    pub dynamic_access: bool,
    /// Some constant-offset access is statically out of bounds.
    pub oob_access: bool,
    /// Address crosses a thread boundary: passed as a `spawn` argument
    /// or used as an atomic/mutex word, so another thread may access
    /// the slot concurrently. A strictly stronger escape than
    /// `passed_to_call` — the slot is reachable even while this frame
    /// is live, which matters for TOCTOU-style cross-thread DOP.
    pub crosses_threads: bool,
}

impl SlotFlags {
    /// Whether the address never leaves the function's direct accesses.
    pub fn address_escapes(&self) -> bool {
        self.stored_to_memory || self.passed_to_call || self.returned || self.int_leaked
    }
}

/// Per-slot escape/access facts for one function.
#[derive(Debug, Clone)]
pub struct EscapeSummary {
    /// Flags, indexed like the [`crate::provenance::SlotTable`].
    pub flags: Vec<SlotFlags>,
}

impl EscapeSummary {
    /// Scan `f` and classify every slot.
    pub fn analyze(f: &Function, res: &Resolution) -> EscapeSummary {
        let mut flags = vec![SlotFlags::default(); res.slots.len()];
        let slot_of = |v: Value| match res.value(v).base {
            Base::Slot { slot, offset } => Some((slot, offset)),
            _ => None,
        };
        for (_, b) in f.iter_blocks() {
            for inst in &b.insts {
                match inst {
                    Inst::Alloca { count, .. } => {
                        // A VLA length that is a slot address would be
                        // bizarre, but treat it as a leak if it happens.
                        if let Some(v) = count {
                            if let Some((s, _)) = slot_of(*v) {
                                flags[s].int_leaked = true;
                            }
                        }
                    }
                    Inst::Load { ptr, ty, .. } => {
                        if let Some((s, off)) = slot_of(*ptr) {
                            record_access(&mut flags[s], res, s, off, ty.checked_size());
                        }
                    }
                    Inst::Store { val, ptr, ty } => {
                        if let Some((s, _)) = slot_of(*val) {
                            flags[s].stored_to_memory = true;
                        }
                        if let Some((s, off)) = slot_of(*ptr) {
                            record_access(&mut flags[s], res, s, off, ty.checked_size());
                        }
                    }
                    // Geps themselves are address formation, not leaks;
                    // what matters is where the result flows, and that
                    // is caught at the consuming instruction via
                    // provenance. Dynamic-offset geps are recorded when
                    // the resulting pointer is actually used, so a
                    // never-used dangling gep does not unsafe a slot —
                    // except that computing it leaks nothing anyway.
                    Inst::Gep { .. } => {}
                    Inst::Bin { lhs, rhs, .. } | Inst::Icmp { lhs, rhs, .. } => {
                        for v in [lhs, rhs] {
                            if let Some((s, _)) = slot_of(*v) {
                                flags[s].int_leaked = true;
                            }
                        }
                    }
                    Inst::Cast { kind, val, .. } => {
                        if let Some((s, _)) = slot_of(*val) {
                            if matches!(kind, smokestack_ir::CastKind::PtrToInt) {
                                flags[s].int_leaked = true;
                            }
                        }
                    }
                    Inst::Call { callee, args, .. } => {
                        let crosses = matches!(
                            callee,
                            smokestack_ir::Callee::Intrinsic(
                                smokestack_ir::Intrinsic::Spawn
                                    | smokestack_ir::Intrinsic::AtomicLoad
                                    | smokestack_ir::Intrinsic::AtomicStore
                                    | smokestack_ir::Intrinsic::AtomicRmw
                                    | smokestack_ir::Intrinsic::MutexLock
                                    | smokestack_ir::Intrinsic::MutexUnlock
                            )
                        );
                        for v in args {
                            if let Some((s, _)) = slot_of(*v) {
                                flags[s].passed_to_call = true;
                                if crosses {
                                    flags[s].crosses_threads = true;
                                }
                            }
                        }
                        if let smokestack_ir::Callee::Indirect(v) = callee {
                            if let Some((s, _)) = slot_of(*v) {
                                flags[s].int_leaked = true;
                            }
                        }
                    }
                }
            }
            if let Terminator::Ret(Some(v)) = &b.term {
                if let Some((s, _)) = slot_of(*v) {
                    flags[s].returned = true;
                }
            }
            if let Terminator::CondBr { cond, .. } = &b.term {
                if let Some((s, _)) = slot_of(*cond) {
                    flags[s].int_leaked = true;
                }
            }
        }
        EscapeSummary { flags }
    }

    /// Slots that are provably non-attacker-reachable: fixed-size, no
    /// address escape, no dynamic or out-of-bounds access.
    pub fn safe_mask(&self, res: &Resolution) -> Vec<bool> {
        self.flags
            .iter()
            .enumerate()
            .map(|(i, fl)| {
                let slot = res.slots.get(i);
                !slot.is_vla
                    && slot.size.is_some()
                    && !fl.address_escapes()
                    && !fl.dynamic_access
                    && !fl.oob_access
            })
            .collect()
    }
}

fn record_access(
    fl: &mut SlotFlags,
    res: &Resolution,
    slot: usize,
    off: Option<i64>,
    access_size: Option<u64>,
) {
    match off {
        None => fl.dynamic_access = true,
        Some(o) => {
            let size = res.slots.get(slot).size;
            match (size, access_size) {
                (Some(sz), Some(acc)) => {
                    if o < 0 || (o as u64).saturating_add(acc) > sz {
                        fl.oob_access = true;
                    }
                }
                // VLA or unsized access: can't bound statically.
                _ => fl.dynamic_access = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Resolution;
    use smokestack_ir::{Builder, Function, Intrinsic, Type, Value};

    fn analyze(f: &Function) -> (Resolution, EscapeSummary) {
        let res = Resolution::compute(f);
        let esc = EscapeSummary::analyze(f, &res);
        (res, esc)
    }

    #[test]
    fn direct_scalar_is_safe() {
        let mut f = Function::new("f", vec![], Type::I64);
        let mut b = Builder::new(&mut f);
        let x = b.alloca(Type::I64, "x");
        b.store(Type::I64, Value::i64(3), x.into());
        let v = b.load(Type::I64, x.into());
        b.ret(Some(v.into()));
        let (res, esc) = analyze(&f);
        assert_eq!(esc.safe_mask(&res), vec![true]);
    }

    #[test]
    fn intrinsic_arg_escapes() {
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I8, 16), "buf");
        b.call_intrinsic(Intrinsic::GetInput, vec![buf.into(), Value::i64(16)]);
        b.ret(None);
        let (res, esc) = analyze(&f);
        assert!(esc.flags[0].passed_to_call);
        assert_eq!(esc.safe_mask(&res), vec![false]);
    }

    #[test]
    fn cross_thread_escapes_are_classified() {
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let word = b.alloca(Type::I64, "word");
        let payload = b.alloca(Type::I64, "payload");
        let local = b.alloca(Type::array(Type::I8, 8), "local");
        b.call_intrinsic(
            Intrinsic::AtomicStore,
            vec![word.into(), Value::i64(1), Value::i64(0)],
        );
        b.call_intrinsic(
            Intrinsic::Spawn,
            vec![Value::Func(smokestack_ir::FuncId(0)), payload.into()],
        );
        b.call_intrinsic(Intrinsic::Strlen, vec![local.into()]);
        b.ret(None);
        let (res, esc) = analyze(&f);
        // The atomic word and the spawn payload are reachable from the
        // other thread; the strlen argument escapes but stays
        // thread-local.
        assert!(esc.flags[0].crosses_threads);
        assert!(esc.flags[1].crosses_threads);
        assert!(esc.flags[2].passed_to_call && !esc.flags[2].crosses_threads);
        assert_eq!(esc.safe_mask(&res), vec![false, false, false]);
    }

    #[test]
    fn stored_address_escapes() {
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let x = b.alloca(Type::I64, "x");
        let p = b.alloca(Type::Ptr, "p");
        b.store(Type::Ptr, x.into(), p.into());
        b.ret(None);
        let (res, esc) = analyze(&f);
        assert!(esc.flags[0].stored_to_memory);
        // x escapes; p itself is still safe (only direct stores).
        assert_eq!(esc.safe_mask(&res), vec![false, true]);
    }

    #[test]
    fn dynamic_index_marks_slot() {
        let mut f = Function::new("f", vec![Type::I64], Type::Void);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I8, 8), "buf");
        let addr = b.gep(buf.into(), Value::Reg(smokestack_ir::RegId(0)));
        b.store(Type::I8, Value::i8(1), addr.into());
        b.ret(None);
        let (res, esc) = analyze(&f);
        assert!(esc.flags[0].dynamic_access);
        assert_eq!(esc.safe_mask(&res), vec![false]);
    }

    #[test]
    fn const_oob_marks_slot() {
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I8, 4), "buf");
        let addr = b.gep(buf.into(), Value::i64(6));
        b.store(Type::I8, Value::i8(1), addr.into());
        b.ret(None);
        let (res, esc) = analyze(&f);
        assert!(esc.flags[0].oob_access);
        assert_eq!(esc.safe_mask(&res), vec![false]);
    }
}
