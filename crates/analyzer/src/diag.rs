//! Structured analysis diagnostics: location, severity, stable rule IDs,
//! and text/JSON rendering.

use std::fmt;

use smokestack_telemetry::json::push_json_str;

/// How serious a finding is.
///
/// The analyzer reserves `Error` for accesses that are wrong on every
/// execution (e.g. a constant-index store past the end of a slot) and
/// `Warning` for defects that need particular inputs or paths to fire
/// (uninitialized reads, writable capacity larger than the destination).
/// `Info` findings are surface observations — they never fail a
/// `--deny-warnings` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: part of the gadget/attack-surface picture, not a
    /// defect by itself.
    Info,
    /// May misbehave on some input or path.
    Warning,
    /// Wrong on every execution that reaches it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable rule identifiers. Tests and CI match on these, so they are
/// part of the crate's public contract: never renumber or reuse.
pub mod rules {
    /// Load from a slot that may not have been stored on some path.
    pub const UNINIT_READ: &str = "uninit-read";
    /// Constant-offset load/store outside the slot's extent.
    pub const OOB_ACCESS: &str = "oob-access";
    /// `memcpy`/`memset` with a constant length that definitely
    /// overruns the destination (or overreads the source) slot.
    pub const OOB_INTRINSIC: &str = "oob-intrinsic";
    /// Unchecked-input intrinsic (`get_input`, `read_line`,
    /// `snprintf_cat`) whose constant capacity exceeds the remaining
    /// bytes of the destination slot.
    pub const OVERFLOW_CAPACITY: &str = "overflow-capacity";
}

/// A source position (1-based line/column), when the front-end provided
/// a source map for the module under analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrcPos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One finding, anchored to an IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule identifier (see [`rules`]).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Enclosing function name.
    pub func: String,
    /// Basic block index.
    pub block: u32,
    /// Instruction index within the block.
    pub inst: usize,
    /// The stack slot involved, when the finding concerns one.
    pub slot: Option<String>,
    /// Human-readable description.
    pub message: String,
    /// Source position of the involved slot's declaration, when a
    /// source map was applied.
    pub pos: Option<SrcPos>,
}

impl Diagnostic {
    /// Render as a single compiler-style text line.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{}: [{}] {} (in {}, bb{} #{}",
            self.severity, self.rule, self.message, self.func, self.block, self.inst
        );
        if let Some(p) = self.pos {
            out.push_str(&format!(", declared at {}:{}", p.line, p.col));
        }
        out.push(')');
        out
    }

    /// Append this diagnostic as a JSON object to `out`.
    pub fn push_json(&self, out: &mut String) {
        out.push_str("{\"rule\":");
        push_json_str(out, self.rule);
        out.push_str(",\"severity\":");
        push_json_str(out, &self.severity.to_string());
        out.push_str(",\"func\":");
        push_json_str(out, &self.func);
        out.push_str(&format!(",\"block\":{},\"inst\":{}", self.block, self.inst));
        if let Some(slot) = &self.slot {
            out.push_str(",\"slot\":");
            push_json_str(out, slot);
        }
        if let Some(p) = self.pos {
            out.push_str(&format!(",\"line\":{},\"col\":{}", p.line, p.col));
        }
        out.push_str(",\"message\":");
        push_json_str(out, &self.message);
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: rules::OOB_ACCESS,
            severity: Severity::Error,
            func: "main".into(),
            block: 0,
            inst: 3,
            slot: Some("buf".into()),
            message: "store of 1 byte at offset 6 past `buf` (4 bytes)".into(),
            pos: Some(SrcPos { line: 2, col: 5 }),
        }
    }

    #[test]
    fn text_rendering_includes_location() {
        let t = sample().render_text();
        assert!(t.starts_with("error: [oob-access]"));
        assert!(t.contains("bb0 #3"));
        assert!(t.contains("2:5"));
    }

    #[test]
    fn json_is_flat_and_parseable() {
        let mut s = String::new();
        sample().push_json(&mut s);
        let obj = smokestack_telemetry::json::parse_flat_object(&s).unwrap();
        assert_eq!(obj["rule"].as_str(), Some("oob-access"));
        assert_eq!(obj["severity"].as_str(), Some("error"));
        assert_eq!(obj["block"].as_u64(), Some(0));
        assert_eq!(obj["slot"].as_str(), Some("buf"));
        assert_eq!(obj["line"].as_u64(), Some(2));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
