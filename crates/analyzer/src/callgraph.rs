//! Direct call graph over an [`smokestack_ir::Module`].
//!
//! Only `Callee::Direct` edges are represented: intrinsics have no IR
//! body to analyze, and indirect calls are handled conservatively by
//! the consumers (an indirect call is an escape, never a summary
//! application). The graph supplies the bottom-up SCC order the
//! interprocedural summary fixpoint iterates in, plus transitive-caller
//! queries the chain pass uses to enumerate the frames an overflow
//! write can sweep into.

use smokestack_ir::{Callee, FuncId, Inst, Module};

/// One direct call instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// The calling function.
    pub caller: FuncId,
    /// The called function.
    pub callee: FuncId,
    /// Basic block of the call.
    pub block: u32,
    /// Instruction index within the block.
    pub inst: usize,
}

/// A transitive caller of some function, with its call distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ancestor {
    /// The (transitive) calling function.
    pub func: FuncId,
    /// Minimum number of call edges from the function queried about
    /// (direct caller = 1).
    pub depth: u32,
}

/// The direct call graph of a module.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Per-function direct callees, deduplicated, in first-call order.
    pub callees: Vec<Vec<FuncId>>,
    /// Per-function direct callers, deduplicated, in `FuncId` order.
    pub callers: Vec<Vec<FuncId>>,
    /// Every direct call site, grouped by caller, in program order.
    pub sites: Vec<Vec<CallSite>>,
    /// Strongly connected components in bottom-up order: every
    /// component appears after all components it calls into.
    pub sccs: Vec<Vec<FuncId>>,
    scc_of: Vec<usize>,
}

impl CallGraph {
    /// Build the graph for `m`.
    pub fn compute(m: &Module) -> CallGraph {
        let n = m.funcs.len();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut sites: Vec<Vec<CallSite>> = vec![Vec::new(); n];
        for (fid, f) in m.iter_funcs() {
            for (bid, b) in f.iter_blocks() {
                for (i, inst) in b.insts.iter().enumerate() {
                    if let Inst::Call {
                        callee: Callee::Direct(g),
                        ..
                    } = inst
                    {
                        sites[fid.0 as usize].push(CallSite {
                            caller: fid,
                            callee: *g,
                            block: bid.0,
                            inst: i,
                        });
                        if !callees[fid.0 as usize].contains(g) {
                            callees[fid.0 as usize].push(*g);
                        }
                        if !callers[g.0 as usize].contains(&fid) {
                            callers[g.0 as usize].push(fid);
                        }
                    }
                }
            }
        }
        for c in &mut callers {
            c.sort_by_key(|f| f.0);
        }
        let (sccs, scc_of) = tarjan(n, &callees);
        CallGraph {
            callees,
            callers,
            sites,
            sccs,
            scc_of,
        }
    }

    /// Functions in bottom-up order: callees before callers (members of
    /// a cycle appear together, in `FuncId` order within the cycle).
    pub fn bottom_up(&self) -> Vec<FuncId> {
        self.sccs.iter().flatten().copied().collect()
    }

    /// Whether `f` is part of a call cycle (including self-recursion).
    pub fn in_cycle(&self, f: FuncId) -> bool {
        let scc = &self.sccs[self.scc_of[f.0 as usize]];
        scc.len() > 1 || self.callees[f.0 as usize].contains(&f)
    }

    /// All transitive callers of `f` with their minimum call distance,
    /// in breadth-first (distance, then `FuncId`) order. `f` itself is
    /// included only if it is reachable from itself through a cycle.
    pub fn ancestors(&self, f: FuncId) -> Vec<Ancestor> {
        let mut depth: Vec<Option<u32>> = vec![None; self.callers.len()];
        let mut frontier = vec![f];
        let mut d = 0u32;
        let mut out = Vec::new();
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for g in frontier {
                for &c in &self.callers[g.0 as usize] {
                    if depth[c.0 as usize].is_none() {
                        depth[c.0 as usize] = Some(d);
                        out.push(Ancestor { func: c, depth: d });
                        next.push(c);
                    }
                }
            }
            next.sort_by_key(|f| f.0);
            next.dedup();
            frontier = next;
        }
        out
    }

    /// Direct call sites targeting `f`, in (caller, program) order.
    pub fn sites_calling(&self, f: FuncId) -> Vec<CallSite> {
        self.sites
            .iter()
            .flatten()
            .filter(|s| s.callee == f)
            .copied()
            .collect()
    }
}

/// Iterative Tarjan SCC; components are emitted callees-first, which is
/// exactly the bottom-up summary order.
fn tarjan(n: usize, succs: &[Vec<FuncId>]) -> (Vec<Vec<FuncId>>, Vec<usize>) {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: u32,
        lowlink: u32,
        on_stack: bool,
        visited: bool,
    }
    let mut st = vec![
        NodeState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut counter = 0u32;
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<FuncId>> = Vec::new();
    let mut scc_of = vec![0usize; n];

    // Explicit DFS frames: (node, next-successor index).
    for root in 0..n {
        if st[root].visited {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut next)) = frames.last_mut() {
            if *next == 0 {
                st[v].visited = true;
                st[v].index = counter;
                st[v].lowlink = counter;
                counter += 1;
                st[v].on_stack = true;
                stack.push(v);
            }
            if let Some(w) = succs[v].get(*next).map(|f| f.0 as usize) {
                *next += 1;
                if !st[w].visited {
                    frames.push((w, 0));
                } else if st[w].on_stack {
                    st[v].lowlink = st[v].lowlink.min(st[w].index);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    let low = st[v].lowlink;
                    st[p].lowlink = st[p].lowlink.min(low);
                }
                if st[v].lowlink == st[v].index {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        st[w].on_stack = false;
                        scc_of[w] = sccs.len();
                        comp.push(FuncId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_by_key(|f| f.0);
                    sccs.push(comp);
                }
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokestack_ir::{Builder, Function, Type};

    /// main -> a -> b, main -> b, c <-> d (cycle), main -> c.
    fn sample() -> Module {
        let mut m = Module::new();
        let mk = |name: &str| Function::new(name, vec![], Type::Void);
        let fa = m.add_func(mk("a"));
        let fb = m.add_func(mk("b"));
        let fc = m.add_func(mk("c"));
        let fd = m.add_func(mk("d"));
        let fmain = m.add_func(mk("main"));
        let call_one = |f: &mut Function, target: FuncId| {
            let mut b = Builder::new(f);
            b.call(target, Type::Void, vec![]);
            b.ret(None);
        };
        {
            let mut b = Builder::new(m.func_mut(fb));
            b.ret(None);
        }
        call_one(m.func_mut(fa), fb);
        call_one(m.func_mut(fc), fd);
        call_one(m.func_mut(fd), fc);
        {
            let mut b = Builder::new(m.func_mut(fmain));
            b.call(fa, Type::Void, vec![]);
            b.call(fb, Type::Void, vec![]);
            b.call(fc, Type::Void, vec![]);
            b.ret(None);
        }
        m
    }

    #[test]
    fn edges_and_sites() {
        let m = sample();
        let cg = CallGraph::compute(&m);
        let main = m.func_by_name("main").unwrap();
        let a = m.func_by_name("a").unwrap();
        let b = m.func_by_name("b").unwrap();
        assert_eq!(
            cg.callees[main.0 as usize],
            vec![a, b, m.func_by_name("c").unwrap()]
        );
        assert_eq!(cg.callers[b.0 as usize], vec![a, main]);
        assert_eq!(cg.sites[main.0 as usize].len(), 3);
    }

    #[test]
    fn bottom_up_puts_callees_first() {
        let m = sample();
        let cg = CallGraph::compute(&m);
        let order = cg.bottom_up();
        let pos = |n: &str| {
            let f = m.func_by_name(n).unwrap();
            order.iter().position(|&g| g == f).unwrap()
        };
        assert!(pos("b") < pos("a"));
        assert!(pos("a") < pos("main"));
        assert!(pos("c") < pos("main"));
    }

    #[test]
    fn cycle_detected() {
        let m = sample();
        let cg = CallGraph::compute(&m);
        assert!(cg.in_cycle(m.func_by_name("c").unwrap()));
        assert!(cg.in_cycle(m.func_by_name("d").unwrap()));
        assert!(!cg.in_cycle(m.func_by_name("b").unwrap()));
        assert!(!cg.in_cycle(m.func_by_name("main").unwrap()));
    }

    #[test]
    fn ancestors_with_depth() {
        let m = sample();
        let cg = CallGraph::compute(&m);
        let b = m.func_by_name("b").unwrap();
        let anc = cg.ancestors(b);
        let a = m.func_by_name("a").unwrap();
        let main = m.func_by_name("main").unwrap();
        assert!(anc.contains(&Ancestor { func: a, depth: 1 }));
        assert!(anc.contains(&Ancestor {
            func: main,
            depth: 1
        }));
        assert_eq!(anc.len(), 2, "{anc:?}");
        // Cycle members are their own ancestors.
        let c = m.func_by_name("c").unwrap();
        assert!(cg.ancestors(c).iter().any(|x| x.func == c));
    }
}
