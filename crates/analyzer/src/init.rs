//! Definite-initialization analysis: flag loads from stack slots that
//! are not stored on *some* path from function entry.
//!
//! Forward may-analysis over the worklist solver: the state is one
//! "may be uninitialized" bit per slot, joined by union. A slot becomes
//! initialized when the function stores to it directly, or at the first
//! point its address is exposed (passed to a call or intrinsic, stored
//! into memory) — after that, writes through the exposed pointer are
//! possible and the analysis stays quiet rather than guess.
//!
//! Slots with any *dynamic-offset* store are exempt entirely: the
//! `for (i = 0; ...) buf[i] = ...;` initialization idiom always has a
//! zero-trip CFG path the path-insensitive analysis cannot rule out,
//! and flagging every loop-initialized buffer would bury the real
//! findings. The rule therefore only fires where every store to the
//! slot is at a constant offset — scalars and field-wise struct
//! initialization — which is where the paper's uninitialized-read bug
//! class lives anyway.

use smokestack_ir::cfg::Cfg;
use smokestack_ir::{BlockId, Function, Inst};

use crate::dataflow::{solve, DataflowAnalysis, Direction};
use crate::diag::{rules, Diagnostic, Severity};
use crate::escape::EscapeSummary;
use crate::provenance::{Base, Resolution};

struct MayUninit<'a> {
    res: &'a Resolution,
    esc: &'a EscapeSummary,
}

impl<'a> MayUninit<'a> {
    /// Apply one instruction's initialization effects to `state`.
    fn apply(&self, state: &mut [bool], inst: &Inst) {
        let slot_of = |v| match self.res.value(v).base {
            Base::Slot { slot, .. } => Some(slot),
            _ => None,
        };
        match inst {
            Inst::Store { val, ptr, .. } => {
                match slot_of(*ptr) {
                    Some(s) => state[s] = false,
                    // A store through an unknown pointer may initialize
                    // any slot whose address has escaped.
                    None => self.clear_escaped(state),
                }
                // The address now lives in memory; writes through it
                // can happen anywhere. Treat as initialization.
                if let Some(s) = slot_of(*val) {
                    state[s] = false;
                }
            }
            Inst::Call { args, .. } => {
                // The callee may initialize anything it got a pointer
                // to (get_input(&n, ..) is the canonical case).
                for a in args {
                    if let Some(s) = slot_of(*a) {
                        state[s] = false;
                    }
                }
            }
            _ => {}
        }
    }

    fn clear_escaped(&self, state: &mut [bool]) {
        for (s, fl) in self.esc.flags.iter().enumerate() {
            if fl.address_escapes() {
                state[s] = false;
            }
        }
    }
}

impl<'a> DataflowAnalysis for MayUninit<'a> {
    type State = Vec<bool>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary_state(&self, _f: &Function) -> Vec<bool> {
        // At entry every fixed slot is uninitialized. VLAs are exempt:
        // their data is only reachable through a loaded pointer, which
        // the analysis cannot attribute, so tracking them would be
        // noise.
        self.res.slots.slots.iter().map(|s| !s.is_vla).collect()
    }

    fn init_state(&self, _f: &Function) -> Vec<bool> {
        vec![false; self.res.slots.len()]
    }

    fn join(&self, into: &mut Vec<bool>, other: &Vec<bool>) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(other) {
            if *b && !*a {
                *a = true;
                changed = true;
            }
        }
        changed
    }

    fn transfer_inst(&self, state: &mut Vec<bool>, _b: BlockId, _i: usize, inst: &Inst) {
        self.apply(state, inst);
    }
}

/// Slots that receive at least one store at a *dynamic* offset.
///
/// Such slots are initialized element-wise (typically by a loop) and the
/// path-insensitive analysis would flag the infeasible zero-trip path, so
/// `check` suppresses the rule for them entirely.
fn loop_initialized(f: &Function, res: &Resolution) -> Vec<bool> {
    let mut dynamic = vec![false; res.slots.len()];
    for (_, block) in f.iter_blocks() {
        for inst in &block.insts {
            if let Inst::Store { ptr, .. } = inst {
                if let Base::Slot { slot, offset: None } = res.value(*ptr).base {
                    dynamic[slot] = true;
                }
            }
        }
    }
    dynamic
}

/// Run the analysis and report every load from a may-uninitialized slot.
pub fn check(f: &Function, cfg: &Cfg, res: &Resolution, esc: &EscapeSummary) -> Vec<Diagnostic> {
    if res.slots.is_empty() {
        return Vec::new();
    }
    let suppressed = loop_initialized(f, res);
    let analysis = MayUninit { res, esc };
    let states = solve(f, cfg, &analysis);
    let mut out = Vec::new();
    for (bid, block) in f.iter_blocks() {
        // Unreachable blocks keep the bottom state (nothing may-uninit),
        // so dead code after `return` stays quiet.
        let mut state = states.entry(bid).clone();
        for (i, inst) in block.insts.iter().enumerate() {
            if let Inst::Load { ptr, .. } = inst {
                if let Base::Slot { slot, .. } = res.value(*ptr).base {
                    if state[slot] && !suppressed[slot] {
                        let s = res.slots.get(slot);
                        out.push(Diagnostic {
                            rule: rules::UNINIT_READ,
                            severity: Severity::Warning,
                            func: f.name.clone(),
                            block: bid.0,
                            inst: i,
                            slot: Some(s.name.clone()),
                            message: format!(
                                "load from `{}` which may be uninitialized on some path",
                                s.name
                            ),
                            pos: None,
                        });
                    }
                }
            }
            analysis.apply(&mut state, inst);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::escape::EscapeSummary;
    use smokestack_ir::{Builder, Type, Value};

    fn run(f: &Function) -> Vec<Diagnostic> {
        let cfg = Cfg::compute(f);
        let res = Resolution::compute(f);
        let esc = EscapeSummary::analyze(f, &res);
        check(f, &cfg, &res, &esc)
    }

    #[test]
    fn straight_line_uninit_read_flagged() {
        let mut f = Function::new("f", vec![], Type::I64);
        let mut b = Builder::new(&mut f);
        let x = b.alloca(Type::I64, "x");
        let v = b.load(Type::I64, x.into());
        b.ret(Some(v.into()));
        let d = run(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::UNINIT_READ);
        assert_eq!(d[0].slot.as_deref(), Some("x"));
    }

    #[test]
    fn store_then_load_clean() {
        let mut f = Function::new("f", vec![], Type::I64);
        let mut b = Builder::new(&mut f);
        let x = b.alloca(Type::I64, "x");
        b.store(Type::I64, Value::i64(1), x.into());
        let v = b.load(Type::I64, x.into());
        b.ret(Some(v.into()));
        assert!(run(&f).is_empty());
    }

    #[test]
    fn one_armed_init_flagged() {
        // if (c) x = 1; return x;  -> x may be uninit on the else path.
        let mut f = Function::new("f", vec![Type::I8], Type::I64);
        let mut b = Builder::new(&mut f);
        let x = b.alloca(Type::I64, "x");
        let then_bb = b.new_block();
        let join = b.new_block();
        b.cond_br(Value::Reg(smokestack_ir::RegId(0)), then_bb, join);
        b.switch_to(then_bb);
        b.store(Type::I64, Value::i64(1), x.into());
        b.br(join);
        b.switch_to(join);
        let v = b.load(Type::I64, x.into());
        b.ret(Some(v.into()));
        let d = run(&f);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn both_arms_init_clean() {
        let mut f = Function::new("f", vec![Type::I8], Type::I64);
        let mut b = Builder::new(&mut f);
        let x = b.alloca(Type::I64, "x");
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        let join = b.new_block();
        b.cond_br(Value::Reg(smokestack_ir::RegId(0)), then_bb, else_bb);
        b.switch_to(then_bb);
        b.store(Type::I64, Value::i64(1), x.into());
        b.br(join);
        b.switch_to(else_bb);
        b.store(Type::I64, Value::i64(2), x.into());
        b.br(join);
        b.switch_to(join);
        let v = b.load(Type::I64, x.into());
        b.ret(Some(v.into()));
        assert!(run(&f).is_empty());
    }

    #[test]
    fn loop_initialized_array_not_flagged() {
        // for (i = 0; i < n; i++) buf[i] = 0;  x = buf[0];
        // The zero-trip path never stores, but any dynamic-offset store
        // marks the slot as loop-initialized and suppresses the rule.
        let mut f = Function::new("f", vec![Type::I64], Type::I64);
        let mut b = Builder::new(&mut f);
        let buf = b.alloca(Type::array(Type::I8, 16), "buf");
        let i = b.alloca(Type::I64, "i");
        b.store(Type::I64, Value::i64(0), i.into());
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(head);
        b.switch_to(head);
        let iv = b.load(Type::I64, i.into());
        let c = b.icmp(
            smokestack_ir::CmpPred::Slt,
            smokestack_ir::IntWidth::W64,
            iv.into(),
            Value::Reg(smokestack_ir::RegId(0)),
        );
        b.cond_br(c.into(), body, exit);
        b.switch_to(body);
        let iv2 = b.load(Type::I64, i.into());
        let p = b.gep(buf.into(), iv2.into());
        b.store(Type::I8, Value::i64(0), p.into());
        let next = b.bin(
            smokestack_ir::BinOp::Add,
            smokestack_ir::IntWidth::W64,
            iv2.into(),
            Value::i64(1),
        );
        b.store(Type::I64, Value::Reg(next), i.into());
        b.br(head);
        b.switch_to(exit);
        let first = b.load(Type::I8, buf.into());
        b.ret(Some(first.into()));
        assert!(run(&f).is_empty());
    }

    #[test]
    fn escape_to_intrinsic_counts_as_init() {
        let mut f = Function::new("f", vec![], Type::I64);
        let mut b = Builder::new(&mut f);
        let n = b.alloca(Type::I64, "n");
        b.call_intrinsic(
            smokestack_ir::Intrinsic::GetInput,
            vec![n.into(), Value::i64(8)],
        );
        let v = b.load(Type::I64, n.into());
        b.ret(Some(v.into()));
        assert!(run(&f).is_empty());
    }
}
