//! Automated DOP payload synthesis (the STEROIDS loop, defender-side).
//!
//! [`crate::chain`] reports *what* an overflow entry can reach; this
//! module turns a chain report plus an attacker **goal** into concrete
//! [`PayloadPlan`]s: which steered slots must receive which values
//! (offset / width / value schedule) for the program's own gadgets to
//! carry out the goal. Plans are purely static — they name functions,
//! slots and globals symbolically; the runtime adapter (the attacks
//! crate's `SynthesizedAttack`) resolves them against a disclosed
//! baseline layout and validates each candidate in the VM. The VM is
//! the ground truth: the planner is allowed to emit candidates that a
//! validation run rejects, but everything it emits is deterministic.
//!
//! Three goal shapes cover the paper's case studies:
//!
//! * `leak <global>` — make program output contain the global's bytes
//!   (the librelp/ProFTPD key exfiltrations);
//! * `flip <global> = <v>` / `flip <global> += <v>` — force a write of
//!   `v` into a global, directly or through an accumulate gadget (the
//!   Wireshark `bot_commands` escalation);
//! * `redirect <func>:<slot> -> <global> = <v>` — corrupt a data
//!   pointer held in a stack slot so the program's own `*p = v` store
//!   lands on the global (the RIPE indirect shapes).

use std::collections::HashSet;

use smokestack_telemetry::json::push_json_str;

use smokestack_ir::{BinOp, BlockId, Callee, FuncId, Function, Inst, Intrinsic, Module, Value};

use crate::chain::{find_def, slot_load, strip_casts, Chain, ChainReport, Mechanic};
use crate::provenance::{Base, Resolution};

/// What the synthesized payload must make the program do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Goal {
    /// Program output must contain the global's (NUL-terminated) bytes.
    Leak {
        /// Name of the global holding the secret.
        global: String,
    },
    /// A global must end up holding (or having accumulated) `value`.
    Flip {
        /// Name of the written global.
        global: String,
        /// The value to plant.
        value: i64,
        /// `true` for `+=` accumulate gadgets (`g = g + x`), `false`
        /// for a direct `g = x` store.
        accumulate: bool,
    },
    /// A data pointer held in a stack slot must be redirected at a
    /// global, and the program's indirect store must write `value`.
    Redirect {
        /// Function owning the pointer slot.
        func: String,
        /// Name of the pointer slot.
        slot: String,
        /// Global the pointer is aimed at.
        global: String,
        /// Value the indirect store must deliver.
        value: i64,
    },
}

impl Goal {
    /// Parse the goal language used by the `synth` CLI:
    ///
    /// * `leak <global>`
    /// * `flip <global> = <value>` / `flip <global> += <value>`
    /// * `redirect <func>:<slot> -> <global> = <value>`
    pub fn parse(s: &str) -> Option<Goal> {
        let s = s.trim();
        if let Some(rest) = s.strip_prefix("leak ") {
            let g = rest.trim();
            if g.is_empty() || g.contains(' ') {
                return None;
            }
            return Some(Goal::Leak {
                global: g.to_string(),
            });
        }
        if let Some(rest) = s.strip_prefix("flip ") {
            let (lhs, rhs, accumulate) = match rest.split_once("+=") {
                Some((l, r)) => (l, r, true),
                None => {
                    let (l, r) = rest.split_once('=')?;
                    (l, r, false)
                }
            };
            return Some(Goal::Flip {
                global: lhs.trim().to_string(),
                value: rhs.trim().parse().ok()?,
                accumulate,
            });
        }
        if let Some(rest) = s.strip_prefix("redirect ") {
            let (ptr, target) = rest.split_once("->")?;
            let (func, slot) = ptr.trim().split_once(':')?;
            let (global, value) = target.split_once('=')?;
            return Some(Goal::Redirect {
                func: func.trim().to_string(),
                slot: slot.trim().to_string(),
                global: global.trim().to_string(),
                value: value.trim().parse().ok()?,
            });
        }
        None
    }

    /// Render in the same syntax [`Goal::parse`] accepts.
    pub fn render(&self) -> String {
        match self {
            Goal::Leak { global } => format!("leak {global}"),
            Goal::Flip {
                global,
                value,
                accumulate,
            } => {
                if *accumulate {
                    format!("flip {global} += {value}")
                } else {
                    format!("flip {global} = {value}")
                }
            }
            Goal::Redirect {
                func,
                slot,
                global,
                value,
            } => format!("redirect {func}:{slot} -> {global} = {value}"),
        }
    }
}

/// A value the payload plants; addresses are symbolic until the runtime
/// resolves them against a concrete deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymValue {
    /// A concrete integer, stamped little-endian at the write's width.
    Int(i64),
    /// The runtime address of a named global.
    GlobalAddr(String),
}

/// One word the overflow must plant in a steered slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanWrite {
    /// Function owning the slot.
    pub func: String,
    /// Slot name.
    pub slot: String,
    /// Byte offset within the slot.
    pub offset: i64,
    /// Width of the write, in bytes.
    pub width: u64,
    /// The planted value.
    pub value: SymValue,
}

/// How the runtime adapter verifies the goal after the victim run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoalCheck {
    /// The global's 8-byte word equals `value`.
    GlobalEquals {
        /// Checked global.
        global: String,
        /// Expected value.
        value: i64,
    },
    /// The global's 8-byte word is at least `value` (accumulate
    /// gadgets may fire more than once).
    GlobalAtLeast {
        /// Checked global.
        global: String,
        /// Minimum value.
        value: i64,
    },
    /// Program output contains the global's NUL-terminated bytes.
    OutputContainsGlobal {
        /// Leaked global.
        global: String,
    },
}

/// A complete static payload: entry, mechanic, and write schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PayloadPlan {
    /// The goal this plan serves, in [`Goal::parse`] syntax.
    pub goal: String,
    /// Function whose frame the overflow enters through.
    pub entry_func: String,
    /// The entry slot (sweep origin / cursor base).
    pub entry_slot: String,
    /// Write mechanic of the entry.
    pub mechanic: Mechanic,
    /// Slot feeding the dynamic length, when the entry has the
    /// length-header shape.
    pub feed: Option<String>,
    /// Whether the entry was lifted from a callee's unbounded write.
    pub lifted: bool,
    /// The write schedule, sorted by (function, slot, offset).
    pub writes: Vec<PlanWrite>,
    /// Post-run goal verification.
    pub check: GoalCheck,
}

impl PayloadPlan {
    /// Render as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"goal\":");
        push_json_str(&mut out, &self.goal);
        out.push_str(",\"entry_func\":");
        push_json_str(&mut out, &self.entry_func);
        out.push_str(",\"entry_slot\":");
        push_json_str(&mut out, &self.entry_slot);
        out.push_str(&format!(
            ",\"mechanic\":\"{}\",\"lifted\":{}",
            match self.mechanic {
                Mechanic::LinearSweep => "linear-sweep",
                Mechanic::CursorJump => "cursor-jump",
            },
            self.lifted
        ));
        if let Some(feed) = &self.feed {
            out.push_str(",\"feed\":");
            push_json_str(&mut out, feed);
        }
        out.push_str(",\"writes\":[");
        for (i, w) in self.writes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"func\":");
            push_json_str(&mut out, &w.func);
            out.push_str(",\"slot\":");
            push_json_str(&mut out, &w.slot);
            out.push_str(&format!(",\"offset\":{},\"width\":{}", w.offset, w.width));
            match &w.value {
                SymValue::Int(v) => out.push_str(&format!(",\"value\":{v}}}")),
                SymValue::GlobalAddr(g) => {
                    out.push_str(",\"global_addr\":");
                    push_json_str(&mut out, g);
                    out.push('}');
                }
            }
        }
        out.push_str("],\"check\":");
        match &self.check {
            GoalCheck::GlobalEquals { global, value } => {
                out.push_str("{\"kind\":\"global-equals\",\"global\":");
                push_json_str(&mut out, global);
                out.push_str(&format!(",\"value\":{value}}}"));
            }
            GoalCheck::GlobalAtLeast { global, value } => {
                out.push_str("{\"kind\":\"global-at-least\",\"global\":");
                push_json_str(&mut out, global);
                out.push_str(&format!(",\"value\":{value}}}"));
            }
            GoalCheck::OutputContainsGlobal { global } => {
                out.push_str("{\"kind\":\"output-contains-global\",\"global\":");
                push_json_str(&mut out, global);
                out.push('}');
            }
        }
        out.push('}');
        out
    }
}

/// An internal (unnamed-slot) write: (func, slot index, offset, width,
/// value).
type RawWrite = (FuncId, usize, i64, u64, SymValue);

/// How a pointer operand is materialized at a gadget: directly from a
/// slot word, or selected out of a pointer table.
enum PtrShape {
    /// The pointer is the content of `slot` at byte `offset`.
    Direct { slot: usize, offset: i64 },
    /// The pointer is loaded from table slot `table` (entries start at
    /// byte `base`, `scale` bytes apart) at the index held in
    /// `sel_slot[sel_off..sel_off+sel_width]`.
    Table {
        table: usize,
        base: i64,
        scale: i64,
        sel_slot: usize,
        sel_off: i64,
        sel_width: u64,
    },
}

/// One statically-known pointer-table entry.
#[derive(PartialEq, Eq)]
enum TableEntry {
    /// Entry holds the address of a global.
    GlobalRef(String),
    /// Entry holds the address of a stack slot of the same function.
    SlotRef(usize),
}

/// Search `report` for payload plans achieving `goal`. Deterministic:
/// plans come out ordered by chain/gadget position, deduplicated by
/// content.
pub fn synthesize(m: &Module, report: &ChainReport, goal: &Goal) -> Vec<PayloadPlan> {
    let resolutions: Vec<Resolution> = m
        .iter_funcs()
        .map(|(_, f)| Resolution::compute(f))
        .collect();
    let mut plans = Vec::new();
    let mut seen = HashSet::new();
    for chain in &report.chains {
        let steered: HashSet<(u32, usize)> = chain
            .steered
            .iter()
            .map(|s| (s.func_id.0, s.slot_idx))
            .collect();
        for g in &chain.gadgets {
            let f = m.func(g.func_id);
            let res = &resolutions[g.func_id.0 as usize];
            let bid = BlockId(g.block);
            let inst = &f.block(bid).insts[g.inst];
            let Some((mut writes, check)) =
                plan_gadget(m, f, res, g.func_id, bid, g.inst, inst, goal)
            else {
                continue;
            };
            // Schedule the gadget's enabling conditions, unless a goal
            // write already covers the compared word (then the VM run
            // decides whether the goal value satisfies the condition).
            let mut ok = true;
            for c in &g.conds {
                let covered = writes.iter().any(|(wf, ws, wo, ww, _)| {
                    *wf == g.func_id && *ws == c.slot_idx && overlaps(*wo, *ww, c.offset, c.width)
                });
                if covered {
                    continue;
                }
                if !fits(c.satisfy, c.width) {
                    ok = false;
                    break;
                }
                writes.push((
                    g.func_id,
                    c.slot_idx,
                    c.offset,
                    c.width,
                    SymValue::Int(c.satisfy),
                ));
            }
            if !ok {
                continue;
            }
            // Every write must land in a steered slot, fit its width,
            // and not conflict with a sibling write.
            writes.sort_by_key(|w| (w.0 .0, w.1, w.2));
            writes.dedup();
            if !validate_writes(&writes, &steered) {
                continue;
            }
            let plan = render_plan(m, &resolutions, chain, goal, writes, check);
            let key = plan.to_json();
            if seen.insert(key) {
                plans.push(plan);
            }
        }
    }
    plans
}

/// Whether `v` is representable in `width` bytes as stamped (LE,
/// unsigned for narrow writes).
fn fits(v: i64, width: u64) -> bool {
    if width >= 8 {
        return true;
    }
    (0..1i64 << (8 * width)).contains(&v)
}

fn overlaps(ao: i64, aw: u64, bo: i64, bw: u64) -> bool {
    ao < bo + bw as i64 && bo < ao + aw as i64
}

/// All writes steered, widths respected, no conflicting overlaps.
fn validate_writes(writes: &[RawWrite], steered: &HashSet<(u32, usize)>) -> bool {
    for (i, (wf, ws, wo, ww, wv)) in writes.iter().enumerate() {
        if !steered.contains(&(wf.0, *ws)) {
            return false;
        }
        if let SymValue::Int(v) = wv {
            if !fits(*v, *ww) {
                return false;
            }
        } else if *ww != 8 {
            return false; // addresses are always full words
        }
        for (xf, xs, xo, xw, xv) in writes.iter().skip(i + 1) {
            if wf == xf && ws == xs && overlaps(*wo, *ww, *xo, *xw) && (wo, ww, wv) != (xo, xw, xv)
            {
                return false;
            }
        }
    }
    true
}

fn render_plan(
    m: &Module,
    resolutions: &[Resolution],
    chain: &Chain,
    goal: &Goal,
    writes: Vec<RawWrite>,
    check: GoalCheck,
) -> PayloadPlan {
    let writes = writes
        .into_iter()
        .map(|(wf, ws, wo, ww, wv)| PlanWrite {
            func: m.func(wf).name.clone(),
            slot: resolutions[wf.0 as usize].slots.get(ws).name.clone(),
            offset: wo,
            width: ww,
            value: wv,
        })
        .collect();
    PayloadPlan {
        goal: goal.render(),
        entry_func: chain.entry.func.clone(),
        entry_slot: chain.entry.slot.clone(),
        mechanic: chain.entry.mechanic,
        feed: chain.entry.feed.clone(),
        lifted: chain.entry.lifted_from.is_some(),
        writes,
        check,
    }
}

/// Plan the goal against one reached gadget: which steered words must
/// hold which values for THIS instruction to carry out the goal.
#[allow(clippy::too_many_arguments)]
fn plan_gadget(
    m: &Module,
    f: &Function,
    res: &Resolution,
    fid: FuncId,
    bid: BlockId,
    idx: usize,
    inst: &Inst,
    goal: &Goal,
) -> Option<(Vec<RawWrite>, GoalCheck)> {
    match goal {
        Goal::Flip {
            global,
            value,
            accumulate,
        } => {
            let Inst::Store { ptr, val, .. } = inst else {
                return None;
            };
            let Base::Global(gid) = res.value(*ptr).base else {
                return None;
            };
            if &m.global(gid).name != global {
                return None;
            }
            if *accumulate {
                if *value < 1 {
                    return None; // GlobalAtLeast needs a positive floor
                }
                let v = strip_casts(f, *val);
                let Inst::Bin {
                    op: BinOp::Add,
                    lhs,
                    rhs,
                    ..
                } = find_def(f, v.as_reg()?)?
                else {
                    return None;
                };
                let reloads = |side: Value| -> bool {
                    let s = strip_casts(f, side);
                    matches!(
                        s.as_reg().and_then(|r| find_def(f, r)),
                        Some(Inst::Load { ptr, .. })
                            if matches!(res.value(ptr).base, Base::Global(g2) if g2 == gid)
                    )
                };
                let other = if reloads(lhs) {
                    rhs
                } else if reloads(rhs) {
                    lhs
                } else {
                    return None;
                };
                let (slot, off, width) = slot_load(f, res, other)?;
                Some((
                    vec![(fid, slot, off, width, SymValue::Int(*value))],
                    GoalCheck::GlobalAtLeast {
                        global: global.clone(),
                        value: *value,
                    },
                ))
            } else {
                let (slot, off, width) = slot_load(f, res, *val)?;
                Some((
                    vec![(fid, slot, off, width, SymValue::Int(*value))],
                    GoalCheck::GlobalEquals {
                        global: global.clone(),
                        value: *value,
                    },
                ))
            }
        }
        Goal::Redirect {
            func,
            slot,
            global,
            value,
        } => {
            if &f.name != func {
                return None;
            }
            m.globals.iter().find(|g| &g.name == global)?;
            let Inst::Store { ptr, val, .. } = inst else {
                return None;
            };
            let PtrShape::Direct {
                slot: ps,
                offset: po,
            } = effective_ptr(f, res, bid, idx, *ptr, 6)?
            else {
                return None;
            };
            if &res.slots.get(ps).name != slot {
                return None;
            }
            let mut writes = vec![(fid, ps, po, 8, SymValue::GlobalAddr(global.clone()))];
            match slot_load(f, res, *val) {
                Some((vs, vo, vw)) => {
                    writes.push((fid, vs, vo, vw, SymValue::Int(*value)));
                }
                None => {
                    // The stored value is fixed; only a matching goal
                    // value is plannable.
                    if res.const_of(*val) != Some(*value) {
                        return None;
                    }
                }
            }
            Some((
                writes,
                GoalCheck::GlobalEquals {
                    global: global.clone(),
                    value: *value,
                },
            ))
        }
        Goal::Leak { global } => {
            m.globals.iter().find(|g| &g.name == global)?;
            let printed = printed_slots(f, res);
            let check = GoalCheck::OutputContainsGlobal {
                global: global.clone(),
            };
            match inst {
                // memcpy(printed_buf, p, n): aim p at the secret.
                Inst::Call {
                    callee: Callee::Intrinsic(Intrinsic::Memcpy),
                    args,
                    ..
                } => {
                    let Base::Slot { slot: d, .. } = res.value(args[0]).base else {
                        return None;
                    };
                    if !printed.contains(&d) {
                        return None;
                    }
                    let writes = point_at_global(m, f, res, fid, bid, idx, args[1], global)?;
                    Some((writes, check))
                }
                // *d = *s copy block: aim d at a printed slot (via its
                // table selector) and s at the secret.
                Inst::Store { ptr, val, .. } => {
                    let PtrShape::Table {
                        table,
                        base,
                        scale,
                        sel_slot,
                        sel_off,
                        sel_width,
                    } = effective_ptr(f, res, bid, idx, *ptr, 6)?
                    else {
                        return None;
                    };
                    let entries = table_entries(m, f, res, table, base, scale);
                    let j = unique_index(
                        &entries,
                        |e| matches!(e, TableEntry::SlotRef(s) if printed.contains(s)),
                    )?;
                    let mut writes = vec![(fid, sel_slot, sel_off, sel_width, SymValue::Int(j))];
                    let v = strip_casts(f, *val);
                    let Inst::Load { ptr: vp, .. } = find_def(f, v.as_reg()?)? else {
                        return None;
                    };
                    writes.extend(point_at_global(m, f, res, fid, bid, idx, vp, global)?);
                    Some((writes, check))
                }
                _ => None,
            }
        }
    }
}

/// Writes making the pointer value `pv` (as used at `bid`/`idx`) point
/// at `global`: plant the address directly, or select the right table
/// entry.
#[allow(clippy::too_many_arguments)]
fn point_at_global(
    m: &Module,
    f: &Function,
    res: &Resolution,
    fid: FuncId,
    bid: BlockId,
    idx: usize,
    pv: Value,
    global: &str,
) -> Option<Vec<RawWrite>> {
    match effective_ptr(f, res, bid, idx, pv, 6)? {
        PtrShape::Direct { slot, offset } => Some(vec![(
            fid,
            slot,
            offset,
            8,
            SymValue::GlobalAddr(global.to_string()),
        )]),
        PtrShape::Table {
            table,
            base,
            scale,
            sel_slot,
            sel_off,
            sel_width,
        } => {
            let entries = table_entries(m, f, res, table, base, scale);
            let k = unique_index(
                &entries,
                |e| matches!(e, TableEntry::GlobalRef(g) if g == global),
            )?;
            Some(vec![(fid, sel_slot, sel_off, sel_width, SymValue::Int(k))])
        }
    }
}

/// The single table index matching `pred`; `None` when absent or
/// ambiguous.
fn unique_index(entries: &[(i64, TableEntry)], pred: impl Fn(&TableEntry) -> bool) -> Option<i64> {
    let mut hits = entries.iter().filter(|(_, e)| pred(e)).map(|(i, _)| *i);
    let first = hits.next()?;
    if hits.next().is_some() {
        return None;
    }
    Some(first)
}

/// Resolve how the pointer value `v`, used at (`bid`, `idx`), is
/// materialized: follow casts and constant geps, follow loads back to
/// the slot word holding the pointer (with same-block store-to-load
/// forwarding, so `long *d = tbl[i]; d[0] = ..` resolves to the table),
/// and decode `table[selector]` accesses.
fn effective_ptr(
    f: &Function,
    res: &Resolution,
    bid: BlockId,
    idx: usize,
    v: Value,
    depth: u32,
) -> Option<PtrShape> {
    if depth == 0 {
        return None;
    }
    let v = strip_casts(f, v);
    let r = v.as_reg()?;
    match find_def(f, r)? {
        Inst::Load { ptr, .. } => {
            if let Base::Slot {
                slot,
                offset: Some(off),
            } = res.value(ptr).base
            {
                // A store to the same word earlier in the SAME block
                // supersedes the slot: the load observes that value.
                // Cross-block stores stay opaque (they may be
                // conditional), leaving the slot word — which is what
                // the payload then overwrites.
                let b = f.block(bid);
                for (i, inst) in b.insts.iter().enumerate().take(idx).rev() {
                    if let Inst::Store { ptr: p2, val, .. } = inst {
                        if matches!(res.value(*p2).base,
                            Base::Slot { slot: s2, offset: Some(o2) } if s2 == slot && o2 == off)
                        {
                            return effective_ptr(f, res, bid, i, *val, depth - 1);
                        }
                    }
                }
                return Some(PtrShape::Direct { slot, offset: off });
            }
            table_access(f, res, ptr)
        }
        Inst::Gep { base, offset, .. } => {
            // Constant extra offsets (field accesses off the same
            // pointer) do not change which word must be corrupted.
            res.const_of(offset)?;
            effective_ptr(f, res, bid, idx, base, depth - 1)
        }
        _ => None,
    }
}

/// Decode a `table[selector]` pointer load: gep of a constant-offset
/// slot base with a `selector * scale` (or bare selector) offset, where
/// the selector is itself a constant-offset slot load.
fn table_access(f: &Function, res: &Resolution, ptr: Value) -> Option<PtrShape> {
    let p = strip_casts(f, ptr);
    let Inst::Gep { base, offset, .. } = find_def(f, p.as_reg()?)? else {
        return None;
    };
    let Base::Slot {
        slot: table,
        offset: Some(tbase),
    } = res.value(base).base
    else {
        return None;
    };
    let off = strip_casts(f, offset);
    let (sel, scale) = match off.as_reg().and_then(|r| find_def(f, r)) {
        Some(Inst::Bin {
            op: BinOp::Mul,
            lhs,
            rhs,
            ..
        }) => {
            if let Some(c) = res.const_of(rhs) {
                (lhs, c)
            } else if let Some(c) = res.const_of(lhs) {
                (rhs, c)
            } else {
                return None;
            }
        }
        _ => (off, 1),
    };
    if scale <= 0 {
        return None;
    }
    let (sel_slot, sel_off, sel_width) = slot_load(f, res, sel)?;
    Some(PtrShape::Table {
        table,
        base: tbase,
        scale,
        sel_slot,
        sel_off,
        sel_width,
    })
}

/// Statically-known entries of pointer table `table`: constant-offset
/// stores of global or slot addresses, keyed by entry index.
fn table_entries(
    m: &Module,
    f: &Function,
    res: &Resolution,
    table: usize,
    base: i64,
    scale: i64,
) -> Vec<(i64, TableEntry)> {
    let mut out = Vec::new();
    for (_, b) in f.iter_blocks() {
        for inst in &b.insts {
            let Inst::Store { ptr, val, .. } = inst else {
                continue;
            };
            let Base::Slot {
                slot,
                offset: Some(off),
            } = res.value(*ptr).base
            else {
                continue;
            };
            if slot != table || off < base || (off - base) % scale != 0 {
                continue;
            }
            let idx = (off - base) / scale;
            // Globals resolve by name; slot addresses by index.
            let entry = match res.value(*val).base {
                Base::Global(g) => TableEntry::GlobalRef(m.global(g).name.clone()),
                Base::Slot {
                    slot: s,
                    offset: Some(0),
                } => TableEntry::SlotRef(s),
                _ => continue,
            };
            out.push((idx, entry));
        }
    }
    out.sort_by_key(|(i, _)| *i);
    out
}

/// Slots whose contents reach program output through `print_str`.
fn printed_slots(f: &Function, res: &Resolution) -> HashSet<usize> {
    let mut out = HashSet::new();
    for (_, b) in f.iter_blocks() {
        for inst in &b.insts {
            if let Inst::Call {
                callee: Callee::Intrinsic(Intrinsic::PrintStr),
                args,
                ..
            } = inst
            {
                if let Some(a) = args.first() {
                    if let Base::Slot { slot, .. } = res.value(*a).base {
                        out.insert(slot);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plans_for(src: &str, goal: &str) -> Vec<PayloadPlan> {
        let m = smokestack_minic::compile(src).expect("compiles");
        let rep = ChainReport::analyze(&m);
        let goal = Goal::parse(goal).expect("goal parses");
        synthesize(&m, &rep, &goal)
    }

    #[test]
    fn goal_language_roundtrips() {
        for s in [
            "leak private_key",
            "flip bot_commands += 777",
            "flip granted = 4242",
            "redirect handle:p -> granted = 7",
        ] {
            let g = Goal::parse(s).expect(s);
            assert_eq!(g.render(), s);
            assert_eq!(Goal::parse(&g.render()), Some(g));
        }
        assert_eq!(Goal::parse("leak"), None);
        assert_eq!(Goal::parse("flip x"), None);
        assert_eq!(Goal::parse("redirect f:p granted = 1"), None);
    }

    /// Wireshark shape: accumulate gadget guarded by a command compare,
    /// reached from a callee length-header overflow.
    const ACCUMULATE: &str = r#"
        long bot_commands = 0;
        void dissect(long tag) {
            long reqlen = 0;
            char pd[64];
            get_input(&reqlen, 8);
            get_input(pd, reqlen);
        }
        void render(long tag) {
            long cell = 3;
            long cmd = 0;
            long arg = 0;
            while (cell > 0) {
                dissect(tag + 1);
                if (cmd == 777) { bot_commands = bot_commands + arg; }
                cmd = 0;
                cell = cell - 1;
            }
        }
        int main() { render(1); return 0; }
    "#;

    #[test]
    fn flip_accumulate_schedules_cond_and_value() {
        let plans = plans_for(ACCUMULATE, "flip bot_commands += 5");
        assert_eq!(plans.len(), 1, "{plans:#?}");
        let p = &plans[0];
        assert_eq!(p.entry_func, "dissect");
        assert_eq!(p.entry_slot, "pd");
        assert_eq!(p.feed.as_deref(), Some("reqlen"));
        assert_eq!(p.mechanic, Mechanic::LinearSweep);
        let w = |slot: &str| {
            p.writes
                .iter()
                .find(|w| w.slot == slot)
                .unwrap_or_else(|| panic!("write to {slot}: {:#?}", p.writes))
        };
        assert_eq!(w("arg").value, SymValue::Int(5));
        assert_eq!(w("cmd").value, SymValue::Int(777));
        assert_eq!(w("cell").value, SymValue::Int(1)); // loop stays alive
        assert_eq!(
            p.check,
            GoalCheck::GlobalAtLeast {
                global: "bot_commands".into(),
                value: 5
            }
        );
    }

    #[test]
    fn flip_unknown_global_yields_nothing() {
        assert!(plans_for(ACCUMULATE, "flip other += 5").is_empty());
    }

    /// RIPE indirect shape: overflow corrupts a data pointer + value.
    const INDIRECT: &str = r#"
        long granted = 0;
        void handle(long tag) {
            long v = 0;
            long *p = 0;
            char buf[32];
            get_input(buf, 256);
            if (p != 0) { *p = v; }
        }
        int main() { handle(9); return 0; }
    "#;

    #[test]
    fn redirect_plants_pointer_and_value() {
        let plans = plans_for(INDIRECT, "redirect handle:p -> granted = 4242");
        assert_eq!(plans.len(), 1, "{plans:#?}");
        let p = &plans[0];
        assert_eq!(p.entry_slot, "buf");
        assert!(!p.lifted);
        assert!(p.feed.is_none());
        let ptr = p.writes.iter().find(|w| w.slot == "p").expect("p write");
        assert_eq!(ptr.value, SymValue::GlobalAddr("granted".into()));
        assert_eq!(ptr.width, 8);
        let val = p.writes.iter().find(|w| w.slot == "v").expect("v write");
        assert_eq!(val.value, SymValue::Int(4242));
        // The `p != 0` guard is covered by the pointer write itself:
        // no third write is scheduled for it.
        assert_eq!(p.writes.len(), 2, "{:#?}", p.writes);
    }

    /// ProFTPD shape: leak through a pointer-walk + memcpy-to-printed
    /// buffer.
    const DIRECT_LEAK: &str = r#"
        char secret_key[40] = "KEY-0123456789";
        long c1 = 0;
        void sreplace(long tag) {
            long n = 0;
            char fmt[128];
            get_input(&n, 8);
            get_input(fmt, n);
        }
        void cmd_loop(long tag) {
            long cur = 0;
            char out[48];
            long nreq = 2;
            long emit = 0;
            cur = &c1;
            while (nreq > 0) {
                sreplace(tag + 1);
                if (emit != 0) {
                    memcpy(out, cur, 40);
                    print_str(out);
                }
                emit = 0;
                nreq = nreq - 1;
            }
        }
        int main() { c1 = &secret_key; cmd_loop(3); return 0; }
    "#;

    #[test]
    fn leak_direct_pointer_redirects_cursor() {
        let plans = plans_for(DIRECT_LEAK, "leak secret_key");
        assert_eq!(plans.len(), 1, "{plans:#?}");
        let p = &plans[0];
        assert_eq!(p.entry_func, "sreplace");
        let cur = p.writes.iter().find(|w| w.slot == "cur").expect("cur");
        assert_eq!(cur.value, SymValue::GlobalAddr("secret_key".into()));
        assert!(p
            .writes
            .iter()
            .any(|w| w.slot == "emit" && w.value == SymValue::Int(1)));
        assert!(p
            .writes
            .iter()
            .any(|w| w.slot == "nreq" && w.value == SymValue::Int(1)));
        assert_eq!(
            p.check,
            GoalCheck::OutputContainsGlobal {
                global: "secret_key".into()
            }
        );
    }

    /// librelp shape: copy block through a pointer table, selectors in a
    /// control buffer, cursor-jump entry.
    const TABLE_LEAK: &str = r#"
        char private_key[32] = "SK-SECRET";
        long dummy = 0;
        void chk_peer(long tag) {
            char allNames[256];
            char szAltName[4096];
            long iAllNames = 0;
            long bFound = 0;
            while (bFound == 0) {
                long len = get_input(szAltName, 4095);
                if (len == 0) {
                    bFound = 1;
                } else {
                    szAltName[len] = 0;
                    iAllNames = iAllNames + snprintf_cat(
                        allNames + iAllNames,
                        256 - iAllNames,
                        "DNSname: %s; ",
                        szAltName);
                }
            }
        }
        void lstn_init(long tag) {
            char ctl[8];
            long tbl[4];
            char out[64];
            ctl[0] = 1;
            ctl[1] = 0;
            ctl[2] = 0;
            ctl[3] = 0;
            tbl[0] = &dummy;
            tbl[1] = &private_key;
            tbl[2] = &out;
            tbl[3] = 0;
            while (ctl[0] > 0) {
                chk_peer(tag + 1);
                if (ctl[1] == 1) {
                    long *d = tbl[ctl[2]];
                    long *s = tbl[ctl[3]];
                    d[0] = s[0];
                    d[1] = s[1];
                    d[2] = s[2];
                    d[3] = s[3];
                }
                ctl[1] = 0;
                ctl[0] = ctl[0] - 1;
            }
            print_str(out);
        }
        int main() { lstn_init(5); return 0; }
    "#;

    #[test]
    fn leak_table_selectors_cursor_jump() {
        let plans = plans_for(TABLE_LEAK, "leak private_key");
        // The four copy stores collapse into one deduplicated plan.
        assert_eq!(plans.len(), 1, "{plans:#?}");
        let p = &plans[0];
        assert_eq!(p.mechanic, Mechanic::CursorJump);
        assert_eq!(p.entry_slot, "allNames");
        let at = |off: i64| {
            p.writes
                .iter()
                .find(|w| w.slot == "ctl" && w.offset == off)
                .unwrap_or_else(|| panic!("ctl+{off}: {:#?}", p.writes))
        };
        assert_eq!(at(0).value, SymValue::Int(1)); // while (ctl[0] > 0)
        assert_eq!(at(1).value, SymValue::Int(1)); // if (ctl[1] == 1)
        assert_eq!(at(2).value, SymValue::Int(2)); // dst selector -> out
        assert_eq!(at(3).value, SymValue::Int(1)); // src selector -> key
        assert!(p.writes.iter().all(|w| w.slot == "ctl" && w.width == 1));
    }

    #[test]
    fn plans_are_deterministic_json() {
        let m = smokestack_minic::compile(TABLE_LEAK).unwrap();
        let goal = Goal::parse("leak private_key").unwrap();
        let a: Vec<String> = synthesize(&m, &ChainReport::analyze(&m), &goal)
            .iter()
            .map(|p| p.to_json())
            .collect();
        let b: Vec<String> = synthesize(&m, &ChainReport::analyze(&m), &goal)
            .iter()
            .map(|p| p.to_json())
            .collect();
        assert_eq!(a, b);
        assert!(a[0].starts_with("{\"goal\":"));
    }
}
