//! Backward slot liveness, used for dead-store statistics.
//!
//! A safe slot (no escaped address) is live when some later load may
//! read it; a store to a slot that is not live afterwards is dead. The
//! numbers feed the per-function gadget-surface report as a measure of
//! how much of the frame actually carries dataflow — they are not
//! diagnostics, since spilled-but-unused parameters are routine.

use smokestack_ir::cfg::Cfg;
use smokestack_ir::{BlockId, Function, Inst};

use crate::dataflow::{solve, DataflowAnalysis, Direction};
use crate::provenance::{Base, Resolution};

struct SlotLiveness<'a> {
    res: &'a Resolution,
    /// Slots pinned live (escaped address / dynamic access): a store to
    /// them is never reported dead.
    pinned: &'a [bool],
}

impl<'a> SlotLiveness<'a> {
    /// Backward transfer for one instruction.
    fn apply(&self, state: &mut [bool], inst: &Inst) {
        match inst {
            Inst::Load { ptr, .. } => {
                if let Base::Slot { slot, .. } = self.res.value(*ptr).base {
                    state[slot] = true;
                }
            }
            Inst::Store { ptr, ty, .. } => {
                if let Base::Slot {
                    slot,
                    offset: Some(0),
                } = self.res.value(*ptr).base
                {
                    // Only a store covering the whole slot kills it.
                    let s = self.res.slots.get(slot);
                    if !self.pinned[slot] && s.size.is_some() && ty.checked_size() == s.size {
                        state[slot] = false;
                    }
                }
            }
            _ => {}
        }
    }
}

impl<'a> DataflowAnalysis for SlotLiveness<'a> {
    type State = Vec<bool>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary_state(&self, _f: &Function) -> Vec<bool> {
        // At exit only pinned slots remain observable (through escaped
        // pointers during the call's own lifetime).
        self.pinned.to_vec()
    }

    fn init_state(&self, _f: &Function) -> Vec<bool> {
        vec![false; self.res.slots.len()]
    }

    fn join(&self, into: &mut Vec<bool>, other: &Vec<bool>) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(other) {
            if *b && !*a {
                *a = true;
                changed = true;
            }
        }
        changed
    }

    fn transfer_inst(&self, state: &mut Vec<bool>, _b: BlockId, _i: usize, inst: &Inst) {
        self.apply(state, inst);
    }
}

/// Count stores to slots that nothing reads afterwards.
pub fn dead_store_count(f: &Function, cfg: &Cfg, res: &Resolution, pinned: &[bool]) -> usize {
    if res.slots.is_empty() {
        return 0;
    }
    let analysis = SlotLiveness { res, pinned };
    let states = solve(f, cfg, &analysis);
    let mut dead = 0;
    for (bid, block) in f.iter_blocks() {
        // `entry` of a backward analysis is the state at the block end.
        let mut state = states.entry(bid).clone();
        for inst in block.insts.iter().rev() {
            if let Inst::Store { ptr, .. } = inst {
                if let Base::Slot { slot, .. } = res.value(*ptr).base {
                    if !pinned[slot] && !state[slot] {
                        dead += 1;
                    }
                }
            }
            analysis.apply(&mut state, inst);
        }
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokestack_ir::{Builder, Type, Value};

    fn run(f: &Function) -> usize {
        let cfg = Cfg::compute(f);
        let res = Resolution::compute(f);
        let pinned = vec![false; res.slots.len()];
        dead_store_count(f, &cfg, &res, &pinned)
    }

    #[test]
    fn unread_store_is_dead() {
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let x = b.alloca(Type::I64, "x");
        b.store(Type::I64, Value::i64(1), x.into());
        b.ret(None);
        assert_eq!(run(&f), 1);
    }

    #[test]
    fn overwritten_store_is_dead() {
        let mut f = Function::new("f", vec![], Type::I64);
        let mut b = Builder::new(&mut f);
        let x = b.alloca(Type::I64, "x");
        b.store(Type::I64, Value::i64(1), x.into());
        b.store(Type::I64, Value::i64(2), x.into());
        let v = b.load(Type::I64, x.into());
        b.ret(Some(v.into()));
        assert_eq!(run(&f), 1);
    }

    #[test]
    fn loop_carried_store_is_live() {
        // header reads x, body writes x and loops back.
        let mut f = Function::new("f", vec![], Type::Void);
        let mut b = Builder::new(&mut f);
        let x = b.alloca(Type::I64, "x");
        b.store(Type::I64, Value::i64(0), x.into());
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let v = b.load(Type::I64, x.into());
        let c = b.icmp(
            smokestack_ir::CmpPred::Slt,
            smokestack_ir::IntWidth::W64,
            v.into(),
            Value::i64(10),
        );
        b.cond_br(c.into(), body, exit);
        b.switch_to(body);
        let n = b.bin(
            smokestack_ir::BinOp::Add,
            smokestack_ir::IntWidth::W64,
            v.into(),
            Value::i64(1),
        );
        b.store(Type::I64, Value::Reg(n), x.into());
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        assert_eq!(run(&f), 0);
    }
}
