//! Golden-diagnostic tests: MiniC fixtures with planted defects must
//! produce exactly the expected rule IDs (and clean fixtures none), so
//! any behaviour change in the analyses shows up as a concrete diff in
//! the diagnostic stream rather than a silent regression.

use smokestack_analyzer::{analyze_module, rules, Severity, SrcPos};
use smokestack_minic::{compile, compile_with_source_map};

/// Compile a fixture and return `(rule, severity, func)` for each
/// diagnostic, sorted for stable comparison.
fn diags(src: &str) -> Vec<(String, Severity, String)> {
    let module = compile(src).expect("fixture must compile");
    let report = analyze_module(&module);
    let mut out: Vec<_> = report
        .functions
        .iter()
        .flat_map(|f| f.diagnostics.iter())
        .map(|d| (d.rule.to_string(), d.severity, d.func.clone()))
        .collect();
    out.sort();
    out
}

#[test]
fn planted_uninit_read() {
    let got = diags(
        "int pick(int c) {\
             int x;\
             if (c) { x = 1; }\
             return x;\
         }\
         int main() { return pick(0); }",
    );
    assert_eq!(
        got,
        vec![(
            rules::UNINIT_READ.to_string(),
            Severity::Warning,
            "pick".to_string()
        )]
    );
}

#[test]
fn planted_constant_oob_store() {
    let got = diags(
        "int main() {\
             char buf[4];\
             buf[6] = 1;\
             return buf[0];\
         }",
    );
    // The store at byte 6 of a 4-byte buffer is wrong on every
    // execution: Error, not Warning.
    assert!(
        got.contains(&(
            rules::OOB_ACCESS.to_string(),
            Severity::Error,
            "main".to_string()
        )),
        "expected an oob-access error, got {got:?}"
    );
}

#[test]
fn planted_capacity_overflow() {
    let got = diags(
        "int main() {\
             char buf[16];\
             int n = get_input(buf, 64);\
             return n;\
         }",
    );
    assert_eq!(
        got,
        vec![(
            rules::OVERFLOW_CAPACITY.to_string(),
            Severity::Warning,
            "main".to_string()
        )]
    );
}

#[test]
fn planted_memcpy_overrun() {
    let got = diags(
        "int main() {\
             char dst[8];\
             char src[32];\
             int i = 0;\
             for (i = 0; i < 32; i++) { src[i] = i; }\
             memcpy(dst, src, 32);\
             return dst[0];\
         }",
    );
    assert!(
        got.iter()
            .any(|(r, s, _)| r == rules::OOB_INTRINSIC && *s == Severity::Error),
        "expected an oob-intrinsic error, got {got:?}"
    );
}

#[test]
fn clean_fixture_no_findings() {
    let got = diags(
        "int sum(char *p, int len) {\
             int s = 0;\
             int i = 0;\
             for (i = 0; i < len; i++) { s = s + p[i]; }\
             return s;\
         }\
         int main() {\
             char buf[32];\
             int n = get_input(buf, 32);\
             return sum(buf, n);\
         }",
    );
    assert_eq!(got, Vec::new());
}

#[test]
fn loop_initialized_array_is_clean() {
    // The zero-trip-path shape from the workload corpus: element-wise
    // init loop, then reads. Must not produce uninit-read.
    let got = diags(
        "int main() {\
             int tab[8];\
             int i = 0;\
             int acc = 0;\
             for (i = 0; i < 8; i++) { tab[i] = i * i; }\
             for (i = 0; i < 8; i++) { acc = acc + tab[i]; }\
             return acc;\
         }",
    );
    assert_eq!(got, Vec::new());
}

#[test]
fn source_positions_attach_to_diagnostics() {
    let src =
        "int main() {\n    char buf[16];\n    int n = get_input(buf, 64);\n    return n;\n}\n";
    let (module, map) = compile_with_source_map(src).unwrap();
    let mut report = analyze_module(&module);
    report.apply_source_map(|func, var| {
        map.lookup(func, var).map(|p| SrcPos {
            line: p.line,
            col: p.col,
        })
    });
    let d: Vec<_> = report
        .functions
        .iter()
        .flat_map(|f| f.diagnostics.iter())
        .collect();
    assert_eq!(d.len(), 1);
    let pos = d[0].pos.expect("diagnostic should carry a source position");
    // `buf` is declared on line 2.
    assert_eq!(pos.line, 2);
    let text = report.render_text();
    assert!(
        text.contains("declared at 2:"),
        "rendered text should cite the declaration site: {text}"
    );
}

#[test]
fn gadget_report_counts_real_overflow_sites() {
    // A STEROIDS-style dispatcher: read into a stack buffer with an
    // attacker-controlled length. The constant-capacity rule cannot fire
    // (the length is dynamic), but the gadget surface must still list
    // the site as an overflow entry.
    let src = "int dispatch(int cmd) {\
                   char req[32];\
                   long acc = 0;\
                   int n = get_input(req, cmd);\
                   acc = req[cmd & 31];\
                   return acc + n;\
               }\
               int main() { return dispatch(3); }";
    let module = compile(src).unwrap();
    let report = analyze_module(&module);
    let dispatch = report
        .functions
        .iter()
        .find(|f| f.func == "dispatch")
        .expect("dispatch analyzed");
    assert!(
        !dispatch.gadgets.overflow_entries.is_empty(),
        "get_input past capacity should register as an overflow entry"
    );
}
