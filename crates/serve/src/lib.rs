//! # smokestack-serve
//!
//! A long-running multi-tenant server over hardened VM sessions: the
//! production-scale counterpart to the one-shot attack builds the
//! campaign engine evaluates. Thousands of tenants stay *resident* —
//! one [`smokestack_vm::Session`] each, respawned (never rebuilt)
//! per request, all sharing one compiled bytecode image per
//! (application, defense) cell through the process-wide cache — while a
//! deterministic open-loop traffic model drives millions of requests at
//! them: mostly benign workload traffic, with CVE and `synth-*` exploit
//! attempts interleaved at a configurable poison rate.
//!
//! The pipeline:
//!
//! * [`plan::ServePlan`] — tenants × fleets × apps × request count ×
//!   poison rate, all derived from one master seed.
//! * [`traffic`] — the open-loop schedule: request `i`'s tenant, seed,
//!   poison flag, and attack pick are positional functions of
//!   `(master_seed, i)`, so the schedule is byte-identical across
//!   worker counts and re-runs.
//! * [`engine`] — dispatches request batches onto the
//!   `campaign::pool` work-stealing fleet (with a
//!   [`smokestack_campaign::DrainGate`] for duration-bounded runs) and
//!   folds per-batch evidence jobs-invariantly.
//! * [`report`] — per-fleet SLO percentiles (wall-clock *and*
//!   deterministic decicycles), per-scheme compromise counts,
//!   time-to-first-compromise survival curves, Prometheus exposition,
//!   and the drift-gated `BENCH_serve.json` format.
//!
//! The `serve` binary drives all of it from the command line.

#![warn(missing_docs)]

pub mod apps;
pub mod engine;
pub mod plan;
pub mod report;
pub mod traffic;

pub use apps::{app_names, catalog, ServeApp};
pub use engine::{run_serve, ServeConfig};
pub use plan::{Fleet, ServePlan};
pub use report::{
    check_rows, parse_rows, report_rows, rows_to_json, serve_registry, BenchRow, FleetReport,
    ServeReport, TTFC_BUDGETS,
};
pub use traffic::{schedule_digest, Request};
