//! `serve` — run a multi-tenant hardened-session server from the
//! command line.
//!
//! ```text
//! serve --plan smoke --jobs 4 --stats
//! serve --plan load --json BENCH_serve.json
//! serve --plan smoke --check BENCH_serve.json --tolerance 10
//! serve --plan my-plan.txt --duration 30 --out poisoned.jsonl
//! ```
//!
//! `--json` writes (or merges into) a `BENCH_serve.json`-style pin:
//! rows for the current plan replace any stale rows of the same plan,
//! rows of other plans are kept. `--check` re-measures and compares the
//! deterministic columns against such a pin, failing on latency drift
//! beyond `--tolerance` or on any compromise-rate regression.

use std::fs::File;
use std::io::Read as _;
use std::process::ExitCode;

use smokestack_campaign::RecordSink;
use smokestack_serve::{
    check_rows, parse_rows, report_rows, rows_to_json, run_serve, schedule_digest, serve_registry,
    ServeConfig, ServePlan,
};
use smokestack_telemetry::{render_prometheus, SharedJsonlSink};

struct Args {
    plan: String,
    jobs: usize,
    duration: Option<u64>,
    poison_ppm: Option<u32>,
    master_seed: Option<u64>,
    max_requests: Option<u64>,
    tenants: Option<u32>,
    stats: bool,
    json: Option<String>,
    check: Option<String>,
    tolerance: f64,
    out: Option<String>,
    dump_schedule: Option<u64>,
}

const USAGE: &str = "usage: serve --plan <name|file> [--jobs N] [--duration SECS] \
[--poison-rate PPM] [--master-seed S] [--max-requests N] [--tenants N] [--stats] \
[--json FILE] [--check FILE] [--tolerance PCT] [--out FILE] [--dump-schedule N]

plans: smoke | load | path to a plan file
  --jobs N           worker threads (default 1)
  --duration SECS    drain gracefully after SECS: in-flight batches finish,
                     no new ones dispatch (partial runs are never pinned)
  --poison-rate PPM  override the plan's poison rate (parts per million)
  --master-seed S    override the plan's master seed (decimal or 0x hex)
  --max-requests N   serve only the first N scheduled requests
  --tenants N        override the plan's resident tenant count
  --stats            print the serve metrics as Prometheus text exposition
  --json FILE        write bench rows to FILE (merging with other plans' rows)
  --check FILE       compare deterministic columns against FILE; exit 1 on
                     latency drift beyond --tolerance or any compromise-rate
                     regression
  --tolerance PCT    allowed decicycle-percentile drift for --check (default 5)
  --out FILE         journal one JSON line per poisoned request to FILE
  --dump-schedule N  print the first N scheduled requests and exit";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        plan: String::new(),
        jobs: 1,
        duration: None,
        poison_ppm: None,
        master_seed: None,
        max_requests: None,
        tenants: None,
        stats: false,
        json: None,
        check: None,
        tolerance: 5.0,
        out: None,
        dump_schedule: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--plan" => args.plan = value("--plan")?,
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "bad --jobs value".to_string())?;
            }
            "--duration" => {
                args.duration = Some(
                    value("--duration")?
                        .parse()
                        .map_err(|_| "bad --duration value".to_string())?,
                );
            }
            "--poison-rate" => {
                args.poison_ppm = Some(
                    value("--poison-rate")?
                        .parse()
                        .map_err(|_| "bad --poison-rate value".to_string())?,
                );
            }
            "--master-seed" => {
                let v = value("--master-seed")?;
                let parsed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    v.parse()
                };
                args.master_seed = Some(parsed.map_err(|_| "bad --master-seed value".to_string())?);
            }
            "--max-requests" => {
                args.max_requests = Some(
                    value("--max-requests")?
                        .parse()
                        .map_err(|_| "bad --max-requests value".to_string())?,
                );
            }
            "--tenants" => {
                args.tenants = Some(
                    value("--tenants")?
                        .parse()
                        .map_err(|_| "bad --tenants value".to_string())?,
                );
            }
            "--stats" => args.stats = true,
            "--json" => args.json = Some(value("--json")?),
            "--check" => args.check = Some(value("--check")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|_| "bad --tolerance value".to_string())?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--dump-schedule" => {
                args.dump_schedule = Some(
                    value("--dump-schedule")?
                        .parse()
                        .map_err(|_| "bad --dump-schedule value".to_string())?,
                );
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    if args.plan.is_empty() {
        return Err(format!("--plan is required\n\n{USAGE}"));
    }
    Ok(args)
}

fn load_plan(spec: &str) -> Result<ServePlan, String> {
    if let Some(plan) = ServePlan::builtin(spec) {
        return Ok(plan);
    }
    let mut text = String::new();
    File::open(spec)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("cannot read plan `{spec}`: {e}"))?;
    ServePlan::parse(&text)
}

fn read_file(path: &str) -> Result<String, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(text)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let mut plan = load_plan(&args.plan)?;
    if let Some(seed) = args.master_seed {
        plan.master_seed = seed;
    }
    if let Some(ppm) = args.poison_ppm {
        if ppm > 1_000_000 {
            return Err("--poison-rate exceeds 1000000 ppm".to_string());
        }
        plan.poison_ppm = ppm;
    }
    if let Some(tenants) = args.tenants {
        if tenants == 0 {
            return Err("--tenants must be positive".to_string());
        }
        plan.tenants = tenants;
    }

    if let Some(n) = args.dump_schedule {
        print!("{}", schedule_digest(&plan, n));
        return Ok(true);
    }

    let sink = match &args.out {
        Some(path) => {
            let file =
                File::create(path).map_err(|e| format!("cannot open journal `{path}`: {e}"))?;
            Some(SharedJsonlSink::new(file))
        }
        None => None,
    };

    let cfg = ServeConfig {
        jobs: args.jobs,
        duration: args.duration.map(std::time::Duration::from_secs),
        max_requests: args.max_requests,
        ..ServeConfig::default()
    };
    let report = run_serve(&plan, &cfg, sink.as_ref().map(|s| s as &dyn RecordSink))?;
    if let Some(sink) = sink {
        sink.flush()
            .map_err(|e| format!("journal write failed: {e}"))?;
        if sink.has_error() {
            return Err("journal write failed mid-run".to_string());
        }
    }

    eprintln!(
        "plan `{}`: {}/{} requests over {} tenants on {} jobs in {:.1}s ({:.0} req/s){}",
        report.plan,
        report.served,
        report.scheduled,
        report.tenants,
        args.jobs.max(1),
        report.wall_secs,
        report.requests_per_sec(),
        if report.drained { " [drained]" } else { "" },
    );

    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>12}",
        "fleet",
        "benign",
        "attacks",
        "success",
        "detect",
        "deci_p50",
        "deci_p99",
        "deci_p999",
        "compromised"
    );
    for f in &report.fleets {
        println!(
            "{:<26} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>7}/{:<4}",
            f.label,
            f.benign,
            f.attacks,
            f.outcomes[0],
            f.outcomes[1],
            f.deci.p50(),
            f.deci.p99(),
            f.deci.p999(),
            f.compromised_tenants(),
            f.tenants,
        );
    }
    for f in &report.fleets {
        let curve = f
            .ttfc_curve(report.scheduled)
            .into_iter()
            .map(|(b, s)| format!("{b}:{:.4}", s))
            .collect::<Vec<_>>()
            .join(" ");
        println!("ttfc {:<26} {curve}", f.label);
    }

    if args.stats {
        print!("{}", render_prometheus(&serve_registry(&report)));
    }

    let rows = report_rows(&report);

    if let Some(path) = &args.json {
        if report.drained {
            return Err("refusing to pin a drained (partial) run with --json".to_string());
        }
        // Merge: keep other plans' rows, replace this plan's.
        let mut merged: Vec<_> = match File::open(path) {
            Ok(_) => parse_rows(&read_file(path)?)
                .into_iter()
                .filter(|r| r.plan != report.plan)
                .collect(),
            Err(_) => Vec::new(),
        };
        merged.extend(rows.clone());
        std::fs::write(path, rows_to_json(&merged))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("pinned {} rows to {path}", merged.len());
    }

    if let Some(path) = &args.check {
        if report.drained {
            return Err("cannot --check a drained (partial) run".to_string());
        }
        let baseline = parse_rows(&read_file(path)?);
        match check_rows(&rows, &baseline, args.tolerance) {
            Ok(n) => eprintln!(
                "check: {n} (plan, fleet) rows within {}% of {path}",
                args.tolerance
            ),
            Err(e) => {
                eprintln!("CHECK FAILED: {e}");
                return Ok(false);
            }
        }
    }

    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
