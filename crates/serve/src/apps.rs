//! The tenant application catalog: which vulnerable programs the server
//! hosts, what their benign request traffic looks like, and which
//! attacks target them.
//!
//! Every app reuses a MiniC source from `smokestack-attacks`, so the
//! very builds the security campaigns exploit are the ones serving
//! traffic here — poisoned requests fire the CVE exploit and the
//! planner-synthesized `synth-*` payloads against the same image that
//! benign requests exercise.

use smokestack_attacks::synth;

/// One hosted application.
pub struct ServeApp {
    /// Catalog name (also the `synth-*` family infix).
    pub name: &'static str,
    /// The vulnerable MiniC source, shared with the attack corpus.
    pub source: &'static str,
    /// Scripted benign request input: one chunk per `get_input` call.
    /// Benign traffic must run to a clean `return 0` under every
    /// defense (pinned by the serve test suite).
    pub benign: &'static [&'static [u8]],
    /// The real-CVE attack that targets this program.
    pub cve: &'static str,
}

/// The eight zero bytes a benign ProFTPD-analog request sends: a
/// zero-length command, which the dispatch loop treats as a no-op.
const PROFTPD_BENIGN: &[&[u8]] = &[&[0, 0, 0, 0, 0, 0, 0, 0]];

/// The hosted application catalog.
pub fn catalog() -> &'static [ServeApp] {
    &[
        ServeApp {
            name: "librelp",
            source: smokestack_attacks::librelp::SOURCE,
            benign: &[],
            cve: "librelp-cve-2018-1000140",
        },
        ServeApp {
            name: "proftpd",
            source: smokestack_attacks::proftpd::SOURCE,
            benign: PROFTPD_BENIGN,
            cve: "proftpd-cve-2006-5815",
        },
        ServeApp {
            name: "wireshark",
            source: smokestack_attacks::wireshark::SOURCE,
            benign: &[],
            cve: "wireshark-cve-2014-2299",
        },
    ]
}

/// Names of every hosted app, in catalog order.
pub fn app_names() -> Vec<&'static str> {
    catalog().iter().map(|a| a.name).collect()
}

/// Look up an app by name.
pub fn by_name(name: &str) -> Option<&'static ServeApp> {
    catalog().iter().find(|a| a.name == name)
}

impl ServeApp {
    /// Every attack that targets this app: the CVE exploit plus the
    /// planner-synthesized `synth-<name>-NN` family (which shares the
    /// app's source by construction).
    pub fn attack_names(&self) -> Vec<String> {
        let infix = format!("synth-{}-", self.name);
        std::iter::once(self.cve.to_string())
            .chain(
                synth::catalog()
                    .iter()
                    .map(|a| {
                        use smokestack_attacks::Attack;
                        a.name().to_string()
                    })
                    .filter(|n| n.starts_with(&infix)),
            )
            .collect()
    }

    /// The benign input chunks as owned vectors (what a
    /// `ScriptedInput` wants).
    pub fn benign_chunks(&self) -> Vec<Vec<u8>> {
        self.benign.iter().map(|c| c.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_has_its_cve_and_a_synth_family() {
        for app in catalog() {
            let attacks = app.attack_names();
            assert!(attacks.contains(&app.cve.to_string()), "{}", app.name);
            assert!(
                attacks.iter().any(|n| n.starts_with("synth-")),
                "{} has no synth attacks: {attacks:?}",
                app.name
            );
            for name in &attacks {
                let attack = smokestack_attacks::by_name(name)
                    .unwrap_or_else(|| panic!("unresolvable attack {name}"));
                assert_eq!(
                    attack.source(),
                    app.source,
                    "{name} does not target {}'s source",
                    app.name
                );
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("librelp").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(app_names(), vec!["librelp", "proftpd", "wireshark"]);
    }
}
