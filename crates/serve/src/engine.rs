//! The serve engine: resident tenant sessions, batched open-loop
//! dispatch onto the campaign worker pool, and jobs-invariant folding
//! of per-batch evidence.
//!
//! Execution shape:
//!
//! * The main thread compiles each hosted app **once**, then deploys
//!   every (fleet, app) cell — clone the module, run the defense pass,
//!   verify — and pre-lowers the bytecode image for each cell, holding
//!   the `Arc` so every worker's builds resolve through the process
//!   cache instead of re-lowering.
//! * Workers keep private state: one [`Build`] + serve [`Executor`] per
//!   cell, the cell's attack objects, and a map of resident
//!   [`Session`]s — one long-lived VM per tenant, respawned (never
//!   rebuilt) per request.
//! * The schedule is cut into fixed-size batches; each batch folds its
//!   requests into a small [`FleetReport`] vector. The pool hands
//!   batches back sorted by index and every histogram/min-fold merge is
//!   order-independent, so aggregates are bit-identical across `--jobs`
//!   settings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use smokestack_attacks::{Attack, AttackOutcome, Build};
use smokestack_campaign::{run_pool_draining, DrainGate, RecordSink};
use smokestack_core::SmokestackConfig;
use smokestack_defenses::{deploy_configured, DefenseKind, Deployment};
use smokestack_ir::Module;
use smokestack_minic::compile;
use smokestack_vm::{CompiledModule, Executor, Exit, MemConfig, ScriptedInput, Session};
use std::sync::Arc;

use crate::apps::{self, ServeApp};
use crate::plan::ServePlan;
use crate::report::{FleetReport, ServeReport};
use crate::traffic::{self, Request};

/// How the engine runs a plan.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads.
    pub jobs: usize,
    /// Close the drain gate after this long: in-flight batches finish,
    /// no new ones dispatch (partial runs are reported `drained`).
    pub duration: Option<Duration>,
    /// Requests per pool task. The batch size shapes scheduling only —
    /// aggregates are invariant to it being a divisor of the total or
    /// not — but it is part of drain granularity.
    pub batch: u64,
    /// Serve at most this many requests of the schedule (a prefix, so
    /// determinism is preserved).
    pub max_requests: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            jobs: 1,
            duration: None,
            batch: 1024,
            max_requests: None,
        }
    }
}

/// Memory geometry for resident serve sessions: far smaller than the
/// campaign default (the hosted programs are small), so thousands of
/// tenants stay cheap, but with enough stack headroom for the
/// stack-base ASLR offset (up to 1 MiB) plus deep hardened frames.
fn serve_mem() -> MemConfig {
    MemConfig {
        rodata_size: 1 << 20,
        data_size: 1 << 20,
        heap_size: 8 << 20,
        stack_size: 4 << 20,
    }
}

/// Everything the main thread pre-computes for one (fleet, app) cell.
/// Only `Send + Sync` data lives here; workers rebuild the cheap
/// non-`Sync` wrappers ([`Build`], [`Executor`]) locally on top of the
/// shared module and pre-lowered image.
struct CellSpec {
    defense: DefenseKind,
    app: &'static ServeApp,
    module: Arc<Module>,
    deployment: Deployment,
    build_seed: u64,
    /// Held (not used directly) so the process-wide compiled-image
    /// cache keeps this cell's lowering alive for every worker.
    _image: Arc<CompiledModule>,
}

/// Worker-private per-cell state.
struct WorkerCell {
    app_name: &'static str,
    build: Build,
    serve_exec: Executor,
    attacks: Vec<Box<dyn Attack>>,
    benign: Vec<Vec<u8>>,
}

/// Worker-private state: cells plus the resident tenant sessions this
/// worker has touched.
struct WorkerState {
    cells: Vec<WorkerCell>,
    sessions: HashMap<u32, Session>,
}

/// Per-batch evidence, folded into the final report in task order.
struct BatchStats {
    served: u64,
    fleets: Vec<FleetReport>,
}

fn outcome_slot(outcome: &AttackOutcome) -> usize {
    match outcome {
        AttackOutcome::Success(_) => 0,
        AttackOutcome::Detected(_) => 1,
        AttackOutcome::Crashed(_) => 2,
        AttackOutcome::Failed(_) => 3,
        AttackOutcome::Aborted => 4,
    }
}

fn outcome_label(outcome: &AttackOutcome) -> &'static str {
    ["success", "detected", "crashed", "failed", "aborted"][outcome_slot(outcome)]
}

/// Deploy every (fleet, app) cell of `plan` on the calling thread.
fn deploy_cells(plan: &ServePlan) -> Result<Vec<CellSpec>, String> {
    let mut bases: Vec<(&'static ServeApp, Module)> = Vec::new();
    for name in &plan.apps {
        let app = apps::by_name(name).ok_or_else(|| format!("unknown app `{name}`"))?;
        let module = compile(app.source).map_err(|e| format!("compile {name}: {e}"))?;
        bases.push((app, module));
    }
    let mut cells = Vec::new();
    for (fi, fleet) in plan.fleets.iter().enumerate() {
        for (ai, (app, base)) in bases.iter().enumerate() {
            let build_seed = traffic::cell_build_seed(plan, fi, ai);
            let mut module = base.clone();
            let ss_cfg = SmokestackConfig {
                prune_safe_slots: fleet.pruned,
                ..SmokestackConfig::default()
            };
            let deployment = deploy_configured(fleet.defense, &mut module, build_seed, 0, &ss_cfg);
            smokestack_ir::verify_module(&module)
                .map_err(|e| format!("cell {}/{}: {e:?}", fleet.label(), app.name))?;
            let module = Arc::new(module);
            let image = Executor::for_module(Arc::clone(&module))
                .scheme(fleet.defense.scheme())
                .build()
                .compiled();
            cells.push(CellSpec {
                defense: fleet.defense,
                app,
                module,
                deployment,
                build_seed,
                _image: image,
            });
        }
    }
    Ok(cells)
}

/// Instantiate a worker's private view of the deployed cells.
fn worker_cells(specs: &[CellSpec]) -> Vec<WorkerCell> {
    specs
        .iter()
        .map(|spec| {
            let build = Build::from_deployed(
                Arc::clone(&spec.module),
                spec.defense,
                spec.deployment.clone(),
                spec.build_seed,
            );
            let serve_exec = Executor::for_module(Arc::clone(&spec.module))
                .scheme(spec.defense.scheme())
                .mem(serve_mem())
                .build();
            let attacks = spec
                .app
                .attack_names()
                .iter()
                .map(|n| smokestack_attacks::by_name(n).expect("catalog attack resolves"))
                .collect();
            WorkerCell {
                app_name: spec.app.name,
                build,
                serve_exec,
                attacks,
                benign: spec.app.benign_chunks(),
            }
        })
        .collect()
}

/// Run `plan` to completion (or until the duration drain): the tentpole
/// entry point behind the `serve` binary.
///
/// When `sink` is set, one JSON line is journaled per *poisoned*
/// request (benign traffic is summarized in histograms only — a
/// million-request run must not write a million lines).
pub fn run_serve(
    plan: &ServePlan,
    cfg: &ServeConfig,
    sink: Option<&dyn RecordSink>,
) -> Result<ServeReport, String> {
    if plan.fleets.is_empty() || plan.apps.is_empty() {
        return Err("serve plan has no fleets or no apps".into());
    }
    if plan.tenants == 0 {
        return Err("serve plan has no tenants".into());
    }
    let specs = deploy_cells(plan)?;
    if let Some(sink) = sink {
        sink.write_line(&format!(
            "{{\"journal\":\"smokestack-serve-v1\",\"plan\":\"{}\",\"seed\":{},\
             \"tenants\":{},\"fingerprint\":{}}}",
            plan.name,
            plan.master_seed,
            plan.tenants,
            plan.fingerprint()
        ));
    }

    let total = plan.requests.min(cfg.max_requests.unwrap_or(u64::MAX));
    let batch = cfg.batch.max(1);
    let tasks: Vec<(u64, u64)> = (0..total)
        .step_by(usize::try_from(batch).unwrap_or(usize::MAX).max(1))
        .map(|start| (start, batch.min(total - start)))
        .collect();

    let gate = DrainGate::new();
    if let Some(after) = cfg.duration {
        let timer = gate.clone();
        std::thread::spawn(move || {
            std::thread::sleep(after);
            timer.close();
        });
    }

    let resident = AtomicU64::new(0);
    let started = Instant::now();
    let fleet_labels: Vec<String> = plan.fleets.iter().map(|f| f.label()).collect();
    let run = run_pool_draining(
        cfg.jobs,
        tasks,
        None,
        Some(&gate),
        |_worker| WorkerState {
            cells: worker_cells(&specs),
            sessions: HashMap::new(),
        },
        |state, &(start, len)| {
            let mut stats = BatchStats {
                served: len,
                fleets: fleet_labels
                    .iter()
                    .map(|l| FleetReport::new(l.clone(), 0))
                    .collect(),
            };
            let WorkerState { cells, sessions } = state;
            for i in start..start + len {
                let req = Request::at(plan, i);
                let (fleet, app) = traffic::tenant_cell(plan, req.tenant);
                let cell = &cells[fleet * plan.apps.len() + app];
                let fr = &mut stats.fleets[fleet];
                if req.poisoned {
                    let pick = usize::try_from(req.attack_pick % cell.attacks.len() as u64)
                        .expect("pick fits usize");
                    let attack = &cell.attacks[pick];
                    let outcome = attack.attempt(&cell.build, req.seed);
                    fr.attacks += 1;
                    fr.outcomes[outcome_slot(&outcome)] += 1;
                    if matches!(outcome, AttackOutcome::Success(_)) {
                        fr.first_compromise
                            .entry(req.tenant)
                            .and_modify(|cur| *cur = (*cur).min(i))
                            .or_insert(i);
                    }
                    if let Some(sink) = sink {
                        sink.write_line(&format!(
                            "{{\"req\":{i},\"tenant\":{},\"fleet\":\"{}\",\"app\":\"{}\",\
                             \"attack\":\"{}\",\"seed\":{},\"outcome\":\"{}\"}}",
                            req.tenant,
                            fr.label,
                            cell.app_name,
                            attack.name(),
                            req.seed,
                            outcome_label(&outcome)
                        ));
                    }
                } else {
                    let session = sessions
                        .entry(req.tenant)
                        .or_insert_with(|| cell.serve_exec.session());
                    let offset = cell.build.run_offset(req.seed);
                    let mut input = ScriptedInput::new(cell.benign.clone());
                    let t0 = Instant::now();
                    let out = session.run_main_configured(req.seed, offset, &mut input);
                    let wall = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    fr.benign += 1;
                    fr.deci.observe(out.decicycles);
                    if traffic::in_attack_wake(plan, i, fleet) {
                        fr.deci_attack.observe(out.decicycles);
                    }
                    fr.wall_ns.observe(wall);
                    if out.exit != Exit::Return(0) {
                        fr.benign_anomalies += 1;
                    }
                }
            }
            stats
        },
        |state| {
            resident.fetch_add(state.sessions.len() as u64, Ordering::Relaxed);
        },
    );
    let wall_secs = started.elapsed().as_secs_f64();

    let mut fleets: Vec<FleetReport> = Vec::new();
    for (fi, label) in fleet_labels.iter().enumerate() {
        let tenants = (0..plan.tenants)
            .filter(|&t| traffic::tenant_cell(plan, t).0 == fi)
            .count() as u32;
        fleets.push(FleetReport::new(label.clone(), tenants));
    }
    let mut served = 0;
    for stats in &run.results {
        served += stats.served;
        for (acc, part) in fleets.iter_mut().zip(stats.fleets.iter()) {
            acc.merge(part);
        }
    }
    Ok(ServeReport {
        plan: plan.name.clone(),
        master_seed: plan.master_seed,
        tenants: plan.tenants,
        scheduled: total,
        served,
        drained: run.drained,
        wall_secs,
        resident_sessions: resident.into_inner(),
        fleets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Fleet;
    use smokestack_srng::SchemeKind;

    fn mini_plan() -> ServePlan {
        ServePlan {
            name: "mini".into(),
            master_seed: 0x51e7,
            tenants: 4,
            requests: 400,
            poison_ppm: 50_000, // 5%
            fleets: vec![
                Fleet {
                    defense: DefenseKind::None,
                    pruned: false,
                },
                Fleet {
                    defense: DefenseKind::Smokestack(SchemeKind::Aes10),
                    pruned: false,
                },
            ],
            apps: vec!["proftpd".into()],
        }
    }

    #[test]
    fn mini_plan_serves_every_request_cleanly() {
        let plan = mini_plan();
        let report = run_serve(&plan, &ServeConfig::default(), None).unwrap();
        assert_eq!(report.served, 400);
        assert!(!report.drained);
        let benign: u64 = report.fleets.iter().map(|f| f.benign).sum();
        let attacks: u64 = report.fleets.iter().map(|f| f.attacks).sum();
        assert_eq!(benign + attacks, 400);
        assert!(attacks > 0, "5% poison over 400 requests must fire");
        for fleet in &report.fleets {
            assert_eq!(fleet.benign_anomalies, 0, "{}", fleet.label);
            assert_eq!(fleet.deci.count(), fleet.benign);
            assert!(
                fleet.deci_attack.count() <= fleet.benign,
                "the under-attack split is a subset of benign traffic"
            );
        }
        let under_attack: u64 = report.fleets.iter().map(|f| f.deci_attack.count()).sum();
        assert!(
            under_attack > 0,
            "5% poison must leave some benign requests in an attack wake"
        );
        // Residency: every tenant that saw benign traffic stayed alive.
        assert!(report.resident_sessions > 0);
    }

    #[test]
    fn aggregates_are_bit_identical_across_jobs() {
        let plan = mini_plan();
        let narrow = run_serve(&plan, &ServeConfig::default(), None).unwrap();
        let wide = run_serve(
            &plan,
            &ServeConfig {
                jobs: 4,
                batch: 64,
                ..ServeConfig::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(narrow.deterministic_digest(), wide.deterministic_digest());
    }

    #[test]
    fn max_requests_serves_a_schedule_prefix() {
        let plan = mini_plan();
        let full = run_serve(&plan, &ServeConfig::default(), None).unwrap();
        let cut = run_serve(
            &plan,
            &ServeConfig {
                max_requests: Some(100),
                ..ServeConfig::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(cut.served, 100);
        assert!(cut.served < full.served);
        // The prefix property: every count is ≤ the full run's.
        for (c, f) in cut.fleets.iter().zip(full.fleets.iter()) {
            assert!(c.benign <= f.benign && c.attacks <= f.attacks);
        }
    }
}
