//! Declarative serve plans: how many tenants, how much traffic, which
//! defense fleets, and the master seed everything derives from.
//!
//! Like a campaign plan, a serve plan is the unit of reproducibility:
//! the same plan always produces the same request schedule and the same
//! per-request seeds, so aggregate stats are bit-identical across
//! `--jobs` settings.

use smokestack_defenses::DefenseKind;
use smokestack_srng::SchemeKind;

use crate::apps;

/// One defense fleet: a slice of the tenant population hardened the
/// same way. `pruned` selects the `prune_safe_slots` Smokestack
/// pipeline variant (ignored for non-Smokestack defenses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fleet {
    /// The defense deployed on every build this fleet serves.
    pub defense: DefenseKind,
    /// Whether Smokestack deploys with `prune_safe_slots` enabled.
    pub pruned: bool,
}

impl Fleet {
    /// Stable label, e.g. `smokestack/AES-10+prune`.
    pub fn label(&self) -> String {
        if self.pruned {
            format!("{}+prune", self.defense.label())
        } else {
            self.defense.label()
        }
    }

    /// Parse a [`Fleet::label`].
    pub fn from_label(s: &str) -> Option<Fleet> {
        let (base, pruned) = match s.strip_suffix("+prune") {
            Some(base) => (base, true),
            None => (s, false),
        };
        Some(Fleet {
            defense: DefenseKind::from_label(base)?,
            pruned,
        })
    }
}

/// A full serve plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServePlan {
    /// Plan name (bench rows, reports).
    pub name: String,
    /// Master seed; the entire request schedule derives from it.
    pub master_seed: u64,
    /// Resident tenant sessions. Each tenant is pinned to one
    /// (fleet, app) cell by index.
    pub tenants: u32,
    /// Scheduled requests (the open-loop arrival sequence).
    pub requests: u64,
    /// Poison rate in parts per million: expected fraction of requests
    /// that carry an exploit attempt instead of benign traffic.
    pub poison_ppm: u32,
    /// Defense fleets the tenant population is striped across.
    pub fleets: Vec<Fleet>,
    /// Hosted app names (resolved via [`crate::apps::by_name`]).
    pub apps: Vec<String>,
}

impl ServePlan {
    /// Order-sensitive FNV-1a fingerprint of the whole plan (bench rows
    /// embed the master seed; journals embed this).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        eat(&self.master_seed.to_le_bytes());
        eat(&self.tenants.to_le_bytes());
        eat(&self.requests.to_le_bytes());
        eat(&self.poison_ppm.to_le_bytes());
        for fleet in &self.fleets {
            eat(fleet.label().as_bytes());
        }
        for app in &self.apps {
            eat(app.as_bytes());
        }
        h
    }

    /// The standard fleet lineup: unprotected baseline, the classic
    /// canary, both secure Smokestack schemes, and the pruning split.
    fn standard_fleets() -> Vec<Fleet> {
        vec![
            Fleet {
                defense: DefenseKind::None,
                pruned: false,
            },
            Fleet {
                defense: DefenseKind::Canary,
                pruned: false,
            },
            Fleet {
                defense: DefenseKind::Smokestack(SchemeKind::Aes10),
                pruned: false,
            },
            Fleet {
                defense: DefenseKind::Smokestack(SchemeKind::Rdrand),
                pruned: false,
            },
            Fleet {
                defense: DefenseKind::Smokestack(SchemeKind::Aes10),
                pruned: true,
            },
        ]
    }

    /// The CI smoke plan: small tenant count, short traffic run, a
    /// poison rate high enough that every fleet sees attack attempts.
    pub fn smoke() -> ServePlan {
        ServePlan {
            name: "smoke".into(),
            master_seed: 0x5e59_e5e5,
            tenants: 60,
            requests: 20_000,
            poison_ppm: 20_000, // 2%
            fleets: ServePlan::standard_fleets(),
            apps: apps::app_names().iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The pinned load run behind `BENCH_serve.json`: ≥1,000 resident
    /// tenant sessions, ≥1M requests, paper-plausible 0.5% poison rate.
    pub fn load() -> ServePlan {
        ServePlan {
            name: "load".into(),
            master_seed: 0x10ad_f1ee,
            tenants: 1_050,
            requests: 1_000_000,
            poison_ppm: 5_000, // 0.5%
            fleets: ServePlan::standard_fleets(),
            apps: apps::app_names().iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Look up a built-in plan by name.
    pub fn builtin(name: &str) -> Option<ServePlan> {
        match name {
            "smoke" => Some(ServePlan::smoke()),
            "load" => Some(ServePlan::load()),
            _ => None,
        }
    }

    /// Parse a plan file. Line-oriented:
    ///
    /// ```text
    /// # comment
    /// name my-serve
    /// seed 0xabc
    /// tenants 256
    /// requests 100000
    /// poison-ppm 5000
    /// fleet none
    /// fleet smokestack/AES-10+prune
    /// app librelp
    /// ```
    ///
    /// Fleets and apps accumulate in order; unknown labels are rejected
    /// here, not at run time. Omitting every `app` line hosts the whole
    /// catalog.
    pub fn parse(text: &str) -> Result<ServePlan, String> {
        let mut plan = ServePlan {
            name: "unnamed".into(),
            master_seed: 0,
            tenants: 0,
            requests: 0,
            poison_ppm: 0,
            fleets: Vec::new(),
            apps: Vec::new(),
        };
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            let keyword = words.next().expect("non-empty line");
            let err = |msg: String| format!("serve plan line {}: {msg}", ln + 1);
            let mut value = |name: &str| {
                words
                    .next()
                    .map(str::to_string)
                    .ok_or_else(|| err(format!("missing {name} value")))
            };
            let parse_u64 = |w: &str| {
                if let Some(hex) = w.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    w.parse()
                }
            };
            match keyword {
                "name" => plan.name = value("name")?,
                "seed" => {
                    let w = value("seed")?;
                    plan.master_seed = parse_u64(&w).map_err(|_| err(format!("bad seed `{w}`")))?;
                }
                "tenants" => {
                    let w = value("tenants")?;
                    plan.tenants = w.parse().map_err(|_| err(format!("bad tenants `{w}`")))?;
                }
                "requests" => {
                    let w = value("requests")?;
                    plan.requests = w.parse().map_err(|_| err(format!("bad requests `{w}`")))?;
                }
                "poison-ppm" => {
                    let w = value("poison-ppm")?;
                    plan.poison_ppm = w
                        .parse()
                        .map_err(|_| err(format!("bad poison-ppm `{w}`")))?;
                }
                "fleet" => {
                    let w = value("fleet")?;
                    let fleet =
                        Fleet::from_label(&w).ok_or_else(|| err(format!("unknown fleet `{w}`")))?;
                    plan.fleets.push(fleet);
                }
                "app" => {
                    let w = value("app")?;
                    if apps::by_name(&w).is_none() {
                        return Err(err(format!("unknown app `{w}`")));
                    }
                    plan.apps.push(w);
                }
                other => return Err(err(format!("unknown keyword `{other}`"))),
            }
            if let Some(extra) = words.next() {
                return Err(err(format!("trailing junk `{extra}`")));
            }
        }
        if plan.apps.is_empty() {
            plan.apps = apps::app_names().iter().map(|s| s.to_string()).collect();
        }
        if plan.fleets.is_empty() {
            return Err("serve plan has no fleets".into());
        }
        if plan.tenants == 0 {
            return Err("serve plan has no tenants".into());
        }
        if plan.requests == 0 {
            return Err("serve plan schedules no requests".into());
        }
        if plan.poison_ppm > 1_000_000 {
            return Err("poison-ppm exceeds 1000000".into());
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_labels_roundtrip() {
        for fleet in ServePlan::standard_fleets() {
            assert_eq!(Fleet::from_label(&fleet.label()), Some(fleet));
        }
        assert!(Fleet::from_label("nope").is_none());
        assert!(Fleet::from_label("none+prune").is_some());
    }

    #[test]
    fn parses_a_plan_file() {
        let plan = ServePlan::parse(
            "# demo\nname demo\nseed 0xabc\ntenants 8\nrequests 100\npoison-ppm 50000\n\
             fleet none\nfleet smokestack/AES-10+prune\napp librelp\n",
        )
        .unwrap();
        assert_eq!(plan.name, "demo");
        assert_eq!(plan.master_seed, 0xabc);
        assert_eq!(plan.tenants, 8);
        assert_eq!(plan.fleets.len(), 2);
        assert!(plan.fleets[1].pruned);
        assert_eq!(plan.apps, vec!["librelp"]);
    }

    #[test]
    fn rejects_bad_plans() {
        assert!(ServePlan::parse("tenants 4\nrequests 10\nfleet nope\n").is_err());
        assert!(ServePlan::parse("tenants 4\nrequests 10\napp nope\nfleet none\n").is_err());
        assert!(ServePlan::parse("tenants 4\nfleet none\n").is_err());
        assert!(ServePlan::parse("requests 4\nfleet none\n").is_err());
        assert!(ServePlan::parse("tenants 4\nrequests 10\n").is_err());
        assert!(
            ServePlan::parse("tenants 4\nrequests 10\npoison-ppm 2000000\nfleet none\n").is_err()
        );
    }

    #[test]
    fn builtins_resolve() {
        let smoke = ServePlan::builtin("smoke").unwrap();
        assert_eq!(smoke.name, "smoke");
        assert!(smoke.requests >= 10_000);
        let load = ServePlan::builtin("load").unwrap();
        assert!(load.tenants >= 1_000, "load must keep ≥1000 residents");
        assert!(load.requests >= 1_000_000, "load must serve ≥1M requests");
        assert!(ServePlan::builtin("nope").is_none());
        for plan in [smoke, load] {
            for fleet in &plan.fleets {
                assert_eq!(Fleet::from_label(&fleet.label()), Some(*fleet));
            }
            for app in &plan.apps {
                assert!(apps::by_name(app).is_some());
            }
        }
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = ServePlan::smoke();
        let mut renamed = base.clone();
        renamed.name = "other".into();
        let mut reseeded = base.clone();
        reseeded.master_seed ^= 1;
        let mut regrown = base.clone();
        regrown.tenants += 1;
        let mut repoisoned = base.clone();
        repoisoned.poison_ppm += 1;
        let prints = [
            base.fingerprint(),
            renamed.fingerprint(),
            reseeded.fingerprint(),
            regrown.fingerprint(),
            repoisoned.fingerprint(),
        ];
        for i in 0..prints.len() {
            for j in i + 1..prints.len() {
                assert_ne!(prints[i], prints[j], "plans {i} and {j} collide");
            }
        }
    }
}
