//! The deterministic open-loop traffic model.
//!
//! Request `i` of a plan is a *positional* function of
//! `(master_seed, i)`: its tenant, its per-request TRNG seed, whether
//! it is poisoned, and which attack a poisoned request fires are each
//! drawn from a distinct [`SeedStream`] domain indexed by `i`. Nothing
//! depends on worker count, scheduling order, or wall-clock time, so
//! the schedule is byte-identical across `--jobs` settings and re-runs
//! — the property the serve determinism tests pin.

use smokestack_rand::SeedStream;

use crate::plan::ServePlan;

/// Seed-stream domain for tenant assignment.
const TENANT_DOMAIN: u64 = 0x7e4a;
/// Seed-stream domain for the poison coin.
const POISON_DOMAIN: u64 = 0x90150;
/// Seed-stream domain for per-request TRNG seeds.
const SEED_DOMAIN: u64 = 0x5eed5;
/// Seed-stream domain for attack selection on poisoned requests.
const ATTACK_DOMAIN: u64 = 0xa77ac;
/// Seed-stream domain for per-cell build seeds.
const BUILD_DOMAIN: u64 = 0xb11d5;

/// One scheduled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Position in the arrival sequence.
    pub index: u64,
    /// The tenant session this request lands on.
    pub tenant: u32,
    /// Whether this request carries an exploit attempt.
    pub poisoned: bool,
    /// Per-request TRNG seed (service randomness for benign requests,
    /// trial entropy for attacks).
    pub seed: u64,
    /// Raw attack-selection draw; reduce modulo the target app's attack
    /// count (only meaningful when `poisoned`).
    pub attack_pick: u64,
}

impl Request {
    /// The `index`-th request of `plan`'s schedule.
    pub fn at(plan: &ServePlan, index: u64) -> Request {
        let tenant = (SeedStream::new(plan.master_seed, TENANT_DOMAIN).seed(index)
            % u64::from(plan.tenants)) as u32;
        let poisoned = SeedStream::new(plan.master_seed, POISON_DOMAIN).seed(index) % 1_000_000
            < u64::from(plan.poison_ppm);
        Request {
            index,
            tenant,
            poisoned,
            seed: SeedStream::new(plan.master_seed, SEED_DOMAIN).seed(index),
            attack_pick: SeedStream::new(plan.master_seed, ATTACK_DOMAIN).seed(index),
        }
    }

    /// Stable one-line rendering (schedule digests, JSONL records).
    pub fn line(&self) -> String {
        format!(
            "req {} tenant {} poisoned {} seed {:#x} pick {:#x}",
            self.index, self.tenant, self.poisoned, self.seed, self.attack_pick
        )
    }
}

/// How many schedule slots an exploit attempt's "wake" covers: a benign
/// request whose fleet absorbed an attack within the previous
/// `ATTACK_WAKE_WINDOW` scheduled requests lands in the
/// latency-under-attack split. The wake is defined on the schedule
/// alone — not on which worker happened to serve the attack — so the
/// split is invariant across `--jobs` and batch settings like every
/// other aggregate.
pub const ATTACK_WAKE_WINDOW: u64 = 8;

/// Whether request `index` is served in the wake of an in-flight
/// exploit attempt against fleet `fleet`.
pub fn in_attack_wake(plan: &ServePlan, index: u64, fleet: usize) -> bool {
    (index.saturating_sub(ATTACK_WAKE_WINDOW)..index).any(|j| {
        let r = Request::at(plan, j);
        r.poisoned && tenant_cell(plan, r.tenant).0 == fleet
    })
}

/// Which (fleet, app) cell a tenant belongs to: tenants are striped
/// across fleets first, then apps, so every fleet hosts every app for
/// any tenant count ≥ `fleets × apps`.
pub fn tenant_cell(plan: &ServePlan, tenant: u32) -> (usize, usize) {
    let fleets = plan.fleets.len() as u32;
    let apps = plan.apps.len() as u32;
    let fleet = tenant % fleets;
    let app = (tenant / fleets) % apps;
    (fleet as usize, app as usize)
}

/// The deterministic build seed for cell `(fleet, app)`.
pub fn cell_build_seed(plan: &ServePlan, fleet: usize, app: usize) -> u64 {
    SeedStream::new(plan.master_seed, BUILD_DOMAIN).seed((fleet * plan.apps.len() + app) as u64)
}

/// Render the first `n` scheduled requests as one newline-separated
/// string — the byte-comparable schedule digest the determinism tests
/// (and `--dump-schedule`) use.
pub fn schedule_digest(plan: &ServePlan, n: u64) -> String {
    let mut out = String::new();
    for i in 0..n.min(plan.requests) {
        out.push_str(&Request::at(plan, i).line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ServePlan;

    #[test]
    fn schedule_is_a_pure_function_of_the_plan() {
        let plan = ServePlan::smoke();
        assert_eq!(schedule_digest(&plan, 500), schedule_digest(&plan, 500));
        let mut reseeded = plan.clone();
        reseeded.master_seed ^= 1;
        assert_ne!(schedule_digest(&plan, 500), schedule_digest(&reseeded, 500));
    }

    #[test]
    fn poison_rate_lands_near_the_configured_ppm() {
        let mut plan = ServePlan::smoke();
        plan.poison_ppm = 100_000; // 10%
        let n = 20_000u64;
        let poisoned = (0..n).filter(|&i| Request::at(&plan, i).poisoned).count();
        let rate = poisoned as f64 / n as f64;
        assert!((0.08..=0.12).contains(&rate), "rate {rate}");
    }

    #[test]
    fn tenants_cover_every_cell() {
        let plan = ServePlan::smoke();
        let cells = plan.fleets.len() * plan.apps.len();
        let mut seen = std::collections::HashSet::new();
        for t in 0..plan.tenants {
            seen.insert(tenant_cell(&plan, t));
        }
        assert_eq!(seen.len(), cells);
    }

    #[test]
    fn requests_spread_across_tenants() {
        let plan = ServePlan::smoke();
        let mut seen = std::collections::HashSet::new();
        for i in 0..5_000u64 {
            seen.insert(Request::at(&plan, i).tenant);
        }
        // With 5000 draws over 60 tenants, every tenant sees traffic.
        assert_eq!(seen.len() as u32, plan.tenants);
    }

    #[test]
    fn cell_build_seeds_are_distinct() {
        let plan = ServePlan::smoke();
        let mut seen = std::collections::HashSet::new();
        for f in 0..plan.fleets.len() {
            for a in 0..plan.apps.len() {
                assert!(seen.insert(cell_build_seed(&plan, f, a)));
            }
        }
    }
}
