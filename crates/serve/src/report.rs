//! Serve-run aggregation: per-fleet SLO percentiles, compromise
//! accounting, time-to-first-compromise curves, Prometheus exposition,
//! and the drift-gated `BENCH_serve.json` row format.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use smokestack_telemetry::{MetricsRegistry, StreamingHistogram};

/// Request budgets the time-to-first-compromise curve is sampled at
/// (clipped to the plan's scheduled request count).
pub const TTFC_BUDGETS: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// Aggregate evidence for one defense fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Fleet label (see [`crate::plan::Fleet::label`]).
    pub label: String,
    /// Tenants assigned to this fleet.
    pub tenants: u32,
    /// Benign requests served.
    pub benign: u64,
    /// Exploit attempts fired.
    pub attacks: u64,
    /// Benign requests that did not exit cleanly (expected 0; a
    /// non-zero count means a hardened build broke legitimate traffic).
    pub benign_anomalies: u64,
    /// Attack outcomes in `OutcomeKind::ALL` order:
    /// success / detected / crashed / failed / aborted.
    pub outcomes: [u64; 5],
    /// Benign-request latency in deterministic decicycles.
    pub deci: StreamingHistogram,
    /// The latency-under-attack split: decicycle latency of the subset
    /// of benign requests served in the wake of an exploit attempt on
    /// this fleet (see [`crate::traffic::ATTACK_WAKE_WINDOW`]). A
    /// sub-histogram of `deci`, not a partition of it.
    pub deci_attack: StreamingHistogram,
    /// Benign-request latency in measured wall nanoseconds (machine
    /// dependent; never part of determinism guarantees or `--check`).
    pub wall_ns: StreamingHistogram,
    /// Per compromised tenant: the request index of its first
    /// successful exploit.
    pub first_compromise: BTreeMap<u32, u64>,
}

impl FleetReport {
    /// An empty report for `label` with `tenants` residents.
    pub fn new(label: String, tenants: u32) -> FleetReport {
        FleetReport {
            label,
            tenants,
            benign: 0,
            attacks: 0,
            benign_anomalies: 0,
            outcomes: [0; 5],
            deci: StreamingHistogram::new(),
            deci_attack: StreamingHistogram::new(),
            wall_ns: StreamingHistogram::new(),
            first_compromise: BTreeMap::new(),
        }
    }

    /// Successful exploit attempts.
    pub fn successes(&self) -> u64 {
        self.outcomes[0]
    }

    /// Tenants compromised at least once.
    pub fn compromised_tenants(&self) -> u64 {
        self.first_compromise.len() as u64
    }

    /// Fraction of this fleet's tenants still uncompromised after the
    /// first `budget` scheduled requests.
    pub fn survival(&self, budget: u64) -> f64 {
        if self.tenants == 0 {
            return 1.0;
        }
        let hit = self
            .first_compromise
            .values()
            .filter(|&&idx| idx < budget)
            .count();
        1.0 - hit as f64 / f64::from(self.tenants)
    }

    /// The time-to-first-compromise survival curve: `(budget,
    /// survival)` at every [`TTFC_BUDGETS`] point within `total`, plus
    /// the endpoint itself.
    pub fn ttfc_curve(&self, total: u64) -> Vec<(u64, f64)> {
        let mut budgets: Vec<u64> = TTFC_BUDGETS
            .iter()
            .copied()
            .filter(|&b| b < total)
            .collect();
        budgets.push(total);
        budgets.into_iter().map(|b| (b, self.survival(b))).collect()
    }

    /// Fold another fleet report (a batch's worth) into this one.
    /// Histogram merges are bucket-wise adds and the first-compromise
    /// fold takes the minimum request index per tenant, so the result
    /// is identical for any fold order — the jobs-invariance property.
    pub fn merge(&mut self, other: &FleetReport) {
        self.benign += other.benign;
        self.attacks += other.attacks;
        self.benign_anomalies += other.benign_anomalies;
        for (a, b) in self.outcomes.iter_mut().zip(other.outcomes.iter()) {
            *a += b;
        }
        self.deci.merge(&other.deci);
        self.deci_attack.merge(&other.deci_attack);
        self.wall_ns.merge(&other.wall_ns);
        for (&tenant, &idx) in &other.first_compromise {
            self.first_compromise
                .entry(tenant)
                .and_modify(|cur| *cur = (*cur).min(idx))
                .or_insert(idx);
        }
    }
}

/// What a serve run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Plan name.
    pub plan: String,
    /// Master seed the schedule derived from.
    pub master_seed: u64,
    /// Total resident tenants.
    pub tenants: u32,
    /// Requests the plan scheduled.
    pub scheduled: u64,
    /// Requests actually served (less than `scheduled` only when a
    /// drain cut the run short).
    pub served: u64,
    /// Whether a duration drain stopped the run before the schedule
    /// finished (partial runs are excluded from `--check`).
    pub drained: bool,
    /// Measured wall-clock for the whole run in seconds.
    pub wall_secs: f64,
    /// Resident VM sessions held at drain time, summed across workers.
    pub resident_sessions: u64,
    /// Per-fleet evidence, in plan fleet order.
    pub fleets: Vec<FleetReport>,
}

impl ServeReport {
    /// Measured throughput over the whole run.
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.served as f64 / self.wall_secs
    }

    /// Render every machine-independent aggregate as one string: the
    /// jobs-invariance tests compare this across `--jobs` settings.
    /// Wall-clock latency, throughput, and worker-dependent session
    /// counts are deliberately excluded.
    pub fn deterministic_digest(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "plan {} seed {:#x} scheduled {} served {}",
            self.plan, self.master_seed, self.scheduled, self.served
        );
        for f in &self.fleets {
            let _ = writeln!(
                s,
                "fleet {} tenants {} benign {} attacks {} anomalies {} outcomes {:?}",
                f.label, f.tenants, f.benign, f.attacks, f.benign_anomalies, f.outcomes
            );
            let _ = writeln!(s, "  deci {}", f.deci.to_json());
            let _ = writeln!(s, "  deci_attack {}", f.deci_attack.to_json());
            for (tenant, idx) in &f.first_compromise {
                let _ = writeln!(s, "  compromised tenant {tenant} at request {idx}");
            }
        }
        s
    }
}

/// Fold a serve report into a metrics registry for Prometheus
/// exposition (`serve --stats`).
pub fn serve_registry(report: &ServeReport) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.gauge_set("serve.sessions.resident", report.resident_sessions);
    reg.gauge_set("serve.tenants", u64::from(report.tenants));
    reg.inc("serve.requests.served", report.served);
    for f in &report.fleets {
        reg.inc(&format!("serve.benign.{}", f.label), f.benign);
        reg.inc(&format!("serve.attacks.{}", f.label), f.attacks);
        reg.inc(&format!("serve.compromises.{}", f.label), f.successes());
        reg.inc(&format!("serve.detected.{}", f.label), f.outcomes[1]);
        if f.deci.count() > 0 {
            reg.merge_stream(&format!("serve.latency.deci.{}", f.label), &f.deci);
        }
        if f.wall_ns.count() > 0 {
            reg.merge_stream(&format!("serve.latency.wall_ns.{}", f.label), &f.wall_ns);
        }
    }
    reg
}

/// One `BENCH_serve.json` row: everything pinned for a (plan, fleet)
/// pair. The `deci_*` columns and the attack/outcome counts are
/// deterministic (drift-gated by `--check`); the `wall_*` and
/// throughput columns are measured on the writing machine and never
/// checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRow {
    /// Plan name.
    pub plan: String,
    /// Fleet label.
    pub fleet: String,
    /// Master seed of the run.
    pub master_seed: u64,
    /// Tenants in this fleet.
    pub tenants: u32,
    /// Requests served across the whole run.
    pub served: u64,
    /// Benign requests this fleet served.
    pub benign: u64,
    /// Exploit attempts this fleet absorbed.
    pub attacks: u64,
    /// Attack outcome counts.
    pub success: u64,
    /// Attempts a defense terminated.
    pub detected: u64,
    /// Attempts that crashed the service.
    pub crashed: u64,
    /// Attempts that ran clean without the goal.
    pub failed: u64,
    /// Attempts aborted pre-commit.
    pub aborted: u64,
    /// Tenants compromised at least once.
    pub compromised_tenants: u64,
    /// Benign latency percentiles in deterministic decicycles.
    pub deci_p50: u64,
    /// 95th percentile.
    pub deci_p95: u64,
    /// 99th percentile.
    pub deci_p99: u64,
    /// 99.9th percentile.
    pub deci_p999: u64,
    /// Mean (rounded).
    pub deci_mean: u64,
    /// Benign requests served in the wake of an exploit attempt on
    /// this fleet (the population of the `deci_attack_*` columns;
    /// schedule-pinned, so compared exactly).
    pub benign_under_attack: u64,
    /// Latency-under-attack percentiles in deterministic decicycles.
    pub deci_attack_p50: u64,
    /// 95th percentile under attack.
    pub deci_attack_p95: u64,
    /// 99th percentile under attack.
    pub deci_attack_p99: u64,
    /// Mean under attack (rounded).
    pub deci_attack_mean: u64,
    /// Benign latency percentiles in wall nanoseconds (unchecked).
    pub wall_p50_ns: u64,
    /// 95th percentile wall ns (unchecked).
    pub wall_p95_ns: u64,
    /// 99th percentile wall ns (unchecked).
    pub wall_p99_ns: u64,
    /// 99.9th percentile wall ns (unchecked).
    pub wall_p999_ns: u64,
    /// Whole-run throughput on the writing machine (unchecked).
    pub requests_per_sec: u64,
    /// Time-to-first-compromise survival curve as
    /// `budget:survival_ppm` pairs.
    pub ttfc: String,
}

/// Reduce a finished run to its bench rows (one per fleet).
pub fn report_rows(report: &ServeReport) -> Vec<BenchRow> {
    report
        .fleets
        .iter()
        .map(|f| {
            let ttfc = f
                .ttfc_curve(report.scheduled)
                .into_iter()
                .map(|(b, s)| format!("{b}:{}", (s * 1_000_000.0).round() as u64))
                .collect::<Vec<_>>()
                .join(" ");
            BenchRow {
                plan: report.plan.clone(),
                fleet: f.label.clone(),
                master_seed: report.master_seed,
                tenants: f.tenants,
                served: report.served,
                benign: f.benign,
                attacks: f.attacks,
                success: f.outcomes[0],
                detected: f.outcomes[1],
                crashed: f.outcomes[2],
                failed: f.outcomes[3],
                aborted: f.outcomes[4],
                compromised_tenants: f.compromised_tenants(),
                deci_p50: f.deci.p50(),
                deci_p95: f.deci.p95(),
                deci_p99: f.deci.p99(),
                deci_p999: f.deci.p999(),
                deci_mean: f.deci.mean().round() as u64,
                benign_under_attack: f.deci_attack.count(),
                deci_attack_p50: f.deci_attack.p50(),
                deci_attack_p95: f.deci_attack.p95(),
                deci_attack_p99: f.deci_attack.p99(),
                deci_attack_mean: f.deci_attack.mean().round() as u64,
                wall_p50_ns: f.wall_ns.p50(),
                wall_p95_ns: f.wall_ns.p95(),
                wall_p99_ns: f.wall_ns.p99(),
                wall_p999_ns: f.wall_ns.p999(),
                requests_per_sec: report.requests_per_sec().round() as u64,
                ttfc,
            }
        })
        .collect()
}

/// Serialize rows as the `BENCH_serve.json` file body.
pub fn rows_to_json(rows: &[BenchRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"smokestack-serve/1\",");
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"plan\": \"{}\",", r.plan);
        let _ = writeln!(s, "      \"fleet\": \"{}\",", r.fleet);
        let _ = writeln!(s, "      \"master_seed\": {},", r.master_seed);
        let _ = writeln!(s, "      \"tenants\": {},", r.tenants);
        let _ = writeln!(s, "      \"served\": {},", r.served);
        let _ = writeln!(s, "      \"benign\": {},", r.benign);
        let _ = writeln!(s, "      \"attacks\": {},", r.attacks);
        let _ = writeln!(s, "      \"success\": {},", r.success);
        let _ = writeln!(s, "      \"detected\": {},", r.detected);
        let _ = writeln!(s, "      \"crashed\": {},", r.crashed);
        let _ = writeln!(s, "      \"failed\": {},", r.failed);
        let _ = writeln!(s, "      \"aborted\": {},", r.aborted);
        let _ = writeln!(
            s,
            "      \"compromised_tenants\": {},",
            r.compromised_tenants
        );
        let _ = writeln!(s, "      \"deci_p50\": {},", r.deci_p50);
        let _ = writeln!(s, "      \"deci_p95\": {},", r.deci_p95);
        let _ = writeln!(s, "      \"deci_p99\": {},", r.deci_p99);
        let _ = writeln!(s, "      \"deci_p999\": {},", r.deci_p999);
        let _ = writeln!(s, "      \"deci_mean\": {},", r.deci_mean);
        let _ = writeln!(
            s,
            "      \"benign_under_attack\": {},",
            r.benign_under_attack
        );
        let _ = writeln!(s, "      \"deci_attack_p50\": {},", r.deci_attack_p50);
        let _ = writeln!(s, "      \"deci_attack_p95\": {},", r.deci_attack_p95);
        let _ = writeln!(s, "      \"deci_attack_p99\": {},", r.deci_attack_p99);
        let _ = writeln!(s, "      \"deci_attack_mean\": {},", r.deci_attack_mean);
        let _ = writeln!(s, "      \"wall_p50_ns\": {},", r.wall_p50_ns);
        let _ = writeln!(s, "      \"wall_p95_ns\": {},", r.wall_p95_ns);
        let _ = writeln!(s, "      \"wall_p99_ns\": {},", r.wall_p99_ns);
        let _ = writeln!(s, "      \"wall_p999_ns\": {},", r.wall_p999_ns);
        let _ = writeln!(s, "      \"requests_per_sec\": {},", r.requests_per_sec);
        let _ = writeln!(s, "      \"ttfc\": \"{}\"", r.ttfc);
        let _ = writeln!(s, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parse rows from a file previously written by [`rows_to_json`]. Not
/// a general JSON parser — it reads the line-per-field layout this
/// crate emits, which is all `--check` ever compares.
pub fn parse_rows(text: &str) -> Vec<BenchRow> {
    let mut rows = Vec::new();
    let mut fields: BTreeMap<String, String> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line == "{" || line == "{{" {
            fields.clear();
            continue;
        }
        if line.starts_with('}') {
            if let Some(row) = row_from_fields(&fields) {
                rows.push(row);
            }
            fields.clear();
            continue;
        }
        if let Some(rest) = line.strip_prefix('"') {
            if let Some((key, value)) = rest.split_once("\": ") {
                fields.insert(key.to_string(), value.trim_matches('"').to_string());
            }
        }
    }
    rows
}

fn row_from_fields(f: &BTreeMap<String, String>) -> Option<BenchRow> {
    let s = |k: &str| f.get(k).cloned();
    let n = |k: &str| f.get(k).and_then(|v| v.parse::<u64>().ok());
    Some(BenchRow {
        plan: s("plan")?,
        fleet: s("fleet")?,
        master_seed: n("master_seed")?,
        tenants: n("tenants")? as u32,
        served: n("served")?,
        benign: n("benign")?,
        attacks: n("attacks")?,
        success: n("success")?,
        detected: n("detected")?,
        crashed: n("crashed")?,
        failed: n("failed")?,
        aborted: n("aborted")?,
        compromised_tenants: n("compromised_tenants")?,
        deci_p50: n("deci_p50")?,
        deci_p95: n("deci_p95")?,
        deci_p99: n("deci_p99")?,
        deci_p999: n("deci_p999")?,
        deci_mean: n("deci_mean")?,
        benign_under_attack: n("benign_under_attack")?,
        deci_attack_p50: n("deci_attack_p50")?,
        deci_attack_p95: n("deci_attack_p95")?,
        deci_attack_p99: n("deci_attack_p99")?,
        deci_attack_mean: n("deci_attack_mean")?,
        wall_p50_ns: n("wall_p50_ns")?,
        wall_p95_ns: n("wall_p95_ns")?,
        wall_p99_ns: n("wall_p99_ns")?,
        wall_p999_ns: n("wall_p999_ns")?,
        requests_per_sec: n("requests_per_sec")?,
        ttfc: s("ttfc")?,
    })
}

/// Compare freshly measured rows against a pinned baseline:
///
/// * `deci_*` percentile columns must stay within `tolerance_pct` of
///   the baseline (they are deterministic; the tolerance absorbs
///   intentional cost-model evolution, mirroring `BENCH_baseline.json`);
/// * benign/attack counts must match exactly (the schedule is pinned);
/// * the per-fleet success count must not *exceed* the baseline — a
///   compromise-rate regression fails regardless of tolerance.
///
/// Wall-clock and throughput columns are never compared.
pub fn check_rows(
    current: &[BenchRow],
    baseline: &[BenchRow],
    tolerance_pct: f64,
) -> Result<usize, String> {
    let mut compared = 0;
    for row in current {
        let Some(base) = baseline
            .iter()
            .find(|b| b.plan == row.plan && b.fleet == row.fleet)
        else {
            continue;
        };
        compared += 1;
        for (what, now, then) in [
            ("served", row.served, base.served),
            ("benign", row.benign, base.benign),
            ("attacks", row.attacks, base.attacks),
            (
                "benign_under_attack",
                row.benign_under_attack,
                base.benign_under_attack,
            ),
        ] {
            if now != then {
                return Err(format!(
                    "{}/{}: {what} changed {then} -> {now} (schedule no longer pinned)",
                    row.plan, row.fleet
                ));
            }
        }
        if row.success > base.success {
            return Err(format!(
                "{}/{}: compromise-rate regression: {} successes vs {} pinned",
                row.plan, row.fleet, row.success, base.success
            ));
        }
        for (what, now, then) in [
            ("deci_p50", row.deci_p50, base.deci_p50),
            ("deci_p95", row.deci_p95, base.deci_p95),
            ("deci_p99", row.deci_p99, base.deci_p99),
            ("deci_p999", row.deci_p999, base.deci_p999),
            ("deci_mean", row.deci_mean, base.deci_mean),
            ("deci_attack_p50", row.deci_attack_p50, base.deci_attack_p50),
            ("deci_attack_p95", row.deci_attack_p95, base.deci_attack_p95),
            ("deci_attack_p99", row.deci_attack_p99, base.deci_attack_p99),
            (
                "deci_attack_mean",
                row.deci_attack_mean,
                base.deci_attack_mean,
            ),
        ] {
            if then == 0 && now == 0 {
                continue;
            }
            let drift = (now as f64 - then as f64).abs() / (then.max(1)) as f64 * 100.0;
            if drift > tolerance_pct {
                return Err(format!(
                    "{}/{}: {what} drifted {drift:.2}% (baseline {then}, now {now}, \
                     tolerance {tolerance_pct}%)",
                    row.plan, row.fleet
                ));
            }
        }
    }
    if compared == 0 {
        return Err(
            "no measured (plan, fleet) row appears in the baseline — nothing compared".into(),
        );
    }
    Ok(compared)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ServeReport {
        let mut none = FleetReport::new("none".into(), 4);
        none.benign = 90;
        none.attacks = 10;
        none.outcomes = [6, 0, 1, 2, 1];
        for v in [40, 50, 60, 70, 80] {
            none.deci.observe(v);
        }
        for v in [70, 80] {
            none.deci_attack.observe(v);
        }
        for v in [1000, 1100, 1200, 1300, 1400] {
            none.wall_ns.observe(v);
        }
        none.first_compromise.insert(1, 12);
        none.first_compromise.insert(3, 500);
        let mut aes = FleetReport::new("smokestack/AES-10".into(), 4);
        aes.benign = 95;
        aes.attacks = 5;
        aes.outcomes = [0, 4, 1, 0, 0];
        for v in [55, 65, 75, 85, 95] {
            aes.deci.observe(v);
        }
        ServeReport {
            plan: "sample".into(),
            master_seed: 0xabc,
            tenants: 8,
            scheduled: 200,
            served: 200,
            drained: false,
            wall_secs: 2.0,
            resident_sessions: 8,
            fleets: vec![none, aes],
        }
    }

    #[test]
    fn survival_curve_steps_at_first_compromise() {
        let report = sample_report();
        let none = &report.fleets[0];
        assert_eq!(none.survival(1), 1.0);
        assert_eq!(none.survival(100), 0.75); // tenant 1 hit at 12
        assert_eq!(none.survival(501), 0.5); // tenant 3 hit at 500
        let curve = none.ttfc_curve(200);
        assert_eq!(curve, vec![(100, 0.75), (200, 0.75)]);
        // The hardened fleet never loses a tenant.
        assert_eq!(report.fleets[1].survival(u64::MAX), 1.0);
    }

    #[test]
    fn merge_is_order_independent() {
        let report = sample_report();
        let a = &report.fleets[0];
        let b = {
            let mut b = FleetReport::new("none".into(), 4);
            b.benign = 10;
            b.outcomes = [1, 0, 0, 0, 0];
            b.deci.observe(33);
            b.first_compromise.insert(1, 3); // earlier than a's 12
            b
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(a);
        assert_eq!(ab, ba);
        assert_eq!(ab.first_compromise[&1], 3);
        assert_eq!(ab.benign, 100);
    }

    #[test]
    fn bench_rows_roundtrip_through_json() {
        let report = sample_report();
        let rows = report_rows(&report);
        assert_eq!(rows.len(), 2);
        let text = rows_to_json(&rows);
        let parsed = parse_rows(&text);
        assert_eq!(parsed, rows);
    }

    #[test]
    fn check_rows_gates_drift_and_compromise_regressions() {
        let rows = report_rows(&sample_report());
        // Identical rows pass.
        assert_eq!(check_rows(&rows, &rows, 5.0), Ok(2));
        // A compromise regression fails even inside tolerance.
        let mut worse = rows.clone();
        worse[1].success += 1;
        let err = check_rows(&worse, &rows, 5.0).unwrap_err();
        assert!(err.contains("compromise-rate regression"), "{err}");
        // Latency drift beyond tolerance fails.
        let mut slow = rows.clone();
        slow[0].deci_p99 = slow[0].deci_p99 * 2 + 100;
        assert!(check_rows(&slow, &rows, 5.0).is_err());
        // A changed schedule fails exactly.
        let mut resched = rows.clone();
        resched[0].benign += 1;
        assert!(check_rows(&resched, &rows, 5.0).is_err());
        // Nothing in common -> error, not a silent pass.
        assert!(check_rows(&rows[..1], &rows[1..], 5.0).is_err());
    }

    #[test]
    fn registry_carries_serve_gauges_counters_and_streams() {
        let reg = serve_registry(&sample_report());
        assert_eq!(reg.gauge("serve.sessions.resident"), Some(8));
        assert_eq!(reg.counter("serve.requests.served"), 200);
        assert_eq!(reg.counter("serve.compromises.none"), 6);
        assert_eq!(reg.counter("serve.compromises.smokestack/AES-10"), 0);
        assert!(reg.stream("serve.latency.deci.none").is_some());
        assert!(reg
            .stream("serve.latency.wall_ns.smokestack/AES-10")
            .is_none());
    }

    #[test]
    fn prometheus_exposition_is_pinned() {
        // Golden text for a minimal single-fleet report: pins metric
        // naming, sanitization, and ordering of the serve exposition.
        let mut fleet = FleetReport::new("smokestack/AES-10".into(), 2);
        fleet.benign = 3;
        fleet.attacks = 1;
        fleet.outcomes = [0, 1, 0, 0, 0];
        for v in [10, 20, 30] {
            fleet.deci.observe(v);
        }
        let report = ServeReport {
            plan: "golden".into(),
            master_seed: 1,
            tenants: 2,
            scheduled: 4,
            served: 4,
            drained: false,
            wall_secs: 1.0,
            resident_sessions: 2,
            fleets: vec![fleet],
        };
        let text = smokestack_telemetry::render_prometheus(&serve_registry(&report));
        let expected = "\
# HELP serve_attacks_smokestack_AES_10_total smokestack metric `serve.attacks.smokestack/AES-10`
# TYPE serve_attacks_smokestack_AES_10_total counter
serve_attacks_smokestack_AES_10_total 1
# HELP serve_benign_smokestack_AES_10_total smokestack metric `serve.benign.smokestack/AES-10`
# TYPE serve_benign_smokestack_AES_10_total counter
serve_benign_smokestack_AES_10_total 3
# HELP serve_compromises_smokestack_AES_10_total smokestack metric `serve.compromises.smokestack/AES-10`
# TYPE serve_compromises_smokestack_AES_10_total counter
serve_compromises_smokestack_AES_10_total 0
# HELP serve_detected_smokestack_AES_10_total smokestack metric `serve.detected.smokestack/AES-10`
# TYPE serve_detected_smokestack_AES_10_total counter
serve_detected_smokestack_AES_10_total 1
# HELP serve_requests_served_total smokestack metric `serve.requests.served`
# TYPE serve_requests_served_total counter
serve_requests_served_total 4
# HELP serve_sessions_resident smokestack metric `serve.sessions.resident`
# TYPE serve_sessions_resident gauge
serve_sessions_resident 2
# HELP serve_tenants smokestack metric `serve.tenants`
# TYPE serve_tenants gauge
serve_tenants 2
# HELP serve_latency_deci_smokestack_AES_10 smokestack metric `serve.latency.deci.smokestack/AES-10`
# TYPE serve_latency_deci_smokestack_AES_10 summary
serve_latency_deci_smokestack_AES_10{quantile=\"0.5\"} 20
serve_latency_deci_smokestack_AES_10{quantile=\"0.95\"} 30
serve_latency_deci_smokestack_AES_10{quantile=\"0.99\"} 30
serve_latency_deci_smokestack_AES_10{quantile=\"0.999\"} 30
serve_latency_deci_smokestack_AES_10_sum 60
serve_latency_deci_smokestack_AES_10_count 3
";
        assert_eq!(text, expected);
    }
}
